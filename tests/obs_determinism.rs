//! The observability contract, enforced end-to-end: instrumentation is
//! observation-only (paired instrumented / uninstrumented runs are
//! bit-identical), and the artifacts it writes are well-formed JSON.

use cdnc_experiments::obs_out::write_figure_artifact;
use cdnc_experiments::{
    build_trace, build_trace_with_obs, run_figure, run_figure_ctx, run_figure_with_obs, RunCtx,
    Scale,
};
use cdnc_obs::{parse, Json, Level, Registry};
use cdnc_par::Pool;

/// A fully armed registry: metrics, spans, the event log, and the causal
/// tracer all live.
fn armed() -> Registry {
    let reg = Registry::enabled();
    reg.enable_events(Level::Debug, 65_536);
    reg.enable_tracing();
    reg
}

/// An armed registry with series sampling on top.
fn armed_series() -> Registry {
    let reg = armed();
    reg.enable_series(cdnc_obs::DEFAULT_CADENCE_US);
    reg
}

#[test]
fn instrumented_figures_match_uninstrumented() {
    // One simulation figure per family: §4 evaluation, §5 HAT, and an
    // extension experiment (the latter exercises failures + tree repair).
    for id in ["fig20", "fig24", "ext_failures"] {
        let plain = run_figure(id, Scale::Smoke, None).unwrap();
        let reg = armed();
        let observed = run_figure_with_obs(id, Scale::Smoke, None, &reg).unwrap();
        assert_eq!(plain, observed, "{id}: instrumentation must not change results");
        assert!(
            reg.snapshot().counter("sched_events_processed") > 0,
            "{id}: the registry must actually have observed the run"
        );
        assert!(
            !reg.tracer().store().spans.is_empty(),
            "{id}: the tracer must actually have recorded the run"
        );
    }
}

#[test]
fn tracing_runs_are_deterministic() {
    // Two traced runs of the same figure produce span-for-span identical
    // stores, so trace artifacts are reproducible byte-for-byte.
    let first = armed();
    let second = armed();
    let a = run_figure_with_obs("fig24", Scale::Smoke, None, &first).unwrap();
    let b = run_figure_with_obs("fig24", Scale::Smoke, None, &second).unwrap();
    assert_eq!(a, b, "paired traced runs must agree on results");
    let (sa, sb) = (first.tracer().store(), second.tracer().store());
    assert!(!sa.spans.is_empty(), "the tracer must have recorded spans");
    assert_eq!(sa, sb, "paired traced runs must agree on every span");
}

#[test]
fn series_sampling_is_observation_only() {
    // Paired runs with the sampler armed and disarmed: bit-identical
    // results, and the sampled series themselves are reproducible.
    let plain = run_figure("fig20", Scale::Smoke, None).unwrap();
    let (first, second) = (armed_series(), armed_series());
    let a = run_figure_with_obs("fig20", Scale::Smoke, None, &first).unwrap();
    let b = run_figure_with_obs("fig20", Scale::Smoke, None, &second).unwrap();
    assert_eq!(plain, a, "series sampling must not change results");
    assert_eq!(a, b);
    let (sa, sb) = (first.series_snapshot(), second.series_snapshot());
    assert!(sa.total_points > 0, "the sampler must actually have recorded the run");
    assert!(
        sa.get("sched_queue_depth", cdnc_obs::SeriesKind::Gauge)
            .is_some_and(|e| !e.points.is_empty()),
        "queue depth must be sampled"
    );
    assert_eq!(
        sa.to_json().to_compact(),
        sb.to_json().to_compact(),
        "paired sampled runs must agree on every series point"
    );
}

#[test]
fn series_identical_across_worker_counts() {
    // `--jobs n` must not change a single sampled point: shards mirror the
    // parent's series arming and are absorbed in task order.
    let serial = armed_series();
    let base =
        run_figure_ctx("fig17", RunCtx::with_pool(Scale::Smoke, Pool::new(1)), None, &serial)
            .unwrap();
    let reference = serial.series_snapshot().to_json().to_compact();
    assert!(serial.series_snapshot().total_points > 0);
    for jobs in [2, 4] {
        let reg = armed_series();
        let report =
            run_figure_ctx("fig17", RunCtx::with_pool(Scale::Smoke, Pool::new(jobs)), None, &reg)
                .unwrap();
        assert_eq!(base, report, "--jobs {jobs} must not change results");
        assert_eq!(
            reg.series_snapshot().to_json().to_compact(),
            reference,
            "--jobs {jobs} must reproduce the serial series sample-for-sample"
        );
    }
}

#[test]
fn instrumented_crawl_matches_uninstrumented() {
    let plain = build_trace(Scale::Smoke);
    let reg = armed();
    let observed = build_trace_with_obs(Scale::Smoke, &reg);
    assert_eq!(plain, observed, "crawl instrumentation must not change the trace");
}

#[test]
fn written_artifact_is_well_formed_json() {
    let dir = std::env::temp_dir().join(format!("cdnc-obs-test-{}", std::process::id()));
    let reg = armed();
    let report = run_figure_with_obs("fig20", Scale::Smoke, None, &reg).unwrap();
    let path = write_figure_artifact(&dir, "fig20", Scale::Smoke, &report, 1.25, &reg).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = parse(&text).expect("artifact must be valid JSON");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(doc.get("run_id").and_then(Json::as_str), Some("fig20"));
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(summary.get("wall_s").and_then(Json::as_f64), Some(1.25));
    let metrics = doc.get("metrics").expect("metrics object");
    assert!(
        metrics
            .get("counters")
            .and_then(|c| c.get("sched_events_processed"))
            .and_then(Json::as_f64)
            .is_some_and(|n| n > 0.0),
        "metrics must include the scheduler event count"
    );
    assert!(doc.get("phases").is_some(), "artifact must include phase timings");
}
