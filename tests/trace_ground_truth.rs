//! Ground-truth validation of the paper's §3 inference methodology.
//!
//! The causal tracer records exactly when every server adopted every update,
//! so a crawl synthesized from the span store is a measurement trace whose
//! underlying truth we know. Feeding it through `cdnc-analysis` checks that
//! the outside-in inferences — TTL by recursive refinement (§3.4) and the
//! multicast-tree existence tests (§3.5) — recover what the simulator
//! actually did, on infrastructures where the truth differs.

use cdnc_analysis::inconsistency::day_episodes;
use cdnc_analysis::tree_test::{
    daily_ranks, fraction_below_ttl, group_daily_mean_inconsistency, rank_churn,
};
use cdnc_analysis::ttl_inference::{infer_ttl, refine_ttl};
use cdnc_core::{run_with_obs, MethodKind, Scheme, SimConfig};
use cdnc_geo::{GeoPoint, IspId};
use cdnc_obs::{Registry, SpanKind, SpanStore};
use cdnc_simcore::{SimDuration, SimTime};
use cdnc_trace::{DayTrace, ServerMeta, ServerPoll, SnapshotId, Trace, UpdateSequence};

/// Synthetic-crawl polling interval, seconds. The acceptance bar for TTL
/// inference is "within one polling interval of the truth".
const POLL_S: u64 = 2;

fn poll_interval() -> SimDuration {
    SimDuration::from_secs(POLL_S)
}

/// A small §4-style run: 40 servers, updates every 60 s for half an hour.
fn base_cfg(scheme: Scheme, seed: u64) -> SimConfig {
    let updates = UpdateSequence::periodic(SimDuration::from_secs(60), SimTime::from_secs(1800));
    let mut cfg = SimConfig::section4(scheme, updates);
    cfg.servers = 40;
    cfg.users_per_server = 1;
    cfg.seed = seed;
    cfg
}

/// Runs the simulation with the tracer armed and returns the span store.
fn traced(cfg: &SimConfig) -> SpanStore {
    let reg = Registry::enabled();
    reg.enable_tracing();
    let _ = run_with_obs(cfg, &reg);
    reg.tracer().store()
}

/// The largest adoption lag the tracer recorded across all updates — the
/// simulator's ground-truth worst staleness.
fn max_adopt_lag_s(store: &SpanStore) -> f64 {
    store.traces.iter().flat_map(|m| store.adopt_lags_s(m.id)).fold(0.0f64, f64::max)
}

/// Synthesizes one crawl day from the tracer's adoption record: every
/// server is polled on a fixed staggered grid, and each poll reports the
/// newest snapshot the tracer says the server had adopted by then. Clocks
/// are skew-free, so the analysis sees an idealised crawler whose only
/// error is the sampling grid itself.
fn synth_day(day: u16, cfg: &SimConfig, store: &SpanStore) -> DayTrace {
    let mut adoptions: Vec<Vec<(u64, u32)>> = vec![Vec::new(); cfg.servers];
    for span in &store.spans {
        if span.kind == SpanKind::Adopt {
            let update = store.meta(span.trace).expect("adopt spans belong to a trace").update;
            // Node 0 is the provider; servers are nodes 1..=N.
            adoptions[span.node as usize - 1].push((span.end_us, update));
        }
    }
    for timeline in &mut adoptions {
        timeline.sort_unstable();
    }
    let horizon_us = cfg.horizon().as_micros();
    let poll_us = poll_interval().as_micros();
    let mut server_polls = Vec::new();
    for (s, timeline) in adoptions.iter().enumerate() {
        // Prime-multiplied stagger so servers don't poll in lockstep.
        let mut t = (s as u64 * 2_654_435_761) % poll_us;
        while t <= horizon_us {
            let adopted = timeline.partition_point(|&(at, _)| at <= t);
            let snap = if adopted == 0 { 0 } else { timeline[adopted - 1].1 };
            server_polls.push(ServerPoll {
                server: s as u32,
                time: SimTime::from_micros(t),
                reported_gmt_us: t as i64,
                snapshot: SnapshotId(snap),
                response_time: SimDuration::from_millis(100),
            });
            t += poll_us;
        }
    }
    DayTrace {
        day,
        updates: cfg.updates.clone(),
        server_polls,
        provider_polls: Vec::new(),
        user_polls: Vec::new(),
    }
}

/// Wraps synthesized days into a full crawl trace with skew-free metadata.
fn synth_trace(cfg: &SimConfig, days: Vec<DayTrace>) -> Trace {
    let servers = (0..cfg.servers as u32)
        .map(|id| ServerMeta {
            id,
            location: GeoPoint::new(0.0, id as f64 * 0.1).expect("valid"),
            isp: IspId(0),
            distance_to_provider_km: 0.0,
            true_skew_us: 0,
            measured_skew_us: 0,
        })
        .collect();
    Trace {
        servers,
        users: Vec::new(),
        provider_isp: IspId(0),
        provider_location: GeoPoint::new(0.0, 0.0).expect("valid"),
        poll_interval: poll_interval(),
        session: cfg.horizon().since(SimTime::ZERO),
        days,
    }
}

/// §3.4 cross-check: on a unicast TTL CDN the tracer's recorded truth is a
/// staleness never past one TTL, and both TTL-inference procedures recover
/// the configured TTL to within one crawl polling interval.
#[test]
fn inferred_ttl_matches_tracer_truth_within_one_poll_interval() {
    let cfg = base_cfg(Scheme::Unicast(MethodKind::Ttl), 7);
    let store = traced(&cfg);
    let ttl_s = cfg.server_ttl.as_secs_f64();
    let max_lag = max_adopt_lag_s(&store);
    assert!(max_lag <= ttl_s + 1.0, "TTL truth violated: max adopt lag {max_lag}");
    assert!(max_lag > ttl_s * 0.5, "adoption lags should fill a good part of [0, TTL]");

    let trace = synth_trace(&cfg, vec![synth_day(0, &cfg, &store)]);
    let lengths: Vec<f64> =
        day_episodes(&trace.days[0], &trace.servers, None).iter().map(|e| e.length_s).collect();
    assert!(lengths.len() > 200, "expected plenty of stale episodes, got {}", lengths.len());

    let tolerance = POLL_S as f64;
    let candidates: Vec<f64> = (1..=60).map(|c| c as f64 * 0.5).collect();
    let inferred = infer_ttl(&lengths, &candidates).expect("explicable lengths");
    assert!(
        (inferred - ttl_s).abs() <= tolerance,
        "grid-inferred TTL {inferred} vs truth {ttl_s} (tolerance {tolerance})"
    );
    let refined = refine_ttl(&lengths, 1e-4, 100).expect("non-empty lengths");
    assert!(
        (refined - ttl_s).abs() <= tolerance,
        "refined TTL {refined} vs truth {ttl_s} (tolerance {tolerance})"
    );
}

/// §3.5 cross-check: the dynamic-tree test separates a flat unicast CDN
/// (most daily maxima below ~TTL) from a real multicast tree (deep layers
/// accumulate one TTL per hop), and the static-tree test sees unicast ranks
/// churn day to day.
#[test]
fn tree_existence_verdict_matches_simulated_infrastructure() {
    // Three unicast "days": a fresh seed per day, like fresh game days.
    let mut days = Vec::new();
    let mut unicast_cfg = None;
    for d in 0..3u16 {
        let cfg = base_cfg(Scheme::Unicast(MethodKind::Ttl), 10 + d as u64);
        let store = traced(&cfg);
        days.push(synth_day(d, &cfg, &store));
        unicast_cfg.get_or_insert(cfg);
    }
    let unicast_cfg = unicast_cfg.expect("three days ran");
    let unicast = synth_trace(&unicast_cfg, days);

    let multi_cfg = base_cfg(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }, 10);
    let multi_store = traced(&multi_cfg);
    let ttl_s = multi_cfg.server_ttl.as_secs_f64();
    assert!(
        max_adopt_lag_s(&multi_store) > ttl_s,
        "tree truth violated: deep layers must lag past one TTL"
    );
    let multicast = synth_trace(&multi_cfg, vec![synth_day(0, &multi_cfg, &multi_store)]);

    // Dynamic-tree test (Fig. 12): fraction of servers whose daily maximum
    // stays below TTL plus slack.
    let slack = ttl_s * 1.5;
    let uni_frac = fraction_below_ttl(&unicast, 0, slack);
    let multi_frac = fraction_below_ttl(&multicast, 0, slack);
    assert!(uni_frac > 0.7, "unicast must keep most maxima below ~TTL, got {uni_frac}");
    assert!(multi_frac < 0.5, "a real tree must push most maxima past ~TTL, got {multi_frac}");
    assert!(multi_frac < uni_frac, "the verdicts must separate: {multi_frac} vs {uni_frac}");

    // Static-tree test (Fig. 11): per-server consistency ranks on the flat
    // CDN churn across days — no frozen tree layering.
    let groups: Vec<Vec<u32>> = (0..unicast_cfg.servers as u32).map(|s| vec![s]).collect();
    let means = group_daily_mean_inconsistency(&unicast, &groups);
    let churn = rank_churn(&daily_ranks(&means));
    assert!(churn > 0.02, "unicast ranks must churn day to day, got {churn}");
}

/// HAT cross-check: whatever the crawl measures on the paper's proposed
/// system is bounded by the tracer's recorded truth — an inferred stale
/// episode can never be longer than the worst adoption lag the simulator
/// actually produced.
#[test]
fn hat_measured_inconsistency_is_bounded_by_tracer_truth() {
    let scheme =
        Scheme::Hybrid { clusters: 8, tree_arity: 2, member_method: MethodKind::SelfAdaptive };
    let cfg = base_cfg(scheme, 21);
    let store = traced(&cfg);
    assert!(store.summary().adoptions > 0, "HAT must propagate updates");

    let trace = synth_trace(&cfg, vec![synth_day(0, &cfg, &store)]);
    let max_lag = max_adopt_lag_s(&store);
    let max_measured = day_episodes(&trace.days[0], &trace.servers, None)
        .iter()
        .map(|e| e.length_s)
        .fold(0.0f64, f64::max);
    assert!(
        max_measured <= max_lag + POLL_S as f64,
        "measurement ({max_measured}) cannot exceed the tracer's truth ({max_lag})"
    );
}
