//! The time-profiling contract, enforced end-to-end:
//!
//! - time profiling is observation-only (a profiled run's report is
//!   bit-identical to an unprofiled one, at any worker count),
//! - the structural sections of the timeprof artifact (frame paths and
//!   counts, per-kind handler counts) are identical for serial and
//!   `--jobs 2/4` runs once volatile nanosecond telemetry is scrubbed,
//!   and so are the `.folded` stack paths,
//! - the frame tree obeys its arithmetic invariants on a real run
//!   (self ≤ total, direct children's totals fit inside their parent),
//!   and the collapsed-stack export round-trips under property-based
//!   inputs.

use cdnc_experiments::obs_out::{scrub_volatile, ObsSettings};
use cdnc_experiments::timeprof_out::timeprof_doc;
use cdnc_experiments::{run_figure, run_figure_ctx, FigureReport, RunCtx, Scale};
use cdnc_obs::{parse_folded, to_folded, Json, TimeProfSnapshot};
use cdnc_par::Pool;
use proptest::prelude::*;
use std::collections::HashMap;

/// Runs fig17 under a timeprof-armed registry with `jobs` workers,
/// exactly as the `experiments timeprof` subcommand does.
fn timeprof_run(jobs: usize) -> (FigureReport, TimeProfSnapshot, Json) {
    let mut obs = ObsSettings::off();
    obs.enabled = true;
    obs.timeprof = true;
    let reg = obs.registry();
    let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs));
    let report = run_figure_ctx("fig17", ctx, None, &reg).expect("known id");
    let snap = reg.timeprof_snapshot().expect("timeprof armed");
    let doc = timeprof_doc("fig17", Scale::Smoke, &snap, 0.0);
    (report, snap, doc)
}

#[test]
fn timeprof_is_observation_only_and_jobs_invariant() {
    let plain = run_figure("fig17", Scale::Smoke, None).expect("known id");
    let (r1, s1, d1) = timeprof_run(1);
    let (r2, _, d2) = timeprof_run(2);
    let (r4, _, d4) = timeprof_run(4);

    // Observation-only: profiling must not change a single result.
    assert_eq!(plain, r1, "time profiling must not change results");
    assert_eq!(r1, r2, "worker count must not change results");
    assert_eq!(r2, r4);

    // Scrubbing the volatile nanoseconds leaves the structural sections
    // (frame paths + counts, handler counts): bit-identical at any
    // worker count — shards absorb in task order.
    let structural = |d: &Json| scrub_volatile(d).to_pretty();
    assert_eq!(structural(&d1), structural(&d2), "serial vs --jobs 2 structure");
    assert_eq!(structural(&d2), structural(&d4), "--jobs 2 vs --jobs 4 structure");
    let s = scrub_volatile(&d1);
    assert!(s.get("frames").is_some(), "frame structure survives the scrub");
    assert!(s.get("handlers").is_some(), "handler counts survive the scrub");
    assert!(s.get("time_telemetry").is_none(), "nanoseconds are volatile");

    // The run actually timed the hot paths: dispatch handlers fired and
    // every count is deterministic.
    let handler_count = |d: &Json, label: &str| {
        d.get("handlers")
            .and_then(|h| h.get(label))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(handler_count(&d1, "ev_publish") > 0.0, "event dispatch was timed");
    assert!(handler_count(&d1, "sched_pop") > 0.0, "scheduler pops were timed");
    assert!(handler_count(&d1, "net_send_update") > 0.0, "network sends were timed");
    assert_eq!(handler_count(&d1, "ev_publish"), handler_count(&d4, "ev_publish"));

    // The `.folded` export shares the deterministic path structure.
    let paths = |snap: &TimeProfSnapshot| {
        parse_folded(&to_folded(&snap.frames))
            .expect("well-formed folded output")
            .into_iter()
            .map(|(path, _)| path)
            .collect::<Vec<_>>()
    };
    let (_, s4, _) = timeprof_run(4);
    assert_eq!(paths(&s1), paths(&s4), "folded stack paths are jobs-invariant");
    assert!(!paths(&s1).is_empty(), "the run recorded frames");
}

#[test]
fn frame_tree_invariants_hold_on_a_real_run() {
    let (_, snap, _) = timeprof_run(2);
    let by_path: HashMap<&str, &cdnc_obs::PhaseTiming> =
        snap.frames.iter().map(|(p, t)| (p.as_str(), t)).collect();
    let mut child_sums: HashMap<&str, u128> = HashMap::new();
    for (path, t) in &snap.frames {
        assert!(t.self_ns <= t.total_ns, "{path}: self {} > total {}", t.self_ns, t.total_ns);
        assert!(t.count > 0, "{path}: recorded frames are entered at least once");
        if let Some((parent, _)) = path.rsplit_once('/') {
            assert!(by_path.contains_key(parent), "{path}: parent frame recorded too");
            *child_sums.entry(parent).or_default() += t.total_ns;
        }
    }
    for (parent, sum) in child_sums {
        let parent_total = by_path[parent].total_ns;
        assert!(
            sum <= parent_total,
            "{parent}: children total {sum} exceeds parent total {parent_total}"
        );
    }
    // Worker accounting covered the whole batch: every simulation task is
    // attributed to exactly one worker.
    let tasks: u64 = snap.workers.iter().map(|w| w.tasks).sum();
    assert!(tasks > 0, "parallel batches recorded worker stats");
}

proptest! {
    /// The collapsed-stack export round-trips: arbitrary frame paths and
    /// self-times survive `to_folded` → `parse_folded` exactly, in order.
    #[test]
    fn folded_round_trips_arbitrary_frames(
        frames in proptest::collection::vec(
            (
                proptest::collection::vec((0usize..8, 1usize..12), 1..5),
                0u64..u64::MAX,
            ),
            0..20,
        )
    ) {
        const NAMES: [&str; 8] =
            ["run", "step", "sim_events", "crawl", "a", "b9", "x_y", "net_send"];
        let frames: Vec<(String, cdnc_obs::PhaseTiming)> = frames
            .into_iter()
            .map(|(segments, self_ns)| {
                let path = segments
                    .iter()
                    .map(|&(name, reps)| NAMES[name].repeat(reps))
                    .collect::<Vec<_>>()
                    .join("/");
                let self_ns = u128::from(self_ns);
                (path, cdnc_obs::PhaseTiming { count: 1, total_ns: self_ns, self_ns })
            })
            .collect();
        let folded = to_folded(&frames);
        let parsed = parse_folded(&folded).expect("well-formed");
        prop_assert_eq!(parsed.len(), frames.len());
        for ((path, timing), (parsed_path, parsed_self)) in frames.iter().zip(&parsed) {
            prop_assert_eq!(path, parsed_path);
            prop_assert_eq!(timing.self_ns, *parsed_self);
        }
    }
}
