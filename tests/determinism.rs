//! Integration: cross-crate determinism. Every stochastic component of the
//! workspace must be a pure function of its seed — the property that makes
//! experiments reproducible and regressions bisectable.

use cdnc_core::{run, Scheme, SimConfig};
use cdnc_experiments::{run_figure, Scale};
use cdnc_geo::WorldBuilder;
use cdnc_simcore::SimRng;
use cdnc_trace::{crawl, CrawlConfig, UpdateSequence};

#[test]
fn worlds_are_seed_deterministic() {
    assert_eq!(WorldBuilder::new(500).seed(3).build(), WorldBuilder::new(500).seed(3).build());
    assert_ne!(WorldBuilder::new(500).seed(3).build(), WorldBuilder::new(500).seed(4).build());
}

#[test]
fn update_sequences_are_seed_deterministic() {
    let a = UpdateSequence::live_game(&mut SimRng::seed_from_u64(1));
    let b = UpdateSequence::live_game(&mut SimRng::seed_from_u64(1));
    let c = UpdateSequence::live_game(&mut SimRng::seed_from_u64(2));
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn traces_are_seed_deterministic() {
    let cfg = CrawlConfig { servers: 30, users: 10, days: 1, ..CrawlConfig::tiny() };
    assert_eq!(crawl(&cfg), crawl(&cfg));
    let other = CrawlConfig { seed: 9, ..cfg };
    assert_ne!(
        crawl(&other),
        crawl(&CrawlConfig { servers: 30, users: 10, days: 1, ..CrawlConfig::tiny() })
    );
}

#[test]
fn simulations_are_seed_deterministic_across_all_schemes() {
    let updates = UpdateSequence::live_game(&mut SimRng::seed_from_u64(5));
    for scheme in Scheme::section5_lineup() {
        let mut cfg = SimConfig::section4(scheme, updates.clone());
        cfg.servers = 30;
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "{scheme} diverged across identical runs");
        cfg.seed = 1234;
        let c = run(&cfg);
        assert_ne!(a, c, "{scheme} ignored the seed");
    }
}

#[test]
fn figure_reports_are_reproducible() {
    let a = run_figure("fig14", Scale::Smoke, None).unwrap();
    let b = run_figure("fig14", Scale::Smoke, None).unwrap();
    assert_eq!(a, b, "figure regeneration must be deterministic");
}
