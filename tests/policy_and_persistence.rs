//! Integration: the extension features — the §6 policy advisor and trace
//! persistence — work across crates.

use cdnc_core::{recommend, run, MethodKind, Requirement, Scheme, SimConfig, WorkloadProfile};
use cdnc_simcore::{SimDuration, SimRng};
use cdnc_trace::{crawl, read_trace, write_trace, CrawlConfig, UpdateSequence};

#[test]
fn advisor_picks_meet_their_bounds_in_simulation() {
    let updates = UpdateSequence::live_game(&mut SimRng::seed_from_u64(11));
    let profile = WorkloadProfile::from_updates(&updates, 0.5, 48, 1.0);
    for bound in [1.5, 30.0, 90.0] {
        let rec = recommend(&profile, &Requirement::strong(bound));
        let mut cfg = SimConfig::section4(rec.scheme, updates.clone());
        cfg.servers = 48;
        if let Some(ttl) = rec.server_ttl {
            cfg.server_ttl = ttl;
            cfg.drain = ttl * 5 + SimDuration::from_secs(120);
        }
        let report = run(&cfg);
        assert!(
            report.mean_server_lag_s() <= bound,
            "bound {bound}s: {} measured {}s — rationale: {}",
            rec.scheme.label(),
            report.mean_server_lag_s(),
            rec.rationale
        );
        assert_eq!(report.unresolved_lags, 0);
    }
}

#[test]
fn advisor_never_recommends_something_unrunnable() {
    // Sweep the whole decision space; every recommendation must simulate
    // cleanly.
    let updates = UpdateSequence::live_game(&mut SimRng::seed_from_u64(12));
    for servers in [10usize, 300] {
        for visit_rate in [0.001, 0.5] {
            for packet in [1.0, 500.0] {
                let profile = WorkloadProfile::from_updates(&updates, visit_rate, servers, packet);
                for req in [
                    Requirement::strong(1.0),
                    Requirement::strong(60.0),
                    Requirement::best_effort(),
                ] {
                    let rec = recommend(&profile, &req);
                    let mut cfg = SimConfig::section4(rec.scheme, updates.clone());
                    cfg.servers = 24; // scaled run, just prove it executes
                    cfg.update_packet_kb = packet;
                    if let Some(ttl) = rec.server_ttl {
                        cfg.server_ttl = ttl;
                        cfg.drain = ttl * 5 + SimDuration::from_secs(120);
                    }
                    let report = run(&cfg);
                    assert!(report.total_observations > 0, "{} produced nothing", rec.scheme);
                }
            }
        }
    }
}

#[test]
fn persisted_traces_analyse_identically() {
    use cdnc_analysis::inconsistency::day_episodes;
    use cdnc_analysis::ttl_inference::refine_ttl;

    let trace = crawl(&CrawlConfig { servers: 40, users: 20, days: 2, ..CrawlConfig::tiny() });
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).expect("serialise");
    let restored = read_trace(buf.as_slice()).expect("deserialise");
    assert_eq!(trace, restored);

    // The analysis pipeline gives byte-identical answers on the restored
    // trace — the property a re-analysis workflow depends on.
    let lengths = |t: &cdnc_trace::Trace| -> Vec<f64> {
        t.days.iter().flat_map(|d| day_episodes(d, &t.servers, None)).map(|e| e.length_s).collect()
    };
    let a = lengths(&trace);
    let b = lengths(&restored);
    assert_eq!(a, b);
    assert_eq!(refine_ttl(&a, 1e-4, 100), refine_ttl(&b, 1e-4, 100));
}

#[test]
fn adaptive_ttl_scheme_is_usable_end_to_end() {
    let updates = UpdateSequence::periodic(
        SimDuration::from_secs(25),
        cdnc_simcore::SimTime::from_secs(1_500),
    );
    let mut cfg = SimConfig::section5(Scheme::Unicast(MethodKind::AdaptiveTtl), updates);
    cfg.servers = 30;
    let report = run(&cfg);
    assert_eq!(report.unresolved_lags, 0);
    assert!(report.mean_server_lag_s() < 30.0, "age-based polling tracks regular updates");
}
