//! Integration: the node-lifecycle contract holds end to end. Whatever
//! the churn plan throws at a deployment — graceful leaves that hand off
//! their waiters, crash-restarts that come back cold, the scheduled
//! supernode-kill + flash-restart incident — every replica present at the
//! horizon must hold the provider's head version, every departure must be
//! matched by a rejoin, delayed-hit waiters must never leak, and the whole
//! lifecycle machinery must stay bit-identical across `--jobs` worker
//! counts.

use cdnc_core::{
    run, ChurnPlan, FaultPlan, MethodKind, Scheme, SimConfig, SimReport, WorkloadPlan,
};
use cdnc_experiments::ext_figs::churn_config;
use cdnc_experiments::{run_figure_ctx, RunCtx, Scale};
use cdnc_obs::{Level, Registry};
use cdnc_par::Pool;
use cdnc_simcore::SimRng;
use cdnc_trace::UpdateSequence;

fn game() -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(42))
}

fn churn_run(scheme: Scheme, intensity: f64, workload: bool) -> SimReport {
    let mut cfg = SimConfig::section4(scheme, game());
    cfg.servers = 48;
    cfg.faults = Some(FaultPlan::at_intensity(0.0));
    cfg.churn = Some(ChurnPlan::at_intensity(intensity));
    if workload {
        // Big objects make origin fetches slow enough that edges depart
        // mid-fetch, exercising the waiter-handoff path.
        cfg.workload = Some(WorkloadPlan {
            request_rate_hz: 2.0,
            object_kb: 2_000.0,
            ..WorkloadPlan::default()
        });
    }
    run(&cfg)
}

#[test]
fn churn_storms_converge_for_every_scheme() {
    // Heavy churn — half the fleet cycling, crashes losing all state —
    // yet by the horizon (churn fenced `settle` before it) every present
    // replica holds the head version and every departed node is back.
    for scheme in [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Invalidation),
        Scheme::Unicast(MethodKind::Ttl),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::hat(),
    ] {
        let r = churn_run(scheme, 0.8, false);
        let departures = r.node_leaves + r.crash_restarts;
        assert!(departures > 0, "{}: the storm never churned", r.scheme_label);
        assert_eq!(r.node_joins, departures, "{}: a departed node never rejoined", r.scheme_label);
        assert_eq!(r.convergence_violations, 0, "{}: stale replicas at horizon", r.scheme_label);
        assert_eq!(r.unresolved_lags, 0, "{}: unadopted publishes", r.scheme_label);
    }
}

#[test]
fn departed_nodes_are_abandoned_fast_not_retried_blind() {
    // Reliable delivery knows the difference between a lossy link and a
    // node that is gone: sends into departed nodes abandon on the first
    // retransmit check instead of burning the full retry budget.
    let r = churn_run(Scheme::Unicast(MethodKind::Push), 1.0, false);
    assert!(r.abandoned_to_departed > 0, "no fast-abandons despite full churn");
    assert!(
        r.abandoned_to_departed <= r.abandoned_deliveries,
        "fast-abandons must be a subset of all abandons"
    );
    assert_eq!(r.convergence_violations, 0, "rejoined nodes must still converge");
}

#[test]
fn request_plane_accounting_survives_edge_death_mid_fetch() {
    // Edges die while origin fetches are in flight. The waiters queued
    // behind those fetches must be released as counted misses — never
    // leaked — so the request ledger still balances exactly.
    let r = churn_run(Scheme::Unicast(MethodKind::Ttl), 1.0, true);
    let w = &r.workload;
    assert!(w.waiters_aborted > 0, "no edge died mid-fetch despite full churn");
    assert_eq!(
        w.requests,
        w.hits + w.delayed_hits + w.misses,
        "request ledger out of balance: aborted waiters leaked"
    );
    // No convergence assertion here: the 2 MB objects are chosen to
    // congest the shared uplinks (that is what keeps fetches in flight
    // long enough for edges to die mid-fetch), and under that overload
    // TTL poll replies legitimately lag past the horizon. The sweep
    // cells, with the default workload, enforce zero violations.
}

#[test]
fn supernode_flash_incident_fails_over_and_recovers() {
    // The storm cell's scheduled incident: the leader of cluster 0
    // crashes cold mid-game and flash-restarts 45 s later. The cluster
    // must fail over to a surviving supernode and still converge.
    let r = run(&churn_config(RunCtx::new(Scale::Smoke), Scheme::hat(), 0.0, true));
    assert_eq!(r.crash_restarts, 1, "exactly the scheduled crash");
    assert_eq!(r.node_joins, 1, "the flash restart");
    assert!(r.failovers > 0, "the cluster never failed over");
    assert_eq!(r.convergence_violations, 0, "stale replicas after the incident");
}

#[test]
fn churn_figure_is_bit_identical_across_jobs() {
    // The full ext_churn sweep — churn rng, lifecycle events, handoffs,
    // flash incident and all — collected under a fully armed registry,
    // must not depend on the worker count.
    let armed = || {
        let reg = Registry::enabled();
        reg.enable_events(Level::Debug, 65_536);
        reg.enable_tracing();
        reg
    };
    let serial_reg = armed();
    let serial = run_figure_ctx("ext_churn", RunCtx::new(Scale::Smoke), None, &serial_reg).unwrap();
    let jobs = 4;
    let reg = armed();
    let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs));
    let report = run_figure_ctx("ext_churn", ctx, None, &reg).unwrap();
    assert_eq!(serial, report, "ext_churn report differs at jobs={jobs}");
    let (s, p) = (serial_reg.snapshot(), reg.snapshot());
    assert_eq!(s.counters, p.counters, "jobs={jobs}: counters");
    assert_eq!(s.gauges, p.gauges, "jobs={jobs}: gauges");
    assert_eq!(serial_reg.drain_events(), reg.drain_events(), "jobs={jobs}: event log");
}
