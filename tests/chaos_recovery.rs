//! Integration: the fault plane's survivable-delivery contract holds end
//! to end. Whatever the plane injects — packet loss, duplication,
//! reordering, latency spikes, scheduled partitions, server failures — a
//! run with a [`FaultPlan`] must end with every present replica at the
//! provider's head version (the convergence invariant), and the whole
//! chaos machinery must stay bit-identical across `--jobs` worker counts.

use cdnc_core::{run, FailureConfig, FaultPlan, MethodKind, Scheme, SimConfig, SimReport};
use cdnc_experiments::{run_figure_ctx, RunCtx, Scale};
use cdnc_obs::{Level, Registry};
use cdnc_par::Pool;
use cdnc_simcore::SimRng;
use cdnc_trace::UpdateSequence;

fn game() -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(42))
}

fn chaos_run(scheme: Scheme, intensity: f64, failures: Option<f64>) -> SimReport {
    let mut cfg = SimConfig::section4(scheme, game());
    cfg.servers = 48;
    cfg.faults = Some(FaultPlan::at_intensity(intensity));
    cfg.failures = failures.map(FailureConfig::with_mean_gap_s);
    run(&cfg)
}

#[test]
fn storm_runs_reach_zero_stale_replicas_by_horizon() {
    // 17.5 % loss, duplication, reordering and spikes — yet by the horizon
    // (faults fenced `settle` before it) no present replica may be stale.
    for scheme in [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Invalidation),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::hat(),
    ] {
        let r = chaos_run(scheme, 0.7, None);
        assert_eq!(r.convergence_violations, 0, "{}: stale replicas at horizon", r.scheme_label);
        assert_eq!(r.unresolved_lags, 0, "{}: unadopted publishes", r.scheme_label);
    }
}

#[test]
fn server_failures_plus_faults_still_converge() {
    // The harshest combination: servers fail and recover *while* the
    // network loses and reorders packets. Recovered replicas resync, the
    // failure detector reroutes around dead upstreams, and every replica
    // that is present at the horizon must hold the head version.
    for scheme in [Scheme::Unicast(MethodKind::Push), Scheme::hat()] {
        let r = chaos_run(scheme, 0.5, Some(600.0));
        assert_eq!(r.convergence_violations, 0, "{}: stale replicas at horizon", r.scheme_label);
        // Pushes into failed servers are counted, never silently dropped.
        assert!(r.msgs_lost_to_failed > 0, "{}: expected losses to failed nodes", r.scheme_label);
    }
}

#[test]
fn reliable_delivery_pays_only_when_faults_are_live() {
    let clean = chaos_run(Scheme::Unicast(MethodKind::Push), 0.0, None);
    assert_eq!(clean.retransmits, 0, "a clean network needs no retransmissions");
    assert_eq!(clean.duplicates_suppressed, 0);
    assert_eq!(clean.convergence_violations, 0);
    let stormy = chaos_run(Scheme::Unicast(MethodKind::Push), 0.7, None);
    assert!(stormy.retransmits > 0, "heavy loss must trigger retransmissions");
    assert!(stormy.duplicates_suppressed > 0, "dup injection must be absorbed by the receiver");
}

#[test]
fn chaos_figure_is_bit_identical_across_jobs() {
    // The full ext_chaos sweep — fault-plane rng, retransmit timers, probe
    // chains, failovers and all — collected under a fully armed registry,
    // must not depend on the worker count.
    let armed = || {
        let reg = Registry::enabled();
        reg.enable_events(Level::Debug, 65_536);
        reg.enable_tracing();
        reg
    };
    let serial_reg = armed();
    let serial = run_figure_ctx("ext_chaos", RunCtx::new(Scale::Smoke), None, &serial_reg).unwrap();
    let jobs = 4;
    let reg = armed();
    let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs));
    let report = run_figure_ctx("ext_chaos", ctx, None, &reg).unwrap();
    assert_eq!(serial, report, "ext_chaos report differs at jobs={jobs}");
    let (s, p) = (serial_reg.snapshot(), reg.snapshot());
    assert_eq!(s.counters, p.counters, "jobs={jobs}: counters");
    assert_eq!(s.gauges, p.gauges, "jobs={jobs}: gauges");
    assert_eq!(serial_reg.drain_events(), reg.drain_events(), "jobs={jobs}: event log");
    assert_eq!(
        serial_reg.tracer().store(),
        reg.tracer().store(),
        "jobs={jobs}: causal trace store"
    );
}
