//! The determinism contract of the parallel runtime, enforced end to end:
//! for any worker count and any seed, crawl traces and figure reports are
//! bit-identical to the serial run — and so is everything a fully armed
//! observability registry collects along the way (counters, gauges,
//! histograms, span paths, the event log, and the causal trace store;
//! wall-clock span *durations* are the one legitimately non-deterministic
//! output).

use cdnc_experiments::{run_figure_ctx, RunCtx, Scale};
use cdnc_obs::{EventRecord, Level, MetricsSnapshot, Registry, SpanStore};
use cdnc_par::Pool;
use cdnc_trace::{crawl_with_obs_par, CrawlConfig};
use proptest::prelude::*;

/// Worker counts exercised against the serial baseline: even, dividing the
/// task counts, and a ragged prime that doesn't.
const JOBS: [usize; 4] = [1, 2, 4, 7];

/// A fully armed registry: metrics, spans, event log, causal tracer.
fn armed() -> Registry {
    let reg = Registry::enabled();
    reg.enable_events(Level::Debug, 65_536);
    reg.enable_tracing();
    reg
}

/// Everything deterministic a registry collected, extracted for comparison.
struct Collected {
    snapshot: MetricsSnapshot,
    events: Vec<EventRecord>,
    store: SpanStore,
}

fn collect(reg: &Registry) -> Collected {
    Collected { snapshot: reg.snapshot(), events: reg.drain_events(), store: reg.tracer().store() }
}

/// Asserts two registries collected identical deterministic state.
fn assert_collected_match(serial: &Collected, parallel: &Collected, label: &str) {
    assert_eq!(serial.snapshot.counters, parallel.snapshot.counters, "{label}: counters");
    assert_eq!(serial.snapshot.gauges, parallel.snapshot.gauges, "{label}: gauges");
    assert_eq!(serial.snapshot.histograms, parallel.snapshot.histograms, "{label}: histograms");
    let phases = |snap: &MetricsSnapshot| {
        snap.spans.iter().map(|(path, t)| (path.clone(), t.count)).collect::<Vec<_>>()
    };
    assert_eq!(
        phases(&serial.snapshot),
        phases(&parallel.snapshot),
        "{label}: span paths and entry counts"
    );
    assert_eq!(serial.events, parallel.events, "{label}: event log");
    assert_eq!(serial.store, parallel.store, "{label}: causal trace store");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3 })]

    /// Crawl construction: the trace and the merged instrumentation are
    /// bit-identical for every worker count, whatever the seed.
    #[test]
    fn crawl_is_bit_identical_across_jobs(seed in 0u64..u64::MAX) {
        let cfg = CrawlConfig { servers: 13, users: 7, days: 2, seed, ..CrawlConfig::tiny() };
        let serial_reg = armed();
        let serial_trace = crawl_with_obs_par(&cfg, &serial_reg, &Pool::serial());
        let serial = collect(&serial_reg);
        for jobs in JOBS {
            let reg = armed();
            let trace = crawl_with_obs_par(&cfg, &reg, &Pool::new(jobs));
            prop_assert_eq!(&serial_trace, &trace, "crawl trace differs at jobs={}", jobs);
            assert_collected_match(&serial, &collect(&reg), &format!("crawl jobs={jobs}"));
        }
    }

    /// Figure runs: reports and merged instrumentation are bit-identical
    /// for every worker count, on the canonical seeds and on arbitrary
    /// derived replicates.
    #[test]
    fn figure_is_bit_identical_across_jobs(replicate in 0u64..1_000_000) {
        let serial_reg = armed();
        let serial_ctx = RunCtx::new(Scale::Smoke).replicate(replicate);
        let serial_report = run_figure_ctx("fig17", serial_ctx, None, &serial_reg).unwrap();
        let serial = collect(&serial_reg);
        for jobs in JOBS {
            let reg = armed();
            let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs)).replicate(replicate);
            let report = run_figure_ctx("fig17", ctx, None, &reg).unwrap();
            prop_assert_eq!(&serial_report, &report, "fig17 report differs at jobs={}", jobs);
            assert_collected_match(&serial, &collect(&reg), &format!("fig17 jobs={jobs}"));
        }
    }
}

/// Replicates change results (they are independent repetitions), but each
/// replicate is itself reproducible.
#[test]
fn replicates_are_independent_but_reproducible() {
    let base = RunCtx::new(Scale::Smoke);
    let obs = Registry::disabled();
    let r0 = run_figure_ctx("fig17", base, None, &obs).unwrap();
    let r1 = run_figure_ctx("fig17", base.replicate(1), None, &obs).unwrap();
    let r1_again = run_figure_ctx("fig17", base.replicate(1), None, &obs).unwrap();
    assert_ne!(r0, r1, "replicate 1 must draw different seeds");
    assert_eq!(r1, r1_again, "each replicate must be reproducible");
}
