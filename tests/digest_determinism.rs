//! The determinism audit trail, enforced end-to-end: chained digests are
//! bit-identical across worker counts, an injected perturbation is
//! localized by the divergence bisection to exactly the perturbed event
//! index, and the fold itself is order-sensitive (a digest that ignored
//! event order could not catch reordering bugs).

use cdnc_experiments::divergence::{self, Outcome};
use cdnc_experiments::obs_out::write_figure_digest;
use cdnc_experiments::{run_figure_ctx, RunCtx, Scale};
use cdnc_obs::{Digest, DigestConfig, DigestSnapshot, Registry};
use cdnc_par::Pool;
use proptest::prelude::*;
use std::path::PathBuf;

/// Runs one figure with the digest armed and returns the snapshot.
fn digest_run(id: &str, jobs: usize, perturb: Option<u64>) -> DigestSnapshot {
    let reg = Registry::enabled();
    reg.enable_digest(DigestConfig { perturb, ..DigestConfig::default() });
    let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs));
    run_figure_ctx(id, ctx, None, &reg).expect("known id");
    reg.digest_snapshot().expect("digest armed")
}

/// A scratch directory unique to one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdnc-digest-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn chains_are_bit_identical_across_worker_counts() {
    // fig14 launches a batch of simulations, so the parallel path (shard +
    // absorb-in-task-order) is actually exercised.
    let serial = digest_run("fig14", 1, None);
    for jobs in [2, 4] {
        let parallel = digest_run("fig14", jobs, None);
        assert_eq!(
            serial.chain, parallel.chain,
            "digest chain must be bit-identical for --jobs {jobs}"
        );
        assert_eq!(serial.events, parallel.events, "fold counts must match for --jobs {jobs}");
        assert_eq!(
            serial.segments.len(),
            parallel.segments.len(),
            "segment structure must match for --jobs {jobs}"
        );
        for (i, (a, b)) in serial.segments.iter().zip(&parallel.segments).enumerate() {
            assert_eq!(a.chain, b.chain, "segment {i} chain must match for --jobs {jobs}");
        }
    }
}

#[test]
fn injected_perturbation_localizes_to_its_exact_index() {
    let dir = scratch("perturb");
    const PERTURB: u64 = 137;
    let write = |name: &str, perturb: Option<u64>| {
        let reg = Registry::enabled();
        reg.enable_digest(DigestConfig { perturb, ..DigestConfig::default() });
        run_figure_ctx("fig14", RunCtx::new(Scale::Smoke), None, &reg).expect("known id");
        let sub = dir.join(name);
        write_figure_digest(&sub, "fig14", Scale::Smoke, &reg).unwrap().expect("digest armed")
    };
    let clean = write("clean", None);
    let perturbed = write("perturbed", Some(PERTURB));
    let settings = cdnc_experiments::obs_out::ObsSettings {
        trace_dir: Some(dir.join("traces")),
        ..cdnc_experiments::obs_out::ObsSettings::off()
    };
    match divergence::run(&clean, &perturbed, &settings).expect("bisect succeeds") {
        Outcome::Diverged(loc) => {
            // The perturbation XORs the fold word at one local index of
            // segment 0, so segment 0 diverges first and the localized
            // index is exactly the injected one.
            assert_eq!(loc.segment, 0, "first diverging segment");
            assert_eq!(loc.local, PERTURB, "divergence must localize to the perturbed index");
            assert_eq!(loc.global, PERTURB, "segment 0 local index is the global index");
            assert!(!loc.rerun_mismatch, "re-runs must reproduce their recorded chains");
            let rendered = loc.render();
            assert!(
                rendered.contains(&format!("first diverging event: global index {PERTURB}")),
                "headline line missing:\n{rendered}"
            );
        }
        Outcome::Identical => panic!("a perturbed run must diverge from a clean one"),
    }
    // Two clean runs of the same scenario are identical.
    let clean2 = write("clean2", None);
    assert!(
        matches!(divergence::run(&clean, &clean2, &settings), Ok(Outcome::Identical)),
        "identical scenarios must compare identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// Swapping any two adjacent distinct folds changes the chain: the
    /// digest is order-sensitive, so event reorderings cannot cancel out.
    #[test]
    fn fold_order_is_significant(
        events in proptest::collection::vec((0u32..64, 0u64..1_000_000, 0u64..256), 2..40),
        swap_at in 0usize..38,
    ) {
        let swap_at = swap_at % (events.len() - 1);
        if events[swap_at] == events[swap_at + 1] {
            // Swapping identical folds is a no-op; nothing to check.
            return Ok(());
        }
        let chain_of = |seq: &[(u32, u64, u64)]| {
            let reg = Registry::enabled();
            reg.enable_digest(DigestConfig::default());
            let d: Digest = reg.digest();
            for &(node, t_us, tag) in seq {
                d.fold("ev_probe", node, t_us, &[tag]);
            }
            reg.digest_snapshot().unwrap().chain
        };
        let mut swapped = events.clone();
        swapped.swap(swap_at, swap_at + 1);
        prop_assert_ne!(chain_of(&events), chain_of(&swapped));
    }
}
