//! Integration: checkpoint/restore is exact. For arbitrary scheme ×
//! churn-intensity × pause-time combinations, serializing a paused
//! simulation and resuming it must reproduce the uninterrupted run bit
//! for bit — same report, same determinism-digest chain — and the replay
//! artifact layer on top must self-verify. Tampered or structurally
//! mismatched artifacts must fail loudly, never restore garbage.

use cdnc_core::{
    checkpoint, checkpoint_with_obs, resume, resume_until, resume_with_obs, run_with_obs,
    ChurnPlan, FaultPlan, MethodKind, Scheme, SimConfig, WorkloadPlan,
};
use cdnc_experiments::replay::{read_artifact, replay, take_checkpoint, ReplaySpec};
use cdnc_experiments::Scale;
use cdnc_obs::{DigestConfig, Registry};
use cdnc_simcore::{SimRng, SimTime};
use cdnc_trace::UpdateSequence;
use proptest::prelude::*;

/// The scheme palette the property sweeps (unicast, tree, hybrid).
fn schemes() -> [Scheme; 4] {
    [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Ttl),
        Scheme::Multicast { method: MethodKind::Invalidation, arity: 2 },
        Scheme::hat(),
    ]
}

fn cfg(scheme_idx: usize, intensity: f64, workload: bool) -> SimConfig {
    let scheme = schemes()[scheme_idx % 4];
    let mut cfg =
        SimConfig::section4(scheme, UpdateSequence::live_game(&mut SimRng::seed_from_u64(42)));
    cfg.servers = 24;
    cfg.faults = Some(FaultPlan::at_intensity(0.0));
    cfg.churn = Some(ChurnPlan::at_intensity(intensity));
    if workload {
        cfg.workload = Some(WorkloadPlan::default());
    }
    cfg
}

fn digest_registry() -> Registry {
    let reg = Registry::enabled();
    reg.enable_digest(DigestConfig::default());
    reg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Pause anywhere, resume, and nothing is different: the resumed
    /// report equals the uninterrupted one and the restored digest chain
    /// continues to the same final value over the same fold count.
    #[test]
    fn prop_resume_is_bit_identical(
        scheme_idx in 0usize..4,
        intensity_tenths in 0u32..=10,
        at_s in 0u64..=600,
        workload in (0u8..2).prop_map(|b| b == 1),
    ) {
        let cfg = cfg(scheme_idx, f64::from(intensity_tenths) / 10.0, workload);
        let straight_reg = digest_registry();
        let straight = run_with_obs(&cfg, &straight_reg);

        let ckpt_reg = digest_registry();
        let artifact = checkpoint_with_obs(&cfg, &ckpt_reg, SimTime::from_secs(at_s));
        let resume_reg = digest_registry();
        let resumed = resume_with_obs(&cfg, &resume_reg, &artifact).expect("well-formed artifact");
        prop_assert_eq!(&resumed, &straight, "resumed report diverged");

        let s = straight_reg.digest_snapshot().expect("digest armed");
        let r = resume_reg.digest_snapshot().expect("digest armed");
        prop_assert_eq!(r.chain, s.chain, "digest chain diverged after restore");
        prop_assert_eq!(r.events, s.events, "fold counts diverged after restore");
    }

    /// Stepping a restored run only to an intermediate time re-serializes
    /// to exactly the artifact a straight run checkpoints there: restore
    /// is exact at every instant, not just at the horizon.
    #[test]
    fn prop_windowed_resume_reserializes_identically(
        scheme_idx in 0usize..4,
        at_s in 0u64..=300,
        window_s in 1u64..=300,
    ) {
        let cfg = cfg(scheme_idx, 0.8, false);
        let artifact = checkpoint(&cfg, SimTime::from_secs(at_s));
        let until = SimTime::from_secs(at_s + window_s);
        let stepped = resume_until(&cfg, &artifact, until).expect("well-formed artifact");
        let straight = checkpoint(&cfg, until);
        prop_assert_eq!(stepped, straight, "windowed restore drifted from a straight run");
    }
}

#[test]
fn structural_mismatch_and_tampering_fail_loudly() {
    let base = cfg(0, 0.5, false);
    let artifact = checkpoint(&base, SimTime::from_secs(120));

    let mut more_servers = cfg(0, 0.5, false);
    more_servers.servers += 8;
    assert!(resume(&more_servers, &artifact).is_err(), "server-count mismatch must be rejected");

    let mut with_workload = cfg(0, 0.5, true);
    with_workload.servers = base.servers;
    assert!(resume(&with_workload, &artifact).is_err(), "subsystem mismatch must be rejected");

    let truncated: String = artifact.lines().take(40).map(|l| format!("{l}\n")).collect();
    assert!(resume(&base, &truncated).is_err(), "truncation must be rejected");
    assert!(resume(&base, "not an artifact").is_err(), "garbage must be rejected");
}

#[test]
fn replay_artifact_self_verifies_end_to_end() {
    // The experiments-level artifact: header + core checkpoint. Reading
    // it back recovers the cell spec, and replaying it — full or an
    // anomaly window — verifies bit-identity against a from-scratch run.
    let spec = ReplaySpec {
        scheme_key: "invalidation-mcast".to_owned(),
        intensity: 0.8,
        flash: true,
        scale: Scale::Smoke,
        at: SimTime::from_secs(240),
    };
    let text = take_checkpoint(&spec, &Registry::disabled());
    let (read, core) = read_artifact(&text).expect("well-formed replay artifact");
    assert_eq!(read, spec, "header round-trips the cell spec");
    assert!(core.starts_with("ckpt_version="), "core artifact embedded after the header");

    let full = replay(&text, None).expect("full replay");
    assert!(full.chain_match && full.report_match, "full replay diverged");
    let window = replay(&text, Some(SimTime::from_secs(360))).expect("windowed replay");
    assert!(window.chain_match && window.report_match, "anomaly-window replay diverged");
}
