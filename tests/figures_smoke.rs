//! Integration: every figure runner produces sane output at smoke scale.
//!
//! This is the "can we regenerate the whole paper" test: each figure must
//! run, emit rows, and report headline numbers with the right signs/orders.

use cdnc_experiments::{build_trace, run_figure, Scale, EVAL_FIGURES, HAT_FIGURES, TRACE_FIGURES};

#[test]
fn every_trace_figure_runs_and_reports() {
    let trace = build_trace(Scale::Smoke);
    for id in TRACE_FIGURES {
        let r =
            run_figure(id, Scale::Smoke, Some(&trace)).unwrap_or_else(|| panic!("{id} unknown"));
        assert_eq!(r.id, id);
        assert!(!r.rows.is_empty(), "{id} produced no rows");
        assert!(!r.keyvals.is_empty(), "{id} produced no headline numbers");
        for (name, value) in &r.keyvals {
            assert!(value.is_finite(), "{id}.{name} is not finite");
        }
    }
}

#[test]
fn every_eval_figure_runs_and_reports() {
    for id in EVAL_FIGURES {
        let r = run_figure(id, Scale::Smoke, None).unwrap_or_else(|| panic!("{id} unknown"));
        assert!(!r.keyvals.is_empty(), "{id} produced no headline numbers");
        for (name, value) in &r.keyvals {
            assert!(value.is_finite() && *value >= 0.0, "{id}.{name} = {value}");
        }
    }
}

#[test]
fn every_hat_figure_runs_and_reports() {
    for id in HAT_FIGURES {
        let r = run_figure(id, Scale::Smoke, None).unwrap_or_else(|| panic!("{id} unknown"));
        assert!(!r.keyvals.is_empty(), "{id} produced no headline numbers");
    }
}

#[test]
fn fig16_and_fig23_traffic_orderings() {
    // Multicast saves traffic for every method (Fig. 16) and HAT carries
    // the lightest total load (Fig. 23).
    let fig16 = run_figure("fig16", Scale::Smoke, None).unwrap();
    for m in ["Push", "Invalidation", "TTL"] {
        let uni = fig16.value(&format!("{m}_unicast_kmkb")).unwrap();
        let multi = fig16.value(&format!("{m}_multicast_kmkb")).unwrap();
        assert!(multi < uni, "{m}: multicast {multi} >= unicast {uni}");
    }
    let fig23 = run_figure("fig23", Scale::Smoke, None).unwrap();
    let hat = fig23.value("HAT_total_km").unwrap();
    for name in ["Push", "Invalidation", "TTL", "Self"] {
        let other = fig23.value(&format!("{name}_total_km")).unwrap();
        assert!(hat < other, "HAT {hat} must be lighter than {name} {other}");
    }
}

#[test]
fn fig20_scalability_shapes() {
    let r = run_figure("fig20", Scale::Smoke, None).unwrap();
    // Unicast TTL stays flat as the network grows; multicast TTL grows with
    // the deeper tree.
    let uni_small = r.value("unicast_TTL_s_at_n40").unwrap();
    let uni_big = r.value("unicast_TTL_s_at_n80").unwrap();
    assert!((uni_big - uni_small).abs() < 2.0, "unicast TTL should be size-insensitive");
    let multi_small = r.value("multicast_TTL/Multicast_s_at_n40").unwrap();
    let multi_big = r.value("multicast_TTL/Multicast_s_at_n80").unwrap();
    assert!(
        multi_big > multi_small * 1.3,
        "multicast TTL must grow with depth: {multi_small} -> {multi_big}"
    );
}
