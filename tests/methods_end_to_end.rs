//! Integration: every §4 qualitative claim holds end-to-end in the
//! evaluation simulator, across methods and infrastructures.

use cdnc_core::{run, MethodKind, Scheme, SimConfig, SimReport};
use cdnc_simcore::{SimDuration, SimRng, SimTime};
use cdnc_trace::UpdateSequence;

fn game() -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(42))
}

fn run_scheme(scheme: Scheme, servers: usize) -> SimReport {
    let mut cfg = SimConfig::section4(scheme, game());
    cfg.servers = servers;
    run(&cfg)
}

#[test]
fn consistency_ordering_holds_on_both_infrastructures() {
    for make in [|m| Scheme::Unicast(m), |m| Scheme::Multicast { method: m, arity: 2 }] {
        let push = run_scheme(make(MethodKind::Push), 60);
        let inval = run_scheme(make(MethodKind::Invalidation), 60);
        let ttl = run_scheme(make(MethodKind::Ttl), 60);
        assert!(
            push.mean_server_lag_s() < inval.mean_server_lag_s(),
            "{}: push {} < inval {}",
            push.scheme_label,
            push.mean_server_lag_s(),
            inval.mean_server_lag_s()
        );
        assert!(
            inval.mean_server_lag_s() < ttl.mean_server_lag_s(),
            "{}: inval {} < ttl {}",
            inval.scheme_label,
            inval.mean_server_lag_s(),
            ttl.mean_server_lag_s()
        );
    }
}

#[test]
fn ttl_mean_inconsistency_is_about_half_the_ttl() {
    // Paper Fig. 14(a): "TTL generates the largest inconsistency, the
    // average of which equals 5.7 s, around TTL/2" at a 10 s TTL.
    let r = run_scheme(Scheme::Unicast(MethodKind::Ttl), 80);
    let lag = r.mean_server_lag_s();
    assert!((3.5..7.5).contains(&lag), "TTL lag {lag} should be ≈ 5 s for a 10 s TTL");
}

#[test]
fn ttl_inconsistency_scales_with_the_ttl_value() {
    let mut short = SimConfig::section4(Scheme::Unicast(MethodKind::Ttl), game());
    short.servers = 60;
    let mut long = short.clone();
    long.server_ttl = SimDuration::from_secs(60);
    long.drain = SimDuration::from_secs(400);
    let short_lag = run(&short).mean_server_lag_s();
    let long_lag = run(&long).mean_server_lag_s();
    assert!(
        long_lag > short_lag * 3.0,
        "60 s TTL lag {long_lag} must far exceed 10 s TTL lag {short_lag}"
    );
}

#[test]
fn multicast_is_cheaper_but_staler_for_ttl() {
    let uni = run_scheme(Scheme::Unicast(MethodKind::Ttl), 120);
    let multi = run_scheme(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }, 120);
    assert!(multi.traffic.km_kb() < uni.traffic.km_kb(), "tree saves traffic");
    assert!(
        multi.mean_server_lag_s() > uni.mean_server_lag_s(),
        "tree layers amplify TTL staleness"
    );
}

#[test]
fn wider_trees_are_fresher_than_binary_for_ttl() {
    // Ablation of the d parameter: a shallower 8-ary tree cuts the
    // depth × TTL amplification relative to the paper's binary tree.
    let binary = run_scheme(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }, 120);
    let wide = run_scheme(Scheme::Multicast { method: MethodKind::Ttl, arity: 8 }, 120);
    assert!(
        wide.mean_server_lag_s() < binary.mean_server_lag_s(),
        "8-ary {} should beat binary {}",
        wide.mean_server_lag_s(),
        binary.mean_server_lag_s()
    );
}

#[test]
fn push_collapses_with_big_packets_in_unicast_only() {
    let big = |scheme| {
        let mut cfg = SimConfig::section4(scheme, game());
        cfg.servers = 120;
        cfg.update_packet_kb = 500.0;
        run(&cfg)
    };
    let uni = big(Scheme::Unicast(MethodKind::Push));
    let multi = big(Scheme::Multicast { method: MethodKind::Push, arity: 2 });
    assert!(
        uni.mean_server_lag_s() > multi.mean_server_lag_s(),
        "unicast push {} must suffer more than multicast {} at 500 KB",
        uni.mean_server_lag_s(),
        multi.mean_server_lag_s()
    );
}

#[test]
fn every_scheme_delivers_every_update_eventually() {
    for scheme in [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Invalidation),
        Scheme::Unicast(MethodKind::Ttl),
        Scheme::Unicast(MethodKind::SelfAdaptive),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::Multicast { method: MethodKind::Invalidation, arity: 2 },
        Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        Scheme::hybrid(),
        Scheme::hat(),
    ] {
        let r = run_scheme(scheme, 48);
        assert_eq!(r.unresolved_lags, 0, "{scheme} left updates undelivered");
        assert!(r.total_observations > 0, "{scheme} produced no user observations");
    }
}

#[test]
fn simulations_replay_identically() {
    let updates = UpdateSequence::periodic(SimDuration::from_secs(20), SimTime::from_secs(400));
    let mut cfg = SimConfig::section4(Scheme::hat(), updates);
    cfg.servers = 40;
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a, b);
}
