//! Integration: API-guideline contracts that downstream users rely on —
//! thread-safety of shared types, non-empty Debug/Display, and standard
//! trait availability.

use cdnc_core::{MethodKind, Recommendation, Scheme, SimConfig, SimReport};
use cdnc_net::{NodeId, Packet, PacketKind, TrafficStats};
use cdnc_simcore::{SimDuration, SimRng, SimTime};
use cdnc_trace::{CrawlConfig, SnapshotId, Trace, UpdateSequence};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_types_are_send_and_sync() {
    // Everything a parallel experiment harness moves across threads.
    assert_send_sync::<SimConfig>();
    assert_send_sync::<SimReport>();
    assert_send_sync::<Scheme>();
    assert_send_sync::<Trace>();
    assert_send_sync::<CrawlConfig>();
    assert_send_sync::<UpdateSequence>();
    assert_send_sync::<TrafficStats>();
    assert_send_sync::<Recommendation>();
    assert_send_sync::<SimTime>();
    assert_send_sync::<SimDuration>();
    assert_send_sync::<SimRng>();
}

#[test]
fn debug_representations_are_never_empty() {
    assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    assert!(!format!("{:?}", SnapshotId(0)).is_empty());
    assert!(!format!("{:?}", TrafficStats::new()).is_empty());
    assert!(!format!("{:?}", Scheme::hat()).is_empty());
    assert!(!format!("{:?}", MethodKind::Ttl).is_empty());
    assert!(!format!("{:?}", Packet::poll(NodeId(0), NodeId(1))).is_empty());
}

#[test]
fn display_is_human_oriented() {
    assert_eq!(SnapshotId(3).to_string(), "C3");
    assert_eq!(NodeId(7).to_string(), "n7");
    assert_eq!(Scheme::hat().to_string(), "HAT");
    assert_eq!(MethodKind::AdaptiveTtl.to_string(), "Adaptive-TTL");
    assert_eq!(PacketKind::TreeMaintenance.to_string(), "tree-maintenance");
    assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
}

#[test]
fn ordering_and_hashing_work_where_promised() {
    use std::collections::{BTreeSet, HashSet};
    let mut ids: BTreeSet<SnapshotId> = [3, 1, 2].map(SnapshotId).into();
    assert_eq!(ids.pop_first(), Some(SnapshotId(1)));
    let nodes: HashSet<NodeId> = [NodeId(1), NodeId(1), NodeId(2)].into();
    assert_eq!(nodes.len(), 2);
    assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
    assert!(SnapshotId(1) < SnapshotId(2));
}

#[test]
fn serde_roundtrips_for_data_structures() {
    // The workspace only ships serde (no format crate), so exercise the
    // trait bounds through a trivial hand-rolled serializer: serde_test is
    // unavailable, but Serialize/Deserialize being derivable and object-safe
    // is what downstream users need — prove it by bounds.
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    assert_serde::<Trace>();
    assert_serde::<UpdateSequence>();
    assert_serde::<TrafficStats>();
    assert_serde::<SnapshotId>();
    assert_serde::<SimTime>();
}
