//! The profiling contract, enforced end-to-end with the counting
//! allocator actually installed in this test binary:
//!
//! - profiling is observation-only (a profiled run's report is
//!   bit-identical to an unprofiled one),
//! - the deterministic sections of the profile artifact (`attribution`,
//!   `probes`) are identical for serial and `--jobs 2/4` runs once
//!   volatile telemetry is scrubbed, and
//! - the tagged allocator's counters obey their arithmetic contract
//!   (saturation, signed live levels, scope nesting/re-entrancy) under
//!   property-based inputs.

use cdnc_experiments::obs_out::{scrub_volatile, ObsSettings};
use cdnc_experiments::profile_out::profile_doc;
use cdnc_experiments::{run_figure, run_figure_ctx, FigureReport, RunCtx, Scale};
use cdnc_obs::profile::{self, ProfileCounters, ProfiledAlloc, Subsystem, SUBSYSTEMS};
use cdnc_obs::Json;
use cdnc_par::Pool;
use proptest::prelude::*;
use std::sync::Mutex;

/// The real thing: allocation attribution in this binary is fed by the
/// installed allocator, not simulated counter calls.
#[global_allocator]
static ALLOC: ProfiledAlloc = ProfiledAlloc;

/// Process-global attribution state (`set_enabled`, the window peaks)
/// is shared across tests in this binary: serialize everything that
/// enables it so windows never overlap.
static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs fig20 under a profiling-armed registry with `jobs` workers,
/// bracketing the run in an attribution window exactly as the
/// `experiments profile` subcommand does.
fn profiled_run(jobs: usize) -> (FigureReport, Json) {
    let mut obs = ObsSettings::off();
    obs.enabled = true;
    obs.profile = true;
    let reg = obs.registry();
    let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs));
    profile::set_enabled(true);
    profile::reset_window_peaks();
    let base = profile::snapshot();
    let report = run_figure_ctx("fig20", ctx, None, &reg).expect("known id");
    profile::set_enabled(false);
    let window = profile::snapshot().window_since(&base);
    (report, profile_doc("fig20", Scale::Smoke, &window, &reg, 0.0))
}

#[test]
fn profile_artifacts_are_jobs_invariant_and_observation_only() {
    let _g = lock();
    ProfiledAlloc::mark_installed();
    let plain = run_figure("fig20", Scale::Smoke, None).expect("known id");

    let (r1, d1) = profiled_run(1);
    let (r2, d2) = profiled_run(2);
    let (r4, d4) = profiled_run(4);

    // Observation-only: profiling must not change a single result.
    assert_eq!(plain, r1, "profiling must not change results");
    assert_eq!(r1, r2, "worker count must not change results");
    assert_eq!(r2, r4);

    // The structural probes come from registry shards absorbed in task
    // order: bit-identical for every worker count.
    let probes = |d: &Json| d.get("probes").expect("probes section").to_pretty();
    assert_eq!(probes(&d1), probes(&d2), "serial vs --jobs 2 probes");
    assert_eq!(probes(&d2), probes(&d4), "--jobs 2 vs --jobs 4 probes");

    // The attribution totals are fed by the process-global allocator:
    // workload-dominated, but per-thread warm-up inside scopes adds a tiny
    // jitter across worker counts. Hold every named bucket to 0.5%.
    let bucket = |d: &Json, name: &str, key: &str| {
        d.get("attribution")
            .and_then(|a| a.get(name))
            .and_then(|s| s.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(bucket(&d1, "sim_core", "bytes") > 0.0, "allocator must attribute for real");
    for name in ["scheduler", "net", "sim_core", "trace", "series", "analysis"] {
        for key in ["allocs", "bytes"] {
            let (a, b, c) =
                (bucket(&d1, name, key), bucket(&d2, name, key), bucket(&d4, name, key));
            let close = |x: f64, y: f64| (x - y).abs() <= 0.005 * x.max(y).max(1.0);
            assert!(close(a, b) && close(b, c), "{name}.{key} drifted: {a} / {b} / {c}");
        }
    }

    // The volatile scrub keeps exactly the sections above and drops the
    // telemetry — same contract `obs-diff` enforces on run artifacts.
    let s1 = scrub_volatile(&d1);
    assert!(s1.get("attribution").is_some());
    assert!(s1.get("probes").is_some());
    assert!(s1.get("allocator_telemetry").is_none(), "telemetry is volatile");
    assert!(s1.get("spikes").is_none(), "spike counts are volatile");
}

#[test]
fn scoped_allocations_attribute_to_the_scope_for_real() {
    let _g = lock();
    ProfiledAlloc::mark_installed();
    profile::set_enabled(true);
    let base = profile::snapshot();
    let grabbed = {
        let _net = profile::scope(Subsystem::Net);
        // Re-entrancy: this Vec's allocation goes through ProfiledAlloc,
        // which reads the thread's tag while the guard is alive.
        vec![0u8; 64 * 1024]
    };
    profile::set_enabled(false);
    let window = profile::snapshot().window_since(&base);
    assert!(
        window.subsystem(Subsystem::Net).bytes >= grabbed.capacity() as u64,
        "a 64 KiB allocation under scope(Net) must be charged to net, got {:?}",
        window.subsystem(Subsystem::Net)
    );
}

proptest! {
    #[test]
    fn byte_totals_saturate_instead_of_wrapping(
        sizes in proptest::collection::vec(0u64..=u64::MAX, 1..32)
    ) {
        let c = ProfileCounters::new();
        c.set_enabled(true);
        let mut expect = 0u64;
        for &s in &sizes {
            c.record_alloc(Subsystem::Net, s);
            expect = expect.saturating_add(s);
        }
        let snap = c.snapshot();
        prop_assert_eq!(snap.subsystem(Subsystem::Net).bytes, expect);
        prop_assert_eq!(snap.total_bytes, expect);
        prop_assert_eq!(snap.subsystem(Subsystem::Net).allocs, sizes.len() as u64);
        prop_assert_eq!(snap.total_allocs, sizes.len() as u64);
    }

    #[test]
    fn live_levels_track_any_alloc_free_interleaving(
        ops in proptest::collection::vec((0u8..2, 0u64..(1u64 << 40)), 1..64)
    ) {
        let c = ProfileCounters::new();
        c.set_enabled(true);
        let (mut live, mut peak) = (0i64, 0i64);
        for &(op, bytes) in &ops {
            if op == 0 {
                c.record_alloc(Subsystem::SimCore, bytes);
                live += bytes as i64;
                peak = peak.max(live);
            } else {
                // Frees may exceed allocations (pre-enable memory): the
                // live level legitimately goes negative, never wraps.
                c.record_dealloc(Subsystem::SimCore, bytes);
                live -= bytes as i64;
            }
        }
        let snap = c.snapshot();
        prop_assert_eq!(snap.subsystem(Subsystem::SimCore).live_bytes, live);
        prop_assert_eq!(snap.live_bytes, live);
        prop_assert_eq!(snap.subsystem(Subsystem::SimCore).peak_live_bytes, peak);
    }

    #[test]
    fn nested_scopes_always_restore_the_outer_tag(
        tags in proptest::collection::vec(0usize..SUBSYSTEMS, 1..12)
    ) {
        let _g = lock();
        profile::set_enabled(true);
        fn descend(tags: &[usize]) {
            let Some((&first, rest)) = tags.split_first() else { return };
            let tag = Subsystem::ALL[first];
            let before = profile::current();
            {
                let _s = profile::scope(tag);
                assert_eq!(profile::current(), tag);
                descend(rest);
                assert_eq!(profile::current(), tag, "inner scopes must restore on drop");
            }
            assert_eq!(profile::current(), before);
        }
        descend(&tags);
        profile::set_enabled(false);
        prop_assert_eq!(profile::current(), Subsystem::Other);
    }
}
