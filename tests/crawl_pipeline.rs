//! Integration: the crawl → analysis pipeline recovers the ground truth.
//!
//! The crawl simulator hides a TTL-60 unicast CDN behind poll records; the
//! §3 analysis pipeline must rediscover its properties from the records
//! alone — the central validation of the measurement reproduction.

use cdnc_analysis::causes::{detect_absences, provider_inconsistency_lengths};
use cdnc_analysis::inconsistency::{consistency_ratio, day_episodes};
use cdnc_analysis::ttl_inference::{infer_ttl, refine_ttl, theory_rmse};
use cdnc_analysis::user_view::redirect_fraction_cdf;
use cdnc_simcore::stats::Cdf;
use cdnc_trace::{crawl, CrawlConfig};

fn trace() -> cdnc_trace::Trace {
    crawl(&CrawlConfig { servers: 120, users: 60, days: 3, seed: 11, ..CrawlConfig::default() })
}

#[test]
fn ttl_inference_recovers_the_hidden_ttl() {
    let trace = trace();
    let lengths: Vec<f64> = trace
        .days
        .iter()
        .flat_map(|day| day_episodes(day, &trace.servers, None))
        .map(|e| e.length_s)
        .collect();
    assert!(lengths.len() > 10_000, "expected a rich episode sample, got {}", lengths.len());
    let candidates: Vec<f64> = (30..=100).step_by(2).map(f64::from).collect();
    let inferred = infer_ttl(&lengths, &candidates).expect("episodes exist");
    assert!(
        (52.0..=74.0).contains(&inferred),
        "inferred TTL {inferred}s should be near the hidden 60 s"
    );
    // The fixed-point refinement agrees with the grid search.
    let refined = refine_ttl(&lengths, 1e-4, 200).expect("episodes exist");
    assert!((refined - inferred).abs() < 12.0, "refined {refined} vs grid {inferred}");
    // The true TTL fits the uniform theory better than a wrong one.
    let rmse60 = theory_rmse(&lengths, 60.0, 61).unwrap();
    let rmse90 = theory_rmse(&lengths, 90.0, 91).unwrap();
    assert!(rmse60 < rmse90, "true TTL must fit better: {rmse60} vs {rmse90}");
}

#[test]
fn inconsistency_magnitudes_match_the_paper_regime() {
    let trace = trace();
    let lengths: Vec<f64> = trace
        .days
        .iter()
        .flat_map(|day| day_episodes(day, &trace.servers, None))
        .map(|e| e.length_s)
        .collect();
    let cdf = Cdf::from_samples(lengths);
    // Paper Fig. 3: 10.1% < 10 s, 20.3% > 50 s, mean ≈ 40 s. Same regime:
    assert!(cdf.fraction_at_most(10.0) < 0.35, "most episodes exceed 10 s");
    assert!((20.0..55.0).contains(&cdf.mean()), "mean {} out of regime", cdf.mean());
    assert!(cdf.max().unwrap() < 600.0, "no runaway staleness");
}

#[test]
fn provider_origin_is_nearly_consistent() {
    let trace = trace();
    let lengths: Vec<f64> = trace.days.iter().flat_map(provider_inconsistency_lengths).collect();
    if lengths.is_empty() {
        return; // perfectly consistent origin also satisfies the paper's claim
    }
    let cdf = Cdf::from_samples(lengths);
    assert!(
        cdf.fraction_at_most(10.0) > 0.7,
        "origin should be far fresher than edge servers: P(<10s) = {}",
        cdf.fraction_at_most(10.0)
    );
}

#[test]
fn consistency_ratios_are_plausible() {
    let trace = trace();
    let day = &trace.days[0];
    let session = trace.session.as_secs_f64();
    let episodes = day_episodes(day, &trace.servers, None);
    // Group per server and check the ratio is in (0, 1].
    for server in 0..trace.servers.len() as u32 {
        let eps: Vec<_> = episodes.iter().filter(|e| e.server == server).cloned().collect();
        let ratio = consistency_ratio(&eps, session);
        assert!(
            (0.2..=1.0).contains(&ratio),
            "server {server} ratio {ratio} outside plausible bounds"
        );
    }
}

#[test]
fn dns_redirection_is_in_the_measured_band() {
    let trace = trace();
    let cdf = redirect_fraction_cdf(&trace);
    let median = cdf.median().expect("trace has users");
    assert!(
        (0.08..0.25).contains(&median),
        "median redirect fraction {median} outside the paper's 13–17% band (with slack)"
    );
}

#[test]
fn absences_have_the_measured_shape() {
    let trace = trace();
    let mut lengths = Vec::new();
    for day in &trace.days {
        lengths.extend(detect_absences(day, trace.poll_interval).iter().map(|a| a.length_s));
    }
    assert!(!lengths.is_empty(), "absences must occur");
    let cdf = Cdf::from_samples(lengths);
    // Paper Fig. 10(b): bounded by 500 s, majority under 50 s.
    assert!(cdf.max().unwrap() <= 510.0);
    assert!(cdf.fraction_at_most(50.0) > 0.7);
}

#[test]
fn crawl_is_reproducible_end_to_end() {
    let a = trace();
    let b = trace();
    assert_eq!(a, b, "same config must give a bit-identical trace");
}
