//! Integration: the §5 claims about HAT hold end-to-end.

use cdnc_core::{run, MethodKind, Scheme, SimConfig, SimReport};
use cdnc_simcore::SimRng;
use cdnc_trace::UpdateSequence;

fn game() -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(42))
}

fn section5(scheme: Scheme, servers: usize) -> SimReport {
    let mut cfg = SimConfig::section5(scheme, game());
    cfg.servers = servers;
    run(&cfg)
}

#[test]
fn hat_minimises_network_load() {
    // Paper Fig. 23: "HAT still generates the lightest network load".
    let lineup = Scheme::section5_lineup();
    let reports: Vec<SimReport> = lineup.iter().map(|&s| section5(s, 100)).collect();
    let total_km = |r: &SimReport| r.traffic.update_km() + r.traffic.light_km();
    let hat = reports.iter().find(|r| r.scheme_label == "HAT").unwrap();
    for r in &reports {
        if r.scheme_label != "HAT" && r.scheme_label != "Hybrid" {
            assert!(
                total_km(hat) < total_km(r),
                "HAT load {} must beat {} at {}",
                total_km(hat),
                r.scheme_label,
                total_km(r)
            );
        }
    }
}

#[test]
fn update_message_ordering_matches_fig22a() {
    // Paper Fig. 22(a): Push > Invalidation > TTL-family > Self.
    let push = section5(Scheme::Unicast(MethodKind::Push), 100);
    let inval = section5(Scheme::Unicast(MethodKind::Invalidation), 100);
    let ttl = section5(Scheme::Unicast(MethodKind::Ttl), 100);
    let selfa = section5(Scheme::Unicast(MethodKind::SelfAdaptive), 100);
    assert!(push.server_update_messages > inval.server_update_messages);
    assert!(inval.server_update_messages > ttl.server_update_messages);
    assert!(ttl.server_update_messages > selfa.server_update_messages);
}

#[test]
fn provider_fanout_collapses_under_the_supernode_tree() {
    // Paper Fig. 22(b): only the tree roots hear from the provider.
    let hat = section5(Scheme::hat(), 100);
    let hybrid = section5(Scheme::hybrid(), 100);
    let push = section5(Scheme::Unicast(MethodKind::Push), 100);
    assert!(hat.provider_update_messages <= hybrid.provider_update_messages * 2);
    assert!(
        hat.provider_update_messages * 10 < push.provider_update_messages,
        "HAT provider messages {} must be an order below unicast push {}",
        hat.provider_update_messages,
        push.provider_update_messages
    );
}

#[test]
fn self_adaptive_goes_quiet_through_the_break() {
    // The live-game day has a 15-minute silent break; Algorithm 1 must stop
    // polling during it, so Self sends fewer update messages than TTL.
    let ttl = section5(Scheme::Unicast(MethodKind::Ttl), 100);
    let selfa = section5(Scheme::Unicast(MethodKind::SelfAdaptive), 100);
    assert!(
        (selfa.server_update_messages as f64) < ttl.server_update_messages as f64 * 0.9,
        "Self {} must save update messages vs TTL {}",
        selfa.server_update_messages,
        ttl.server_update_messages
    );
    // And not at a catastrophic consistency price.
    assert!(selfa.mean_user_lag_s() < ttl.mean_user_lag_s() * 2.0 + 10.0);
}

#[test]
fn roaming_observation_ordering_matches_fig24() {
    let rate = |scheme| {
        let mut cfg = SimConfig::section5(scheme, game());
        cfg.servers = 100;
        cfg.users_roam = true;
        run(&cfg).inconsistency_observation_rate()
    };
    let push = rate(Scheme::Unicast(MethodKind::Push));
    let inval = rate(Scheme::Unicast(MethodKind::Invalidation));
    let ttl = rate(Scheme::Unicast(MethodKind::Ttl));
    let selfa = rate(Scheme::Unicast(MethodKind::SelfAdaptive));
    // Push ≈ Invalidation ≈ 0 ≪ TTL; Self below TTL.
    assert!(push < 0.005, "push rate {push}");
    assert!(inval < 0.01, "invalidation rate {inval}");
    assert!(ttl > 0.02, "ttl rate {ttl}");
    assert!(selfa < ttl, "self-adaptive {selfa} must beat plain TTL {ttl}");
}

#[test]
fn hat_keeps_more_traffic_inside_isps() {
    // HAT's proximity clusters exist to avoid costly inter-ISP transit
    // (the paper's reference [38] pricing concern): against unicast TTL,
    // where every poll crosses to Atlanta, HAT must cut the absolute
    // transit volume and route a smaller share of its messages across
    // ISP boundaries. (The km·KB-weighted *fraction* is not compared:
    // HAT removes cheap short-haul volume from the denominator, which
    // can raise that ratio even as the transit bill shrinks.)
    let hat = section5(Scheme::hat(), 120);
    let ttl = section5(Scheme::Unicast(MethodKind::Ttl), 120);
    assert!(
        hat.traffic.inter_isp_km_kb() < ttl.traffic.inter_isp_km_kb() * 0.5,
        "HAT transit volume {} must undercut unicast TTL {}",
        hat.traffic.inter_isp_km_kb(),
        ttl.traffic.inter_isp_km_kb()
    );
    assert!(
        hat.traffic.inter_isp_message_fraction() < ttl.traffic.inter_isp_message_fraction(),
        "HAT inter-ISP message share {} must undercut unicast TTL {}",
        hat.traffic.inter_isp_message_fraction(),
        ttl.traffic.inter_isp_message_fraction()
    );
}

#[test]
fn hat_cluster_count_ablation() {
    // More clusters → more supernodes → heavier tree, lighter clusters.
    let few = section5(
        Scheme::Hybrid { clusters: 5, tree_arity: 4, member_method: MethodKind::SelfAdaptive },
        100,
    );
    let many = section5(
        Scheme::Hybrid { clusters: 40, tree_arity: 4, member_method: MethodKind::SelfAdaptive },
        100,
    );
    assert!(
        many.provider_update_messages >= few.provider_update_messages,
        "more supernode roots cannot shrink provider fan-out"
    );
    assert_eq!(few.unresolved_lags, 0);
    assert_eq!(many.unresolved_lags, 0);
}
