//! The paper's motivating workload end-to-end: crawl a simulated CDN
//! serving live game statistics for several days, then run the §3
//! measurement pipeline on the trace — inconsistency CDF, TTL inference,
//! and the multicast-tree existence verdict.
//!
//! ```text
//! cargo run -p cdnc-experiments --release --example live_game_day
//! ```

use cdnc_analysis::inconsistency::day_episodes;
use cdnc_analysis::tree_test::fraction_below_ttl;
use cdnc_analysis::ttl_inference::{infer_ttl, theory_rmse};
use cdnc_simcore::stats::Cdf;
use cdnc_trace::{crawl, CrawlConfig};

fn main() {
    // Crawl 120 servers for 3 game days, polling every 10 s — a scaled-down
    // version of the paper's 3000-server, 15-day crawl.
    let config = CrawlConfig { servers: 120, users: 60, days: 3, ..CrawlConfig::default() };
    println!(
        "crawling {} servers × {} days ({} polls/day/server)…",
        config.servers,
        config.days,
        config.session().as_secs() / config.poll_interval.as_secs()
    );
    let trace = crawl(&config);
    println!("collected {} server poll records", trace.total_server_polls());

    // Inconsistency lengths of every stale episode (paper Fig. 3).
    let lengths: Vec<f64> = trace
        .days
        .iter()
        .flat_map(|day| day_episodes(day, &trace.servers, None))
        .map(|e| e.length_s)
        .collect();
    let cdf = Cdf::from_samples(lengths.clone());
    println!(
        "\ninconsistency lengths: mean {:.1}s, median {:.1}s",
        cdf.mean(),
        cdf.median().unwrap_or(0.0)
    );
    println!(
        "  {:.1}% of requests below 10 s, {:.1}% above 50 s",
        100.0 * cdf.fraction_at_most(10.0),
        100.0 * (1.0 - cdf.fraction_at_most(50.0))
    );

    // Infer the CDN's TTL from the staleness data alone (paper Fig. 6):
    // the ground truth is 60 s.
    let candidates: Vec<f64> = (40..=80).step_by(2).map(f64::from).collect();
    let ttl = infer_ttl(&lengths, &candidates).expect("data present");
    println!("\ninferred content-server TTL: {ttl:.0}s (ground truth: 60 s)");
    if let (Some(r60), Some(r80)) =
        (theory_rmse(&lengths, 60.0, 61), theory_rmse(&lengths, 80.0, 81))
    {
        println!("  theory-fit RMSE: {r60:.4} at 60 s vs {r80:.4} at 80 s");
    }

    // Multicast-tree existence verdict (paper Fig. 12): under unicast most
    // servers' daily max inconsistency stays below TTL + delay slack.
    let frac = fraction_below_ttl(&trace, 0, 90.0);
    println!(
        "\ndynamic-tree test: {:.1}% of absence-free servers peak below TTL + slack",
        100.0 * frac
    );
    println!(
        "verdict: {}",
        if frac > 0.5 {
            "consistent with servers polling the provider directly (unicast)"
        } else {
            "inconsistent with unicast — a multicast layer may exist"
        }
    );
}
