//! Quickstart: simulate one live-game day on a CDN under three update
//! methods and compare consistency and traffic cost.
//!
//! ```text
//! cargo run -p cdnc-experiments --release --example quickstart
//! ```

use cdnc_core::{run, MethodKind, Scheme, SimConfig};
use cdnc_simcore::SimRng;
use cdnc_trace::UpdateSequence;

fn main() {
    // 1. The content: a live sports-game page — bursts of updates during
    //    play, silence during the break (≈306 snapshots over 2 h 26 min).
    let mut rng = SimRng::seed_from_u64(7);
    let updates = UpdateSequence::live_game(&mut rng);
    println!(
        "content: {} snapshots over {:.0} minutes",
        updates.len(),
        updates.last_update().as_secs_f64() / 60.0
    );

    // 2. The deployment: the paper's §4 testbed — 170 servers mainly in the
    //    US, Europe and Asia, provider in Atlanta, five users per server.
    println!(
        "\n{:<14} {:>14} {:>14} {:>16}",
        "method", "server incons.", "user incons.", "traffic (km·KB)"
    );
    for method in [MethodKind::Push, MethodKind::Invalidation, MethodKind::Ttl] {
        let mut cfg = SimConfig::section4(Scheme::Unicast(method), updates.clone());
        cfg.servers = 80; // keep the example snappy
        let report = run(&cfg);
        println!(
            "{:<14} {:>13.2}s {:>13.2}s {:>16.3e}",
            report.scheme_label,
            report.mean_server_lag_s(),
            report.mean_user_lag_s(),
            report.traffic.km_kb()
        );
    }

    println!(
        "\nThe paper's §4 finding, in one table: Push is freshest but most\n\
         expensive, TTL is cheapest per message but stalest (≈ TTL/2), and\n\
         Invalidation sits in between — matching the user's view of Push."
    );
}
