//! A parameter-space shootout: which update scheme wins as you vary the
//! update packet size and the network size? Reproduces the crossover logic
//! behind the paper's Figs. 19–20 and its §4.6 selection guidance.
//!
//! ```text
//! cargo run -p cdnc-experiments --release --example method_shootout
//! ```

use cdnc_core::{run, MethodKind, Scheme, SimConfig};
use cdnc_simcore::SimRng;
use cdnc_trace::UpdateSequence;

fn scenario(servers: usize, packet_kb: f64, scheme: Scheme) -> f64 {
    let updates = UpdateSequence::live_game(&mut SimRng::seed_from_u64(42));
    let mut cfg = SimConfig::section4(scheme, updates);
    cfg.servers = servers;
    cfg.update_packet_kb = packet_kb;
    run(&cfg).mean_server_lag_s()
}

fn main() {
    println!("server inconsistency (s) as load grows — who wins where?\n");
    println!("{:<28} {:>12} {:>12} {:>12}", "scenario", "Push", "Invalidation", "TTL");
    for (label, servers, kb) in [
        ("small network, 1 KB", 60usize, 1.0),
        ("small network, 500 KB", 60, 500.0),
        ("large network, 1 KB", 240, 1.0),
        ("large network, 500 KB", 240, 500.0),
    ] {
        let push = scenario(servers, kb, Scheme::Unicast(MethodKind::Push));
        let inval = scenario(servers, kb, Scheme::Unicast(MethodKind::Invalidation));
        let ttl = scenario(servers, kb, Scheme::Unicast(MethodKind::Ttl));
        let winner = if push <= inval && push <= ttl {
            "Push"
        } else if inval <= ttl {
            "Invalidation"
        } else {
            "TTL"
        };
        println!("{label:<28} {push:>11.2}s {inval:>11.2}s {ttl:>11.2}s   ← {winner}");
    }

    println!("\nsame sweep on the binary multicast tree:");
    println!("{:<28} {:>12} {:>12} {:>12}", "scenario", "Push", "Invalidation", "TTL");
    for (label, servers, kb) in
        [("large network, 1 KB", 240usize, 1.0), ("large network, 500 KB", 240, 500.0)]
    {
        let mk = |m| Scheme::Multicast { method: m, arity: 2 };
        let push = scenario(servers, kb, mk(MethodKind::Push));
        let inval = scenario(servers, kb, mk(MethodKind::Invalidation));
        let ttl = scenario(servers, kb, mk(MethodKind::Ttl));
        println!("{label:<28} {push:>11.2}s {inval:>11.2}s {ttl:>11.2}s");
    }

    println!(
        "\npaper §4.6, observed live: Push degrades fastest under load (the\n\
         provider uplink serialises N copies), TTL is load-insensitive in\n\
         unicast but amplifies with tree depth in multicast, and the\n\
         multicast tree absorbs large packets far better than unicast."
    );
}
