//! Deploying HAT: the paper's §5 hybrid self-adaptive system against the
//! five baselines, on the live-game workload it was designed for.
//!
//! ```text
//! cargo run -p cdnc-experiments --release --example hat_deployment
//! ```

use cdnc_core::{run, Scheme, SimConfig};
use cdnc_simcore::SimRng;
use cdnc_trace::UpdateSequence;

fn main() {
    let updates = UpdateSequence::live_game(&mut SimRng::seed_from_u64(42));
    println!("workload: {} snapshots, bursts during play + a silent break\n", updates.len());
    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "system", "updates", "from provider", "load (km)", "user incons.", "unresolved"
    );
    for scheme in Scheme::section5_lineup() {
        let mut cfg = SimConfig::section5(scheme, updates.clone());
        cfg.servers = 200; // scaled from the paper's 850 for example speed
        let r = run(&cfg);
        println!(
            "{:<14} {:>10} {:>13} {:>13.3e} {:>13.2}s {:>12}",
            r.scheme_label,
            r.server_update_messages,
            r.provider_update_messages,
            r.traffic.update_km() + r.traffic.light_km(),
            r.mean_user_lag_s(),
            r.unresolved_lags
        );
    }
    println!(
        "\nHAT's two tricks, visible above:\n\
         1. the 4-ary supernode tree collapses the provider's fan-out to a\n\
            handful of update messages per publish;\n\
         2. the self-adaptive members poll only while updates flow, going\n\
            quiet through the half-time break — fewer update messages than\n\
            plain TTL at similar consistency."
    );
}
