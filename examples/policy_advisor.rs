//! The §6 policy advisor in action: probe a workload, state a requirement,
//! get a deployment recommendation with its rationale — then verify it by
//! simulation.
//!
//! ```text
//! cargo run -p cdnc-experiments --release --example policy_advisor
//! ```

use cdnc_core::{recommend, run, CostObjective, Requirement, SimConfig, WorkloadProfile};
use cdnc_simcore::{SimDuration, SimRng, SimTime};
use cdnc_trace::UpdateSequence;

fn main() {
    let live_game = UpdateSequence::live_game(&mut SimRng::seed_from_u64(7));
    let stock_feed =
        UpdateSequence::periodic(SimDuration::from_secs(15), SimTime::from_secs(8_000));

    let cases = [
        (
            "live game page, 850 edges, must track the score",
            &live_game,
            850usize,
            Requirement::strong(2.0),
        ),
        ("live game page, 850 edges, a minute is fine", &live_game, 850, Requirement::strong(60.0)),
        ("live game page, 40 edges, best effort", &live_game, 40, Requirement::best_effort()),
        ("steady stock feed, 120 edges, 30 s bound", &stock_feed, 120, Requirement::strong(30.0)),
        (
            "live game page, 120 edges, protect the origin",
            &live_game,
            120,
            Requirement { max_staleness_s: Some(60.0), objective: CostObjective::ProviderLoad },
        ),
    ];

    for (desc, updates, servers, req) in cases {
        let profile = WorkloadProfile::from_updates(updates, 0.5, servers, 1.0);
        let rec = recommend(&profile, &req);
        println!("{desc}");
        println!(
            "  workload: {:.3} updates/s (gap CV {:.2}), {servers} servers",
            profile.update_rate_per_s, profile.update_gap_cv
        );
        println!("  advisor:  {rec}");
        // Verify the pick by simulation at a reduced size.
        let mut cfg = SimConfig::section4(rec.scheme, (*updates).clone());
        cfg.servers = servers.min(80);
        if let Some(ttl) = rec.server_ttl {
            cfg.server_ttl = ttl;
            cfg.drain = ttl * 5 + SimDuration::from_secs(120);
        }
        let report = run(&cfg);
        let verdict = match req.max_staleness_s {
            Some(bound) if report.mean_server_lag_s() <= bound => "meets the bound",
            Some(_) => "MISSES the bound",
            None => "best effort",
        };
        println!(
            "  measured: mean staleness {:.2}s, traffic {:.2e} km·KB — {verdict}\n",
            report.mean_server_lag_s(),
            report.traffic.km_kb()
        );
    }
}
