//! Trace forensics: start from raw poll records (as a real measurement
//! study would) and break down the *causes* of inconsistency — the paper's
//! §3.4 detective work: origin staleness, distance, ISP boundaries,
//! absences, clock skew.
//!
//! ```text
//! cargo run -p cdnc-experiments --release --example trace_forensics
//! ```

use cdnc_analysis::causes::{
    detect_absences, distance_vs_consistency, isp_inconsistency, provider_inconsistency_lengths,
    provider_response_times,
};
use cdnc_simcore::stats::Cdf;
use cdnc_trace::{crawl, CrawlConfig};

fn main() {
    let config = CrawlConfig { servers: 150, users: 60, days: 2, ..CrawlConfig::default() };
    let trace = crawl(&config);
    println!(
        "trace: {} servers, {} days, {} poll records\n",
        trace.servers.len(),
        trace.days.len(),
        trace.total_server_polls()
    );

    // Suspect 1: the provider's own origin.
    let origin: Vec<f64> = trace.days.iter().flat_map(provider_inconsistency_lengths).collect();
    if origin.is_empty() {
        println!("origin: no stale episodes at all — exonerated");
    } else {
        let cdf = Cdf::from_samples(origin);
        println!(
            "origin: mean staleness {:.1}s, {:.0}% under 10 s — minor contributor",
            cdf.mean(),
            100.0 * cdf.fraction_at_most(10.0)
        );
    }

    // Suspect 2: propagation distance.
    let (_, _, r) = distance_vs_consistency(&trace, 0, 2_000.0);
    println!("distance: correlation with consistency ratio r = {r:.3} — negligible");

    // Suspect 3: ISP boundaries.
    let clusters = isp_inconsistency(&trace, 0);
    let mut inc = Vec::new();
    for c in &clusters {
        if !c.intra.is_empty() && !c.inter.is_empty() {
            let intra = c.intra.iter().sum::<f64>() / c.intra.len() as f64;
            let inter = c.inter.iter().sum::<f64>() / c.inter.len() as f64;
            inc.push(inter - intra);
        }
    }
    if !inc.is_empty() {
        let lo = inc.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = inc.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "ISP boundaries: inter-ISP adds between {lo:.1}s and {hi:.1}s — real but secondary"
        );
    }

    // Suspect 4: server absences (overload / failure / reboot).
    let absences = detect_absences(&trace.days[0], trace.poll_interval);
    if !absences.is_empty() {
        let cdf = Cdf::from_samples(absences.iter().map(|a| a.length_s));
        println!(
            "absences: {} detected on day 0, median {:.0}s, max {:.0}s — occasional spikes",
            absences.len(),
            cdf.median().unwrap_or(0.0),
            cdf.max().unwrap_or(0.0)
        );
    }

    // Suspect 5: the provider's bandwidth.
    let rt = provider_response_times(&trace.days[0]);
    println!(
        "provider bandwidth: responses within [{:.2}, {:.2}]s — no congestion",
        rt.min().unwrap_or(0.0),
        rt.max().unwrap_or(0.0)
    );

    println!(
        "\nthe culprit, by elimination: the TTL itself — servers serve cached\n\
         content for up to 60 s by design. The paper attributes ~75% of all\n\
         inconsistency to it (§3.4.6)."
    );
}
