//! # cdnc-par
//!
//! Deterministic parallel execution for the workspace — dependency-free,
//! built on [`std::thread::scope`].
//!
//! Every workload in this repository is a pure function of its
//! configuration (including the seed). That makes work *embarrassingly
//! parallel*: tasks never communicate, so the only way parallelism can leak
//! into results is through scheduling — which task ran on which thread, and
//! in what order results were collected. [`Pool`] closes both holes:
//!
//! * **Per-task identity, not per-thread identity.** Tasks are identified by
//!   their index in the submission order. Anything a task derives from its
//!   identity (an RNG stream via `cdnc_simcore::derive_stream`, a shard
//!   registry) depends only on that index, never on the executing thread.
//! * **Chunked work-stealing index queue.** Workers repeatedly claim the
//!   next chunk of task indices from a shared atomic cursor. Which worker
//!   claims which chunk is racy — and irrelevant, because of the next point.
//! * **Ordered reduction.** Results are committed into the output in task
//!   order after all workers join, so `pool.map(n, f)` returns exactly
//!   `(0..n).map(f).collect()` no matter how tasks were interleaved.
//!
//! Consequently a run at `jobs = 7` is bit-identical to the serial run, and
//! `Pool::serial()` (`jobs = 1`) never spawns a thread at all — the default
//! everywhere, preserving single-threaded behaviour exactly.
//!
//! ```
//! use cdnc_par::Pool;
//!
//! let serial: Vec<u64> = (0..100u64).map(|i| i * i).collect();
//! for jobs in [1, 2, 4, 7] {
//!     let parallel = Pool::new(jobs).map(100, |i| (i as u64) * (i as u64));
//!     assert_eq!(parallel, serial);
//! }
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One worker's utilization over a single [`Pool::map_timed`] call. All
/// fields are wall clock: which worker claimed which chunk is racy, so
/// these numbers are telemetry, never inputs to anything deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (0-based submission order of the spawned threads).
    pub worker: usize,
    /// Nanoseconds spent inside task closures.
    pub busy_ns: u128,
    /// Nanoseconds spent claiming chunks from the shared queue.
    pub steal_ns: u128,
    /// Nanoseconds in the worker loop not spent busy or claiming.
    pub idle_ns: u128,
    /// Nanoseconds between this worker draining the queue and the
    /// slowest worker doing so — the join-barrier wait.
    pub join_wait_ns: u128,
    /// Chunks claimed from the queue.
    pub chunks: u64,
    /// Tasks executed.
    pub tasks: u64,
}

/// One worker's share of a timed map: its `(start, results)` chunks, its
/// accounting, and the instant it drained the queue (for the join wait).
type TimedPart<R> = (Vec<(usize, Vec<R>)>, WorkerStat, Instant);

/// How many chunks each worker should get on average: small enough to
/// amortise the atomic claim, large enough that uneven task costs still
/// balance across workers.
const CHUNKS_PER_WORKER: usize = 8;

/// The number of workers `jobs = 0` ("auto") resolves to on this machine.
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// A chunked work-stealing queue over the task index range `0..len`.
///
/// Workers call [`IndexQueue::take`] until it returns `None`; each call
/// claims the next contiguous chunk of indices. Claims are serialised by one
/// atomic counter, so every index is handed out exactly once.
#[derive(Debug)]
pub struct IndexQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl IndexQueue {
    /// A queue over `0..len` handing out chunks of `chunk` indices.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn new(len: usize, chunk: usize) -> IndexQueue {
        assert!(chunk > 0, "chunk size must be positive");
        IndexQueue { next: AtomicUsize::new(0), len, chunk }
    }

    /// Claims the next chunk of task indices, or `None` when drained.
    pub fn take(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// A fixed-size deterministic worker pool.
///
/// `jobs` is the number of worker threads a parallel region may use;
/// `jobs = 1` runs inline on the calling thread. The pool is a value, not a
/// resource: threads are scoped to each call, so a `Pool` is freely `Copy`
/// and can be embedded in configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::serial()
    }
}

impl Pool {
    /// A pool of `jobs` workers; `0` means "auto" ([`auto_jobs`]).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: if jobs == 0 { auto_jobs() } else { jobs } }
    }

    /// The single-threaded pool: every map runs inline, no threads spawned.
    pub fn serial() -> Pool {
        Pool { jobs: 1 }
    }

    /// The worker count this pool runs with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over the task indices `0..len` and returns the results in
    /// index order. `f` must be a pure function of the index for the
    /// determinism contract to hold (the pool guarantees ordered output
    /// regardless).
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` (by task order).
    pub fn map<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.jobs.min(len);
        if workers <= 1 {
            return (0..len).map(f).collect();
        }
        let chunk = len.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
        let queue = IndexQueue::new(len, chunk);
        let f = &f;
        let queue = &queue;
        // Each worker owns the chunks it claimed; the ordered reduction
        // below commits them into `slots` by task index, so the output is
        // independent of which worker ran what.
        let mut parts: Vec<Vec<(usize, Vec<R>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut claimed = Vec::new();
                        while let Some(range) = queue.take() {
                            let start = range.start;
                            claimed.push((start, range.map(f).collect::<Vec<R>>()));
                        }
                        claimed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        for (start, results) in parts.drain(..).flatten() {
            for (offset, r) in results.into_iter().enumerate() {
                slots[start + offset] = Some(r);
            }
        }
        slots.into_iter().map(|s| s.expect("every task index produced a result")).collect()
    }

    /// Like [`Pool::map`], but also measures per-worker utilization
    /// (busy / steal / idle nanoseconds and the join-barrier wait).
    ///
    /// Each worker returns its `(start, results)` chunks, its accounting,
    /// and the instant it finished (for the join-wait computation).
    ///
    /// This is a separate entry point rather than a flag on `map` so the
    /// unobserved hot path stays exactly as cheap as before: callers that
    /// have not armed time profiling never pay for the `Instant` reads.
    /// Results are in task order, identical to `map`; the stats are
    /// observation-only wall clock.
    pub fn map_timed<R, F>(&self, len: usize, f: F) -> (Vec<R>, Vec<WorkerStat>)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.jobs.min(len);
        if workers <= 1 {
            let start = Instant::now();
            let out: Vec<R> = (0..len).map(f).collect();
            let stat = WorkerStat {
                worker: 0,
                busy_ns: start.elapsed().as_nanos(),
                chunks: 1,
                tasks: len as u64,
                ..WorkerStat::default()
            };
            return (out, vec![stat]);
        }
        let chunk = len.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
        let queue = IndexQueue::new(len, chunk);
        let f = &f;
        let queue = &queue;
        let mut timed: Vec<TimedPart<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    scope.spawn(move || {
                        let loop_start = Instant::now();
                        let mut stat = WorkerStat { worker, ..WorkerStat::default() };
                        let mut claimed = Vec::new();
                        loop {
                            let t_claim = Instant::now();
                            let range = queue.take();
                            stat.steal_ns += t_claim.elapsed().as_nanos();
                            let Some(range) = range else { break };
                            stat.chunks += 1;
                            stat.tasks += range.len() as u64;
                            let start = range.start;
                            let t_busy = Instant::now();
                            claimed.push((start, range.map(f).collect::<Vec<R>>()));
                            stat.busy_ns += t_busy.elapsed().as_nanos();
                        }
                        let end = Instant::now();
                        stat.idle_ns = (end - loop_start)
                            .as_nanos()
                            .saturating_sub(stat.busy_ns)
                            .saturating_sub(stat.steal_ns);
                        (claimed, stat, end)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let last_end = timed.iter().map(|(_, _, end)| *end).max().expect("workers > 1");
        let mut stats = Vec::with_capacity(workers);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        for (part, mut stat, end) in timed.drain(..) {
            stat.join_wait_ns = (last_end - end).as_nanos();
            stats.push(stat);
            for (start, results) in part {
                for (offset, r) in results.into_iter().enumerate() {
                    slots[start + offset] = Some(r);
                }
            }
        }
        let out =
            slots.into_iter().map(|s| s.expect("every task index produced a result")).collect();
        (out, stats)
    }

    /// Maps `f` over `items`, passing each element with its index; results
    /// come back in item order (see [`Pool::map`]).
    pub fn map_slice<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map(items.len(), |i| f(i, &items[i]))
    }

    /// Like [`Pool::map_slice`], with the per-worker utilization of
    /// [`Pool::map_timed`].
    pub fn map_slice_timed<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Vec<WorkerStat>)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_timed(items.len(), |i| f(i, &items[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn queue_hands_out_every_index_once() {
        let q = IndexQueue::new(10, 3);
        let mut seen = Vec::new();
        while let Some(r) = q.take() {
            seen.extend(r);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(q.take(), None, "drained queue stays drained");
    }

    #[test]
    fn queue_handles_empty_range() {
        let q = IndexQueue::new(0, 4);
        assert_eq!(q.take(), None);
    }

    #[test]
    fn map_matches_serial_for_every_job_count() {
        let serial: Vec<usize> = (0..257).map(|i| i * 31 % 97).collect();
        for jobs in [1, 2, 3, 4, 7, 16] {
            assert_eq!(Pool::new(jobs).map(257, |i| i * 31 % 97), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        for jobs in [1, 4] {
            let pool = Pool::new(jobs);
            assert!(pool.map(0, |i| i).is_empty());
            assert_eq!(pool.map(1, |i| i + 10), vec![10]);
            assert_eq!(pool.map(2, |i| i), vec![0, 1]);
        }
    }

    #[test]
    fn map_slice_passes_elements_in_order() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        let out = Pool::new(4).map_slice(&items, |i, s| format!("{i}:{s}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}:item-{i}"));
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let n = 300;
        let ran = AtomicU64::new(0);
        let out = Pool::new(7).map(n, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), n as u64);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn jobs_zero_resolves_to_auto() {
        assert_eq!(Pool::new(0).jobs(), auto_jobs());
        assert!(auto_jobs() >= 1);
        assert_eq!(Pool::default(), Pool::serial());
    }

    #[test]
    fn oversubscription_is_allowed() {
        // More workers than tasks: the pool clamps to the task count.
        assert_eq!(Pool::new(64).map(3, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn map_timed_matches_map_and_accounts_every_task() {
        let serial: Vec<usize> = (0..257).map(|i| i * 31 % 97).collect();
        for jobs in [1, 2, 4] {
            let (out, stats) = Pool::new(jobs).map_timed(257, |i| i * 31 % 97);
            assert_eq!(out, serial, "jobs={jobs}");
            assert_eq!(stats.len(), jobs.min(257));
            assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 257, "jobs={jobs}");
            assert!(stats.iter().map(|s| s.chunks).sum::<u64>() >= 1);
            for (i, s) in stats.iter().enumerate() {
                assert_eq!(s.worker, i);
            }
            assert!(
                stats.iter().any(|s| s.join_wait_ns == 0),
                "the slowest worker waits on nobody"
            );
        }
    }

    #[test]
    fn map_timed_handles_empty_input() {
        let (out, stats) = Pool::new(4).map_timed(0, |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.len(), 1, "serial inline path reports one worker");
        assert_eq!(stats[0].tasks, 0);
    }

    #[test]
    fn map_slice_timed_passes_elements_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let (out, _) = Pool::new(3).map_slice_timed(&items, |i, v| i as u32 + v);
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(100, |i| {
                assert!(i != 57, "boom at 57");
                i
            })
        });
        assert!(result.is_err(), "a worker panic must reach the caller");
    }
}
