//! Property tests for the observability primitives: histogram merge laws
//! and the JSON writer/parser round trip.

use cdnc_obs::{
    bucket_floor, bucket_index, parse, HistogramSnapshot, Json, Registry, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// Records `values` into a fresh enabled histogram and snapshots it.
fn snap(values: &[f64]) -> HistogramSnapshot {
    let reg = Registry::enabled();
    let h = reg.histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Everything except `sum`, which accumulates floating-point error in a
/// grouping-dependent way and is compared with a tolerance instead.
fn assert_equal_modulo_sum(
    a: &HistogramSnapshot,
    b: &HistogramSnapshot,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.buckets, &b.buckets);
    prop_assert_eq!(a.count, b.count);
    prop_assert_eq!(a.min, b.min);
    prop_assert_eq!(a.max, b.max);
    let tolerance = 1e-9 * (1.0 + a.sum.abs());
    prop_assert!(
        (a.sum - b.sum).abs() <= tolerance,
        "sums diverge beyond tolerance: {} vs {}",
        a.sum,
        b.sum
    );
    Ok(())
}

fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-10f64..1e10, 0..40)
}

proptest! {
    /// Merging snapshots is associative (exactly on buckets / count /
    /// min / max, within float tolerance on the sum).
    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        let left = merged(&merged(&sa, &sb), &sc);
        let right = merged(&sa, &merged(&sb, &sc));
        assert_equal_modulo_sum(&left, &right)?;
    }

    /// Merging two disjoint recordings equals recording the concatenated
    /// stream, and every observation is conserved in the buckets.
    #[test]
    fn merge_conserves_counts(a in values(), b in values()) {
        let both: Vec<f64> = a.iter().chain(&b).copied().collect();
        let m = merged(&snap(&a), &snap(&b));
        assert_equal_modulo_sum(&m, &snap(&both))?;
        prop_assert_eq!(m.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(m.buckets.iter().sum::<u64>(), m.count);
    }

    /// Bucket assignment is monotone in the value, stays in range, and the
    /// bucket floors themselves are strictly increasing.
    #[test]
    fn buckets_are_monotone(x in 0.0f64..1e12, y in 0.0f64..1e12, i in 0usize..63) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        prop_assert!(bucket_index(hi) < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_floor(i) < bucket_floor(i + 1));
    }

    /// A recorded value never lands below its bucket's floor.
    #[test]
    fn bucket_floor_bounds_value(v in 1e-9f64..1e10) {
        let i = bucket_index(v);
        // Slack covers log2 rounding at the exact bucket boundary.
        prop_assert!(v >= bucket_floor(i) * 0.999_999);
    }
}

// --- JSON round trip -------------------------------------------------------

fn json_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(1u32..0xD7FF, 0..12)
        .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

fn json_leaf() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        Just(Json::Bool(true)),
        Just(Json::Bool(false)),
        (-1e15f64..1e15).prop_map(Json::Num),
        // Integral values take the `i64` formatting path in the writer.
        (0u64..9_000_000_000_000_000).prop_map(Json::from),
        json_string().prop_map(Json::Str),
    ]
}

fn json_tree() -> impl Strategy<Value = Json> {
    (
        proptest::collection::vec((json_string(), json_leaf()), 0..6),
        proptest::collection::vec(json_leaf(), 0..6),
        json_string(),
        json_leaf(),
    )
        .prop_map(|(fields, items, key, nested_leaf)| {
            let nested = Json::obj().field(&key, nested_leaf);
            let mut obj = Json::Obj(fields);
            obj = obj.field("array", Json::Arr(items));
            obj.field("nested", nested)
        })
}

proptest! {
    /// Whatever the writer emits, the parser reads back identically — in
    /// both compact and pretty form.
    #[test]
    fn json_round_trips(j in json_tree()) {
        prop_assert_eq!(parse(&j.to_compact()).unwrap(), j.clone());
        prop_assert_eq!(parse(&j.to_pretty()).unwrap(), j);
    }
}

// --- time-series downsampling ------------------------------------------

use cdnc_obs::{lttb, SeriesPoint};

fn series_points() -> impl Strategy<Value = Vec<SeriesPoint>> {
    // Strictly increasing timestamps: positive gaps are prefix-summed.
    proptest::collection::vec((1u64..5_000, -1e6f64..1e6), 1..600).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(gap, value)| {
                t += gap;
                SeriesPoint { t_us: t, value }
            })
            .collect()
    })
}

proptest! {
    /// LTTB keeps the endpoints, respects the threshold, and — because it
    /// selects a subsequence — preserves timestamp monotonicity.
    #[test]
    fn lttb_preserves_ends_and_monotonicity(
        points in series_points(),
        threshold in 0usize..700,
    ) {
        let out = lttb(&points, threshold);
        prop_assert_eq!(out.len(), threshold.min(points.len()).max(1.min(points.len())));
        prop_assert_eq!(out[0], points[0], "first point kept");
        if out.len() >= 2 {
            prop_assert_eq!(*out.last().unwrap(), *points.last().unwrap(), "last point kept");
        }
        prop_assert!(
            out.windows(2).all(|w| w[0].t_us < w[1].t_us),
            "timestamps stay strictly increasing"
        );
        // Deterministic: a second run picks the identical subsequence.
        prop_assert_eq!(out, lttb(&points, threshold));
    }
}
