//! `cdnc-obs` — the observability layer of the workspace.
//!
//! One [`Registry`] handle per run gives instrumented code:
//!
//! - **Counters, gauges, histograms** ([`Counter`], [`Gauge`],
//!   [`Histogram`]): named, interned, updated with relaxed atomics. The
//!   histogram uses 64 fixed doubling buckets (log scale) plus exact
//!   count / sum / min / max.
//! - **Phase timers** ([`Registry::span`]): scoped guards that nest, so
//!   `build_tree` containing `flush` records `build_tree/flush`.
//! - **Run artifacts** ([`RunArtifact`]): hand-rolled JSON ([`Json`], no
//!   serde_json) bundling run identity, metrics, phase timings, and a
//!   domain summary into `results/obs/<run>.json`.
//! - **Event log** ([`Registry::enable_events`]): ring-buffered,
//!   level-filtered structured events drained to a JSONL file.
//! - **Time series** ([`Registry::enable_series`]): scheduler-driven
//!   sim-time sampling of registered gauges/counters (and derived rates)
//!   into fixed-capacity series with deterministic LTTB downsampling.
//! - **Determinism audit trail** ([`Registry::enable_digest`]): a chained
//!   64-bit digest over every fold point's structural identity, with
//!   periodic checkpoints — the divergence-bisection substrate.
//! - **Run health** ([`Registry::enable_health`]): wall-clock progress
//!   counters, a heartbeat file writer, and a stall watchdog.
//!
//! # Zero overhead when off
//!
//! [`Registry::disabled()`] is the default wiring everywhere. A disabled
//! registry and its handles are `None` inside; every operation is one
//! branch and no allocation, so simulation hot paths carry instrumentation
//! unconditionally.
//!
//! # Observation only
//!
//! Instrumentation must never feed back into simulated state: nothing read
//! from a registry (values, wall-clock timings) may influence scheduling,
//! RNG draws, or results. The experiments suite enforces this with a
//! paired-run test asserting instrumented and uninstrumented runs produce
//! bit-identical reports.

pub mod artifact;
pub mod chrome;
pub mod digest;
pub mod events;
pub mod flight;
pub mod health;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;
pub mod series;
pub mod span;
pub mod timeprof;
pub mod trace;

pub use artifact::{digest_str, write_event_log, RunArtifact};
pub use chrome::{from_chrome, parse_chrome, to_chrome};
pub use digest::{
    chain_hex, parse_chain_hex, Checkpoint, Digest, DigestConfig, DigestSnapshot, SegmentSnapshot,
    TrapEntry, TrapWindow, DEFAULT_CHECKPOINT_EVERY,
};
pub use events::{EventRecord, Level};
pub use flight::{Anomaly, FlightRecorder, FlightReport};
pub use health::{
    vm_rss_kb, Health, HealthMonitor, HealthMonitorConfig, HealthSnapshot, DEFAULT_HEARTBEAT_MS,
    DEFAULT_STALL_AFTER_MS,
};
pub use json::{parse, Json};
pub use metrics::{
    bucket_floor, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
    HISTOGRAM_MIN,
};
pub use profile::{
    MemProbe, ProfileSnapshot, ProfiledAlloc, SpikeDetector, SpikeRecord, Subsystem,
    SubsystemStats, DEFAULT_SPIKE_MULTIPLE, SUBSYSTEMS,
};
pub use registry::{GaugeSnapshot, MetricsSnapshot, ProfileConfig, Registry};
pub use series::{
    lttb, Sampler, SeriesEntry, SeriesKind, SeriesPoint, SeriesSnapshot, DEFAULT_CADENCE_US,
    SERIES_CAPACITY,
};
pub use span::{detach_spans, DetachedSpans, SpanGuard};
pub use timeprof::{
    parse_folded, to_folded, HandlerGuard, HandlerTimer, PhaseTiming, TimeProfSnapshot, WorkerUse,
};
pub use trace::{
    CriticalPath, PathStep, PropagationTree, SpanId, SpanKind, SpanRecord, SpanStore, StoreSummary,
    TraceCtx, TraceId, TraceMeta, Tracer,
};
