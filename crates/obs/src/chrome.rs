//! Chrome trace-event (Perfetto-compatible) export of a [`SpanStore`].
//!
//! The emitted document is the JSON object flavour of the trace-event
//! format: a `traceEvents` array of complete (`"ph":"X"`) events plus
//! process/thread metadata, loadable directly in `ui.perfetto.dev` or
//! `chrome://tracing`. Each trace (published update) becomes a *process*
//! and each simulated node a *thread* inside it, so Perfetto renders one
//! swim-lane group per update with the propagation fanning out across
//! nodes. Control-plane spans (mode switches, tree repairs) live in a
//! dedicated pid-0 "control plane" process.
//!
//! Everything needed to rebuild the span store rides in each event's
//! `args` (span/parent ids, kind, update number, scope), so
//! [`from_chrome`] round-trips what [`to_chrome`] writes — the CLI's
//! `trace` subcommand and the CI validation step rely on this.

use crate::json::Json;
use crate::trace::{
    intern_label, SpanId, SpanKind, SpanRecord, SpanStore, TraceCtx, TraceId, TraceMeta,
};

/// Exported pid of the control-plane pseudo-process.
const CONTROL_PID: u32 = 0;

fn pid_of(trace: TraceId) -> u32 {
    if trace.is_some() {
        trace.0 + 1
    } else {
        CONTROL_PID
    }
}

fn opt_u32(v: Option<u32>) -> Json {
    v.map_or(Json::Null, Json::from)
}

fn id_or_null(some: bool, v: u32) -> Json {
    if some {
        Json::from(v)
    } else {
        Json::Null
    }
}

/// Renders `store` as a Chrome trace-event JSON document.
pub fn to_chrome(store: &SpanStore) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(store.spans.len() + store.traces.len() + 1);
    // Process metadata: name each update's lane, pin the control plane.
    events.push(
        Json::obj()
            .field("ph", "M")
            .field("pid", CONTROL_PID)
            .field("tid", 0u32)
            .field("name", "process_name")
            .field("args", Json::obj().field("name", "control plane")),
    );
    for meta in &store.traces {
        events.push(
            Json::obj()
                .field("ph", "M")
                .field("pid", pid_of(meta.id))
                .field("tid", 0u32)
                .field("name", "process_name")
                .field(
                    "args",
                    Json::obj().field("name", format!("{} · update {}", meta.scope, meta.update)),
                ),
        );
    }
    for s in &store.spans {
        let meta = store.meta(s.trace);
        let name = match s.kind {
            SpanKind::Hop => format!("hop:{}", s.label),
            _ => s.kind.as_str().to_owned(),
        };
        let args = Json::obj()
            .field("span", s.id.0)
            .field("parent", id_or_null(s.parent.is_some(), s.parent.0))
            .field("trace", id_or_null(s.trace.is_some(), s.trace.0))
            .field("kind", s.kind.as_str())
            .field("label", s.label)
            .field("node", s.node)
            .field("src", opt_u32(s.src))
            .field("update", meta.map(|m| m.update))
            .field("scope", meta.map(|m| m.scope.as_str()))
            .field("published_us", meta.map(|m| m.published_us));
        events.push(
            Json::obj()
                .field("name", name)
                .field("cat", s.kind.as_str())
                .field("ph", "X")
                .field("ts", s.begin_us)
                // Zero-duration events vanish in viewers; clamp to 1 µs.
                .field("dur", s.end_us.saturating_sub(s.begin_us).max(1))
                .field("pid", pid_of(s.trace))
                .field("tid", s.node)
                .field("args", args),
        );
    }
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
        .field("otherData", Json::obj().field("horizon_us", store.horizon_us))
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn field_str<'j>(obj: &'j Json, key: &str) -> Result<&'j str, String> {
    obj.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string field '{key}'"))
}

fn opt_field_u32(obj: &Json, key: &str) -> Option<u32> {
    obj.get(key).and_then(Json::as_f64).map(|v| v as u32)
}

/// Rebuilds a [`SpanStore`] from a document written by [`to_chrome`].
///
/// Metadata events are skipped; spans are reconstructed from each event's
/// `args` and re-sorted into record (id) order. Returns an error for
/// documents that are not round-trippable (missing args, duplicate or
/// non-dense span ids).
pub fn from_chrome(doc: &Json) -> Result<SpanStore, String> {
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing traceEvents array".to_owned()),
    };
    let mut spans: Vec<SpanRecord> = Vec::new();
    let mut traces: Vec<TraceMeta> = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = ev.get("args").ok_or("event without args")?;
        let begin_us = field_u64(ev, "ts")?;
        let dur = field_u64(ev, "dur")?;
        let kind = SpanKind::parse(field_str(args, "kind")?)
            .ok_or_else(|| format!("unknown span kind in {}", args.to_compact()))?;
        let id = SpanId(opt_field_u32(args, "span").ok_or("span id missing")?);
        let parent = opt_field_u32(args, "parent").map_or(SpanId::NONE, SpanId);
        let trace = opt_field_u32(args, "trace").map_or(TraceId::NONE, TraceId);
        // A 1 µs exported duration stands for an instant event.
        let end_us = if dur <= 1 { begin_us } else { begin_us + dur };
        spans.push(SpanRecord {
            id,
            trace,
            parent,
            kind,
            node: opt_field_u32(args, "node").ok_or("node missing")?,
            src: opt_field_u32(args, "src"),
            begin_us,
            end_us,
            label: intern_label(field_str(args, "label")?),
        });
        if kind == SpanKind::Publish && trace.is_some() {
            traces.push(TraceMeta {
                id: trace,
                update: opt_field_u32(args, "update").ok_or("publish without update number")?,
                published_us: field_u64(args, "published_us")?,
                scope: field_str(args, "scope")?.to_owned(),
            });
        }
    }
    spans.sort_by_key(|s| s.id);
    for (i, s) in spans.iter().enumerate() {
        if s.id.0 as usize != i {
            return Err(format!("span ids not dense at index {i} (id {})", s.id.0));
        }
    }
    traces.sort_by_key(|m| m.id);
    for (i, m) in traces.iter().enumerate() {
        if m.id.0 as usize != i {
            return Err(format!("trace ids not dense at index {i} (id {})", m.id.0));
        }
    }
    let horizon_us =
        doc.get("otherData").map(|o| field_u64(o, "horizon_us")).transpose()?.unwrap_or(0);
    Ok(SpanStore { spans, traces, horizon_us })
}

/// Convenience: parses trace-JSON text and rebuilds the span store.
pub fn parse_chrome(text: &str) -> Result<SpanStore, String> {
    from_chrome(&crate::json::parse(text)?)
}

/// `true` when `ctx` would export under the control-plane pid — test hook
/// keeping the pid mapping honest.
pub fn is_control_pid(ctx: TraceCtx) -> bool {
    pid_of(ctx.trace) == CONTROL_PID
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Tracer, TracerCore};
    use std::sync::Arc;

    fn sample_store() -> SpanStore {
        let t = Tracer(Some(Arc::new(TracerCore::default())));
        let root = t.publish(3, 0, 1_000, "unicast push");
        let hop = t.hop(root, "update", 0, 2, 1_000, 45_000);
        let adopt = t.adopt(hop, 2, 45_000);
        t.user_view(adopt, 7, 2, 60_000);
        let inval = t.hop(root, "invalidation", 0, 3, 1_000, 20_000);
        t.stale(inval, 3, 20_000);
        t.control(SpanKind::ModeSwitch, 3, 70_000, "to_ttl");
        t.tick(80_000);
        t.store()
    }

    #[test]
    fn export_shape_is_trace_event_format() {
        let doc = to_chrome(&sample_store());
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // 1 control + 1 trace metadata, 7 spans.
        assert_eq!(events.len(), 2 + 7);
        let complete: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(complete.len(), 7);
        for e in &complete {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 1.0, "durations clamped");
        }
        // The update's events live in pid 1; the mode switch in pid 0.
        let pids: Vec<f64> =
            complete.iter().filter_map(|e| e.get("pid").and_then(Json::as_f64)).collect();
        assert!(pids.contains(&1.0) && pids.contains(&0.0));
    }

    #[test]
    fn round_trips_through_json_text() {
        let store = sample_store();
        let text = to_chrome(&store).to_pretty();
        let back = parse_chrome(&text).expect("round-trip");
        assert_eq!(back, store);
    }

    #[test]
    fn import_rejects_malformed_documents() {
        assert!(from_chrome(&Json::obj()).is_err(), "no traceEvents");
        let bad = Json::obj().field(
            "traceEvents",
            Json::Arr(vec![Json::obj().field("ph", "X").field("ts", 0u64).field("dur", 1u64)]),
        );
        assert!(from_chrome(&bad).is_err(), "event without args");
        // Non-dense span ids.
        let store = sample_store();
        let mut doc = to_chrome(&store);
        if let Json::Obj(fields) = &mut doc {
            if let Some((_, Json::Arr(events))) =
                fields.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                events.retain(|e| {
                    e.get("args")
                        .and_then(|a| a.get("span"))
                        .and_then(Json::as_f64)
                        .is_none_or(|id| id != 2.0)
                });
            }
        }
        assert!(from_chrome(&doc).is_err(), "gap in span ids must be detected");
    }

    #[test]
    fn empty_store_round_trips_losslessly() {
        let empty = SpanStore::default();
        let doc = to_chrome(&empty);
        // Only the control-plane metadata event is emitted; no spans.
        let Some(Json::Arr(events)) = doc.get("traceEvents") else { panic!("traceEvents") };
        assert_eq!(events.len(), 1);
        let back = parse_chrome(&doc.to_pretty()).expect("empty round-trip");
        assert_eq!(back, empty);
        assert!(back.spans.is_empty() && back.traces.is_empty() && back.horizon_us == 0);
    }

    #[test]
    fn control_plane_only_store_round_trips_losslessly() {
        // A store with control spans but no published update: no Publish
        // span means no trace metadata, which must not break the import.
        let t = Tracer(Some(Arc::new(TracerCore::default())));
        t.control(SpanKind::ModeSwitch, 3, 1_000, "to_invalidation");
        t.control(SpanKind::TreeRepair, 5, 2_000, "reattach");
        t.tick(9_000);
        let store = t.store();
        assert!(store.traces.is_empty() && store.spans.len() == 2);
        let doc = to_chrome(&store);
        let back = parse_chrome(&doc.to_pretty()).expect("control-plane round-trip");
        assert_eq!(back, store);
        assert!(back.spans.iter().all(|s| !s.trace.is_some()), "all spans stay control-plane");
        assert_eq!(back.horizon_us, 9_000);
    }

    #[test]
    fn control_pid_mapping() {
        assert!(is_control_pid(TraceCtx::NONE));
        assert!(!is_control_pid(TraceCtx { trace: TraceId(0), span: SpanId(0) }));
    }
}
