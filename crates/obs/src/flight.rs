//! Anomaly-gated per-update flight recorder.
//!
//! A traced run records every update's journey; most journeys are boring.
//! The flight recorder scans a [`SpanStore`] and retains *full span detail*
//! only for updates that went wrong:
//!
//! - **slow adoption** — some replica's publish→adopt lag exceeded the
//!   configured threshold (the tracer-side analogue of the paper's long
//!   inconsistency episodes, §3.4),
//! - **orphaned hops** — a delivery that produced no terminal span at its
//!   destination (in flight at the horizon, or swallowed), and
//! - **lost deliveries** — messages dropped at failed/absent nodes or by
//!   the fault plane (absence-interrupted propagation, §3.4.5), and
//! - **convergence violations** — replicas still stale at the horizon even
//!   though every injected fault ended a settle window earlier (recorded by
//!   the simulator's convergence checker as `Lost` spans labelled
//!   `convergence`), and
//! - **memory spikes** — intervals whose allocated bytes exceeded the
//!   configured multiple of the running median (recorded by the profiling
//!   probe as `memory_spike` control spans; surfaced as one traceless
//!   report).
//!
//! The recorder is bounded: at most [`FlightRecorder::max_dumps`] reports
//! are kept, worst (highest adoption lag) first, so a pathological run
//! cannot flood the artifact directory.

use crate::json::Json;
use crate::trace::{PropagationTree, SpanKind, SpanRecord, SpanStore, TraceId};

/// Why an update's trace was retained.
#[derive(Debug, Clone, PartialEq)]
pub enum Anomaly {
    /// Worst publish→adopt lag crossed the threshold.
    SlowAdoption {
        /// The worst lag observed, seconds.
        lag_s: f64,
        /// The configured threshold it crossed, seconds.
        threshold_s: f64,
    },
    /// Hops with no terminal child at the destination.
    OrphanedHops {
        /// How many hops dangled.
        count: usize,
    },
    /// Deliveries dropped at absent nodes.
    LostDeliveries {
        /// How many deliveries died.
        count: usize,
    },
    /// Replicas that never converged to this update by the horizon despite
    /// the settle window.
    ConvergenceViolations {
        /// How many replicas were still stale.
        count: usize,
    },
    /// Allocation-rate spikes recorded by the memory probe (intervals whose
    /// allocated bytes exceeded the configured multiple of the running
    /// median; see `profile::MemProbe`).
    MemorySpikes {
        /// How many intervals spiked.
        count: usize,
    },
    /// Determinism-audit divergence points recorded by `divergence`
    /// (`digest_divergence` control spans; see `digest`).
    DigestDivergence {
        /// How many divergence points were flagged.
        count: usize,
    },
    /// Stall episodes recorded by the health watchdog (`stall` control
    /// spans; see `health`).
    Stall {
        /// How many stall episodes occurred.
        count: usize,
    },
    /// Node lifecycle events recorded by the churn plane — joins, graceful
    /// leaves, crash-restarts (`node_churn` control spans).
    NodeChurn {
        /// How many lifecycle events occurred.
        count: usize,
    },
}

impl Anomaly {
    /// Short machine-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Anomaly::SlowAdoption { .. } => "slow_adoption",
            Anomaly::OrphanedHops { .. } => "orphaned_hops",
            Anomaly::LostDeliveries { .. } => "lost_deliveries",
            Anomaly::ConvergenceViolations { .. } => "convergence_violations",
            Anomaly::MemorySpikes { .. } => "memory_spikes",
            Anomaly::DigestDivergence { .. } => "digest_divergence",
            Anomaly::Stall { .. } => "stall",
            Anomaly::NodeChurn { .. } => "node_churn",
        }
    }
}

/// One retained update: the anomalies plus the full span detail.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightReport {
    /// The trace retained.
    pub trace: TraceId,
    /// The update it carries.
    pub update: u32,
    /// The publishing simulation's scope label.
    pub scope: String,
    /// What went wrong (at least one entry).
    pub anomalies: Vec<Anomaly>,
    /// Worst publish→adopt lag of the update, seconds (0 when nothing
    /// adopted it).
    pub max_lag_s: f64,
    /// Every span of the trace, in record order.
    pub spans: Vec<SpanRecord>,
}

impl FlightReport {
    /// The report as a JSON document (one flight-recorder dump file).
    pub fn to_json(&self) -> Json {
        let anomalies = Json::Arr(
            self.anomalies
                .iter()
                .map(|a| {
                    let j = Json::obj().field("kind", a.tag());
                    match a {
                        Anomaly::SlowAdoption { lag_s, threshold_s } => {
                            j.field("lag_s", *lag_s).field("threshold_s", *threshold_s)
                        }
                        Anomaly::OrphanedHops { count } => j.field("count", *count),
                        Anomaly::LostDeliveries { count } => j.field("count", *count),
                        Anomaly::ConvergenceViolations { count } => j.field("count", *count),
                        Anomaly::MemorySpikes { count } => j.field("count", *count),
                        Anomaly::DigestDivergence { count } => j.field("count", *count),
                        Anomaly::Stall { count } => j.field("count", *count),
                        Anomaly::NodeChurn { count } => j.field("count", *count),
                    }
                })
                .collect(),
        );
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj()
                        .field("span", s.id.0)
                        .field(
                            "parent",
                            if s.parent.is_some() { Json::from(s.parent.0) } else { Json::Null },
                        )
                        .field("kind", s.kind.as_str())
                        .field("label", s.label)
                        .field("node", s.node)
                        .field("src", s.src.map_or(Json::Null, Json::from))
                        .field("begin_us", s.begin_us)
                        .field("end_us", s.end_us)
                })
                .collect(),
        );
        Json::obj()
            .field("update", self.update)
            .field("trace", self.trace.0)
            .field("scope", self.scope.as_str())
            .field("max_adopt_lag_s", self.max_lag_s)
            .field("anomalies", anomalies)
            .field("spans", spans)
    }

    /// Stable dump-file stem, e.g. `update_0007_trace3`. Traceless
    /// (control-plane) reports use `control_<anomaly tag>`, e.g.
    /// `control_memory_spikes` or `control_stall`.
    pub fn file_stem(&self) -> String {
        if self.trace == TraceId::NONE {
            let tag = self.anomalies.first().map_or("unknown", Anomaly::tag);
            return format!("control_{tag}");
        }
        format!("update_{:04}_trace{}", self.update, self.trace.0)
    }
}

/// Scans span stores for anomalous updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecorder {
    /// Publish→adopt lag above this is anomalous, seconds.
    pub lag_threshold_s: f64,
    /// Retention bound: reports kept per scan, worst first.
    pub max_dumps: usize,
}

impl FlightRecorder {
    /// Default retention bound.
    pub const DEFAULT_MAX_DUMPS: usize = 64;

    /// A recorder flagging adoption lags above `lag_threshold_s` seconds.
    pub fn new(lag_threshold_s: f64) -> Self {
        FlightRecorder { lag_threshold_s, max_dumps: Self::DEFAULT_MAX_DUMPS }
    }

    /// Scans `store` and returns the retained reports, worst adoption lag
    /// first, truncated to [`FlightRecorder::max_dumps`]. Healthy updates
    /// produce nothing.
    pub fn scan(&self, store: &SpanStore) -> Vec<FlightReport> {
        let mut reports: Vec<FlightReport> = Vec::new();
        for (meta, spans) in store.traces.iter().zip(store.spans_by_trace()) {
            let max_lag_s = spans
                .iter()
                .filter(|s| s.kind == SpanKind::Adopt)
                .map(|s| s.end_us.saturating_sub(meta.published_us) as f64 / 1e6)
                .fold(0.0, f64::max);
            let mut anomalies = Vec::new();
            if max_lag_s > self.lag_threshold_s {
                anomalies.push(Anomaly::SlowAdoption {
                    lag_s: max_lag_s,
                    threshold_s: self.lag_threshold_s,
                });
            }
            let orphans =
                PropagationTree::build(spans.clone()).map_or(0, |t| t.orphan_hops().len());
            if orphans > 0 {
                anomalies.push(Anomaly::OrphanedHops { count: orphans });
            }
            let convergence = spans
                .iter()
                .filter(|s| s.kind == SpanKind::Lost && s.label == "convergence")
                .count();
            let lost = spans.iter().filter(|s| s.kind == SpanKind::Lost).count() - convergence;
            if lost > 0 {
                anomalies.push(Anomaly::LostDeliveries { count: lost });
            }
            if convergence > 0 {
                anomalies.push(Anomaly::ConvergenceViolations { count: convergence });
            }
            if anomalies.is_empty() {
                continue;
            }
            reports.push(FlightReport {
                trace: meta.id,
                update: meta.update,
                scope: meta.scope.clone(),
                anomalies,
                max_lag_s,
                spans,
            });
        }
        reports.sort_by(|a, b| {
            b.max_lag_s.partial_cmp(&a.max_lag_s).unwrap_or(std::cmp::Ordering::Equal)
        });
        reports.truncate(self.max_dumps);
        // Control-plane anomalies (memory spikes, digest divergences, stall
        // episodes) belong to no update's trace: each kind surfaces as one
        // extra report appended after the truncation — one report per kind,
        // its span list bounded to the most recent `max_dumps` entries while
        // `count` keeps the full tally.
        for (kind, make) in [
            (
                SpanKind::MemorySpike,
                (|count| Anomaly::MemorySpikes { count }) as fn(usize) -> Anomaly,
            ),
            (SpanKind::DigestDivergence, |count| Anomaly::DigestDivergence { count }),
            (SpanKind::Stall, |count| Anomaly::Stall { count }),
            (SpanKind::NodeChurn, |count| Anomaly::NodeChurn { count }),
        ] {
            if let Some(report) = self.control_report(store, kind, make) {
                reports.push(report);
            }
        }
        reports
    }

    /// The bounded control report for `kind`, or `None` when no such spans
    /// were recorded.
    fn control_report(
        &self,
        store: &SpanStore,
        kind: SpanKind,
        make: fn(usize) -> Anomaly,
    ) -> Option<FlightReport> {
        let mut spans: Vec<SpanRecord> =
            store.trace_spans(TraceId::NONE).filter(|s| s.kind == kind).cloned().collect();
        if spans.is_empty() {
            return None;
        }
        let count = spans.len();
        if count > self.max_dumps {
            spans.drain(..count - self.max_dumps);
        }
        Some(FlightReport {
            trace: TraceId::NONE,
            update: 0,
            scope: "control".to_owned(),
            anomalies: vec![make(count)],
            max_lag_s: 0.0,
            spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Tracer, TracerCore};
    use std::sync::Arc;

    fn tracer() -> Tracer {
        Tracer(Some(Arc::new(TracerCore::default())))
    }

    /// One healthy update, one slow, one with a lost delivery, one with an
    /// orphaned hop.
    fn mixed_store() -> SpanStore {
        let t = tracer();
        let healthy = t.publish(1, 0, 0, "s");
        let h = t.hop(healthy, "update", 0, 1, 0, 500_000);
        t.adopt(h, 1, 500_000);
        let slow = t.publish(2, 0, 1_000_000, "s");
        let h = t.hop(slow, "update", 0, 1, 1_000_000, 95_000_000);
        t.adopt(h, 1, 95_000_000); // 94 s lag
        let lossy = t.publish(3, 0, 2_000_000, "s");
        let h = t.hop(lossy, "update", 0, 1, 2_000_000, 2_400_000);
        t.lost(h, 1, 2_400_000);
        let orphaned = t.publish(4, 0, 3_000_000, "s");
        t.hop(orphaned, "update", 0, 1, 3_000_000, 3_400_000); // never terminates
        t.store()
    }

    #[test]
    fn convergence_violations_are_classified_separately() {
        let t = tracer();
        let stuck = t.publish(9, 0, 0, "s");
        let h = t.hop(stuck, "update", 0, 1, 0, 400_000);
        t.adopt(h, 1, 400_000);
        // Replicas 2 and 3 never reached head by the horizon.
        t.child(stuck, SpanKind::Lost, 2, 600_000_000, "convergence");
        t.child(stuck, SpanKind::Lost, 3, 600_000_000, "convergence");
        let reports = FlightRecorder::new(60.0).scan(&t.store());
        assert_eq!(reports.len(), 1);
        let anomalies = &reports[0].anomalies;
        assert!(
            anomalies.iter().any(|a| a == &Anomaly::ConvergenceViolations { count: 2 }),
            "expected a convergence anomaly, got {anomalies:?}"
        );
        assert!(
            anomalies.iter().all(|a| a.tag() != "lost_deliveries"),
            "convergence spans must not double-count as lost deliveries"
        );
        assert!(crate::json::parse(&reports[0].to_json().to_pretty()).is_ok());
    }

    #[test]
    fn healthy_updates_are_not_retained() {
        let reports = FlightRecorder::new(60.0).scan(&mixed_store());
        let updates: Vec<u32> = reports.iter().map(|r| r.update).collect();
        assert!(!updates.contains(&1), "healthy update must not dump");
        assert_eq!(updates.len(), 3);
    }

    #[test]
    fn reports_sort_worst_lag_first_and_classify() {
        let reports = FlightRecorder::new(60.0).scan(&mixed_store());
        assert_eq!(reports[0].update, 2, "slowest first");
        assert!(reports[0].max_lag_s > 90.0);
        assert_eq!(reports[0].anomalies[0].tag(), "slow_adoption");
        let by_update =
            |u: u32| reports.iter().find(|r| r.update == u).expect("retained").anomalies.clone();
        assert!(by_update(3).iter().any(|a| a.tag() == "lost_deliveries"));
        assert!(by_update(4).iter().any(|a| a.tag() == "orphaned_hops"));
    }

    #[test]
    fn retention_is_bounded() {
        let mut rec = FlightRecorder::new(60.0);
        rec.max_dumps = 1;
        let reports = rec.scan(&mixed_store());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].update, 2, "the worst one survives the bound");
    }

    #[test]
    fn threshold_is_configurable() {
        // With a sky-high threshold only the structural anomalies remain.
        let reports = FlightRecorder::new(1e9).scan(&mixed_store());
        assert!(reports.iter().all(|r| r.anomalies.iter().all(|a| a.tag() != "slow_adoption")));
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn memory_spikes_surface_as_a_control_report() {
        let t = tracer();
        let healthy = t.publish(1, 0, 0, "s");
        let h = t.hop(healthy, "update", 0, 1, 0, 500_000);
        t.adopt(h, 1, 500_000);
        t.control(SpanKind::MemorySpike, 0, 2_000_000, "memory-spike");
        t.control(SpanKind::MemorySpike, 0, 5_000_000, "memory-spike");
        // Other control spans must not ride along.
        t.control(SpanKind::ModeSwitch, 3, 6_000_000, "to_invalidation");
        let reports = FlightRecorder::new(60.0).scan(&t.store());
        assert_eq!(reports.len(), 1, "healthy update dumps nothing; spikes do");
        let r = &reports[0];
        assert_eq!(r.trace, TraceId::NONE);
        assert_eq!(r.anomalies, vec![Anomaly::MemorySpikes { count: 2 }]);
        assert_eq!(r.anomalies[0].tag(), "memory_spikes");
        assert_eq!(r.spans.len(), 2);
        assert!(r.spans.iter().all(|s| s.kind == SpanKind::MemorySpike));
        assert_eq!(r.file_stem(), "control_memory_spikes");
        assert!(crate::json::parse(&r.to_json().to_pretty()).is_ok());
    }

    #[test]
    fn digest_divergence_and_stalls_surface_as_control_reports() {
        let t = tracer();
        t.control(SpanKind::DigestDivergence, 4, 7_000_000, "digest-divergence");
        t.control(SpanKind::Stall, 0, 1_000_000, "watchdog");
        t.control(SpanKind::Stall, 0, 9_000_000, "watchdog");
        let reports = FlightRecorder::new(60.0).scan(&t.store());
        assert_eq!(reports.len(), 2, "one control report per anomaly kind");
        let div = reports.iter().find(|r| r.file_stem() == "control_digest_divergence").unwrap();
        assert_eq!(div.anomalies, vec![Anomaly::DigestDivergence { count: 1 }]);
        assert_eq!(div.spans[0].node, 4);
        let stall = reports.iter().find(|r| r.file_stem() == "control_stall").unwrap();
        assert_eq!(stall.anomalies, vec![Anomaly::Stall { count: 2 }]);
        assert!(stall.spans.iter().all(|s| s.kind == SpanKind::Stall));
        assert!(crate::json::parse(&div.to_json().to_pretty()).is_ok());
        assert!(crate::json::parse(&stall.to_json().to_pretty()).is_ok());
    }

    #[test]
    fn control_reports_bound_span_retention_but_keep_the_count() {
        let t = tracer();
        for i in 0..10 {
            t.control(SpanKind::Stall, 0, i * 1_000, "watchdog");
        }
        let mut rec = FlightRecorder::new(60.0);
        rec.max_dumps = 3;
        let reports = rec.scan(&t.store());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.anomalies, vec![Anomaly::Stall { count: 10 }], "full tally survives");
        assert_eq!(r.spans.len(), 3, "span list bounded");
        assert_eq!(r.spans[0].begin_us, 7_000, "most recent entries retained");
    }

    #[test]
    fn dump_json_has_full_span_detail() {
        let reports = FlightRecorder::new(60.0).scan(&mixed_store());
        let j = reports[0].to_json();
        assert_eq!(j.get("update").and_then(Json::as_f64), Some(2.0));
        let spans = match j.get("spans") {
            Some(Json::Arr(items)) => items,
            other => panic!("spans missing: {other:?}"),
        };
        assert_eq!(spans.len(), 3, "publish + hop + adopt all retained");
        assert!(reports[0].file_stem().starts_with("update_0002"));
        // The dump must be valid JSON for the obs parser.
        assert!(crate::json::parse(&j.to_pretty()).is_ok());
    }
}
