//! Hot-path time attribution: the hierarchical frame tree behind
//! [`Registry::span`](crate::Registry::span), per-event-kind dispatch
//! timers, worker-utilization accounting, and the collapsed-stack
//! ("folded") flamegraph export.
//!
//! # Frame tree
//!
//! Span paths are interned into frame ids once: every `(parent, name)`
//! pair maps to one [`Frame`] holding its invocation count, total
//! nanoseconds, and the time attributed to child frames (so self time is
//! `total - children`). The per-thread stack of open spans holds frame
//! *ids*, not composed path strings, so the hot enter/exit path performs
//! no allocation and no linear scan over recorded paths — a hash lookup
//! on first entry, an id push/pop afterwards.
//!
//! # Determinism contract
//!
//! Like the rest of the crate, everything here is observation-only: wall
//! clock feeds histograms and frame totals but never simulation state.
//! Frame *structure* (paths, order, counts) and per-kind dispatch
//! *counts* are deterministic and survive `shard`/`absorb` bit-identically
//! at any `--jobs`; the nanosecond moments are volatile telemetry.

use crate::metrics::{merge_into_core, Histogram, HistogramCore, HistogramSnapshot};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

/// One open-span stack entry: the owning tree's token plus the frame id.
pub(crate) type StackEntry = (u64, u32);

thread_local! {
    /// The stack of open frames on this thread (across all trees).
    static FRAME_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

/// Tree tokens distinguish registries sharing the thread-local stack.
static NEXT_TREE_TOKEN: AtomicU64 = AtomicU64::new(1);

pub(crate) fn take_stack() -> Vec<StackEntry> {
    FRAME_STACK.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

pub(crate) fn restore_stack(saved: Vec<StackEntry>) {
    FRAME_STACK.with(|s| *s.borrow_mut() = saved);
}

#[cfg(test)]
pub(crate) fn stack_is_empty() -> bool {
    FRAME_STACK.with(|s| s.borrow().is_empty())
}

/// Aggregate timing of one frame (span path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTiming {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries, children included.
    pub total_ns: u128,
    /// Nanoseconds spent in the frame itself, children excluded.
    pub self_ns: u128,
}

impl PhaseTiming {
    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Self time in seconds.
    pub fn self_secs(&self) -> f64 {
        self.self_ns as f64 / 1e9
    }
}

#[derive(Debug, Default)]
struct Frame {
    parent: Option<u32>,
    /// Full `/`-joined path, composed once at intern time.
    path: String,
    /// Child name -> frame id; fan-out lookup without composing paths.
    children: HashMap<Box<str>, u32>,
    count: u64,
    total_ns: u128,
    /// Nanoseconds attributed to direct children (folded in as each
    /// child closes), so `self = total - child_ns`.
    child_ns: u128,
}

#[derive(Debug, Default)]
struct TreeState {
    frames: Vec<Frame>,
    /// Top-level name -> frame id.
    roots: HashMap<Box<str>, u32>,
    /// Frame ids in first-closed order — the snapshot and export order
    /// (matches the order the flat recorder used to report).
    order: Vec<u32>,
}

/// The hierarchical span store. See the module docs.
#[derive(Debug)]
pub(crate) struct FrameTree {
    /// Distinguishes trees on the shared thread-local stack: a frame
    /// opened on tree A is never made the parent of one opened on tree B.
    token: u64,
    state: Mutex<TreeState>,
}

impl Default for FrameTree {
    fn default() -> Self {
        FrameTree {
            token: NEXT_TREE_TOKEN.fetch_add(1, Relaxed),
            state: Mutex::new(TreeState::default()),
        }
    }
}

impl FrameTree {
    fn intern(state: &mut TreeState, parent: Option<u32>, name: &str) -> u32 {
        let hit = match parent {
            Some(p) => state.frames[p as usize].children.get(name).copied(),
            None => state.roots.get(name).copied(),
        };
        if let Some(id) = hit {
            return id;
        }
        let path = match parent {
            Some(p) => format!("{}/{}", state.frames[p as usize].path, name),
            None => name.to_owned(),
        };
        let id = state.frames.len() as u32;
        state.frames.push(Frame { parent, path, ..Frame::default() });
        match parent {
            Some(p) => state.frames[p as usize].children.insert(name.into(), id),
            None => state.roots.insert(name.into(), id),
        };
        id
    }

    /// Opens the frame `name` under this thread's innermost open frame of
    /// this tree (top-level when the stack top belongs to another tree)
    /// and pushes it on the stack.
    pub(crate) fn enter(&self, name: &str) -> u32 {
        let parent = FRAME_STACK.with(|s| {
            s.borrow().last().copied().filter(|(tok, _)| *tok == self.token).map(|(_, id)| id)
        });
        let id = Self::intern(&mut self.state.lock(), parent, name);
        FRAME_STACK.with(|s| s.borrow_mut().push((self.token, id)));
        id
    }

    /// Closes frame `id`, folding `elapsed_ns` into it and into its
    /// parent's child attribution. Drop order can be violated by
    /// `mem::forget` games; recover by truncating to this frame's stack
    /// position rather than panicking.
    pub(crate) fn exit(&self, id: u32, elapsed_ns: u128) {
        FRAME_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&e| e == (self.token, id)) {
                stack.truncate(pos);
            }
        });
        let mut state = self.state.lock();
        if state.frames[id as usize].count == 0 {
            state.order.push(id);
        }
        let parent = state.frames[id as usize].parent;
        let frame = &mut state.frames[id as usize];
        frame.count += 1;
        frame.total_ns += elapsed_ns;
        if let Some(p) = parent {
            state.frames[p as usize].child_ns += elapsed_ns;
        }
    }

    /// Folds a shard's aggregate for one path into this tree, re-interning
    /// each `/`-separated segment. Absorbing shard snapshots in task order
    /// keeps first-closed path order deterministic.
    pub(crate) fn absorb(&self, path: &str, timing: PhaseTiming) {
        let mut state = self.state.lock();
        let mut id = None;
        for seg in path.split('/') {
            id = Some(Self::intern(&mut state, id, seg));
        }
        let Some(id) = id else { return };
        if state.frames[id as usize].count == 0 && timing.count > 0 {
            state.order.push(id);
        }
        let frame = &mut state.frames[id as usize];
        frame.count += timing.count;
        frame.total_ns += timing.total_ns;
        frame.child_ns += timing.total_ns.saturating_sub(timing.self_ns);
    }

    /// Paths and timings in first-closed order.
    pub(crate) fn snapshot(&self) -> Vec<(String, PhaseTiming)> {
        let state = self.state.lock();
        state
            .order
            .iter()
            .map(|&id| {
                let f = &state.frames[id as usize];
                (
                    f.path.clone(),
                    PhaseTiming {
                        count: f.count,
                        total_ns: f.total_ns,
                        self_ns: f.total_ns.saturating_sub(f.child_ns),
                    },
                )
            })
            .collect()
    }
}

/// Renders frame timings as collapsed-stack ("folded") lines —
/// `root;child;leaf <self-ns>` — the input format of standard flamegraph
/// tooling (`flamegraph.pl`, inferno). Line order follows the input
/// (first-closed order), so the stack *structure* is deterministic even
/// though the values are wall clock.
pub fn to_folded(frames: &[(String, PhaseTiming)]) -> String {
    let mut out = String::new();
    for (path, t) in frames {
        out.push_str(&path.replace('/', ";"));
        out.push(' ');
        out.push_str(&t.self_ns.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack lines back into `(path, self_ns)` pairs (paths
/// rejoined with the tree's `/` separator). `None` on a malformed line.
pub fn parse_folded(text: &str) -> Option<Vec<(String, u128)>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            let (stack, value) = line.rsplit_once(' ')?;
            Some((stack.replace(';', "/"), value.parse().ok()?))
        })
        .collect()
}

/// Per-kind dispatch-cost accumulators: label -> log-scale latency
/// histogram (seconds), the same bucket layout as `metrics.rs`. Counts
/// are dispatch counts (deterministic); moments are wall clock.
#[derive(Debug, Default)]
pub(crate) struct HandlerStats {
    kinds: Mutex<Vec<(String, Arc<HistogramCore>)>>,
}

impl HandlerStats {
    /// The timer labelled `label`, interning it on first use. Handles are
    /// minted once per run (cold path) and shared on hot paths.
    pub(crate) fn timer(&self, label: &str) -> HandlerTimer {
        let mut kinds = self.kinds.lock();
        let cell = match kinds.iter().find(|(n, _)| n == label) {
            Some((_, c)) => Arc::clone(c),
            None => {
                let c = Arc::new(HistogramCore::default());
                kinds.push((label.to_owned(), Arc::clone(&c)));
                c
            }
        };
        HandlerTimer(Some(cell))
    }

    /// Labels and histogram contents, sorted by label.
    pub(crate) fn snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut out: Vec<(String, HistogramSnapshot)> = self
            .kinds
            .lock()
            .iter()
            .map(|(n, c)| (n.clone(), Histogram(Some(Arc::clone(c))).snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    pub(crate) fn absorb(&self, other: &HandlerStats) {
        for (label, snap) in other.snapshot() {
            if snap.count == 0 {
                continue;
            }
            if let HandlerTimer(Some(mine)) = self.timer(&label) {
                merge_into_core(&mine, &snap);
            }
        }
    }
}

/// A pre-minted per-kind dispatch timer. A handle from an unarmed or
/// disabled registry is `None` inside, so the off cost is one branch.
#[derive(Debug, Clone, Default)]
pub struct HandlerTimer(pub(crate) Option<Arc<HistogramCore>>);

impl HandlerTimer {
    /// Starts timing one dispatch; the guard records seconds on drop.
    #[inline]
    pub fn start(&self) -> HandlerGuard {
        HandlerGuard(self.0.as_ref().map(|core| (Arc::clone(core), Instant::now())))
    }
}

/// An open dispatch-timing scope; see [`HandlerTimer::start`].
#[must_use = "the guard measures the scope it is alive for"]
#[derive(Debug)]
pub struct HandlerGuard(Option<(Arc<HistogramCore>, Instant)>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        if let Some((core, start)) = self.0.take() {
            Histogram(Some(core)).record(start.elapsed().as_secs_f64());
        }
    }
}

/// One worker's utilization over parallel map calls. All fields are wall
/// clock — volatile telemetry, never compared across runs or `--jobs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerUse {
    /// Worker index within the pool.
    pub worker: usize,
    /// Nanoseconds inside task closures.
    pub busy_ns: u128,
    /// Nanoseconds claiming chunks from the shared queue.
    pub steal_ns: u128,
    /// Nanoseconds in the worker loop not spent busy or claiming.
    pub idle_ns: u128,
    /// Nanoseconds between this worker finishing and the slowest one.
    pub join_wait_ns: u128,
    /// Chunks claimed.
    pub chunks: u64,
    /// Tasks executed.
    pub tasks: u64,
}

/// Backing store for the timeprof opt-in gate: per-kind dispatch
/// histograms plus accumulated worker utilization.
#[derive(Debug, Default)]
pub(crate) struct TimeProfCore {
    pub(crate) handlers: HandlerStats,
    workers: Mutex<Vec<WorkerUse>>,
}

impl TimeProfCore {
    /// Accumulates one parallel map's worker stats by worker index.
    pub(crate) fn record_workers(&self, stats: &[WorkerUse]) {
        let mut workers = self.workers.lock();
        for s in stats {
            if workers.len() <= s.worker {
                workers.resize(s.worker + 1, WorkerUse::default());
            }
            let w = &mut workers[s.worker];
            w.busy_ns += s.busy_ns;
            w.steal_ns += s.steal_ns;
            w.idle_ns += s.idle_ns;
            w.join_wait_ns += s.join_wait_ns;
            w.chunks += s.chunks;
            w.tasks += s.tasks;
        }
    }

    pub(crate) fn workers_snapshot(&self) -> Vec<WorkerUse> {
        self.workers.lock().iter().enumerate().map(|(i, w)| WorkerUse { worker: i, ..*w }).collect()
    }

    pub(crate) fn absorb(&self, other: &TimeProfCore) {
        self.handlers.absorb(&other.handlers);
        self.record_workers(&other.workers_snapshot());
    }
}

/// A point-in-time copy of the time profiler's state.
#[derive(Debug, Clone, Default)]
pub struct TimeProfSnapshot {
    /// Frame timings in first-closed order. Paths, order, and counts are
    /// deterministic; nanoseconds are wall clock.
    pub frames: Vec<(String, PhaseTiming)>,
    /// Per-kind dispatch histograms (seconds), sorted by label. Counts
    /// are deterministic; moments are wall clock.
    pub handlers: Vec<(String, HistogramSnapshot)>,
    /// Per-worker utilization accumulated across parallel maps (volatile).
    pub workers: Vec<WorkerUse>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interning_reuses_frames_and_composes_paths() {
        let tree = FrameTree::default();
        let a1 = tree.enter("outer");
        let b = tree.enter("inner");
        tree.exit(b, 10);
        tree.exit(a1, 30);
        let a2 = tree.enter("outer");
        assert_eq!(a1, a2, "same (parent, name) reuses the frame id");
        tree.exit(a2, 5);
        let snap = tree.snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["outer/inner", "outer"]);
        assert_eq!(snap[1].1.count, 2);
        assert_eq!(snap[1].1.total_ns, 35);
        assert_eq!(snap[1].1.self_ns, 25, "child's 10ns attributed away from outer");
        assert_eq!(snap[0].1.self_ns, 10, "leaf keeps all its time");
    }

    #[test]
    fn sibling_trees_do_not_nest_across_tokens() {
        let a = FrameTree::default();
        let b = FrameTree::default();
        let fa = a.enter("outer");
        let fb = b.enter("task");
        b.exit(fb, 1);
        a.exit(fa, 2);
        assert_eq!(b.snapshot()[0].0, "task", "tree B span is top-level, not outer/task");
        assert!(stack_is_empty());
    }

    #[test]
    fn absorb_matches_live_recording() {
        let live = FrameTree::default();
        let o = live.enter("outer");
        let i = live.enter("inner");
        live.exit(i, 10);
        live.exit(o, 30);

        let merged = FrameTree::default();
        for (path, t) in live.snapshot() {
            merged.absorb(&path, t);
        }
        assert_eq!(merged.snapshot(), live.snapshot());
    }

    #[test]
    fn folded_round_trips() {
        let tree = FrameTree::default();
        let o = tree.enter("outer");
        let i = tree.enter("inner");
        tree.exit(i, 10);
        tree.exit(o, 30);
        let snap = tree.snapshot();
        let folded = to_folded(&snap);
        assert!(folded.contains("outer;inner 10\n"), "{folded}");
        let back = parse_folded(&folded).expect("well-formed");
        let expect: Vec<(String, u128)> =
            snap.iter().map(|(p, t)| (p.clone(), t.self_ns)).collect();
        assert_eq!(back, expect);
        assert_eq!(parse_folded("no-value-line"), None);
    }

    #[test]
    fn handler_stats_count_and_merge() {
        let a = HandlerStats::default();
        let t = a.timer("ev_publish");
        for _ in 0..3 {
            drop(t.start());
        }
        let b = HandlerStats::default();
        drop(b.timer("ev_publish").start());
        drop(b.timer("ev_probe").start());
        a.absorb(&b);
        let snap = a.snapshot();
        let labels: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(labels, ["ev_probe", "ev_publish"], "sorted by label");
        assert_eq!(snap[1].1.count, 4);
        assert_eq!(snap[0].1.count, 1);
    }

    #[test]
    fn disabled_handler_timer_is_inert() {
        let t = HandlerTimer::default();
        drop(t.start());
    }

    #[test]
    fn worker_use_accumulates_by_index() {
        let core = TimeProfCore::default();
        core.record_workers(&[
            WorkerUse { worker: 1, busy_ns: 10, chunks: 2, ..WorkerUse::default() },
            WorkerUse { worker: 0, busy_ns: 5, tasks: 3, ..WorkerUse::default() },
        ]);
        core.record_workers(&[WorkerUse { worker: 1, busy_ns: 7, ..WorkerUse::default() }]);
        let snap = core.workers_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], WorkerUse { worker: 0, busy_ns: 5, tasks: 3, ..WorkerUse::default() });
        assert_eq!(
            snap[1],
            WorkerUse { worker: 1, busy_ns: 17, chunks: 2, ..WorkerUse::default() }
        );
    }

    /// A random nesting script: each step either opens a frame (name from
    /// a small alphabet), closes the innermost, or closes everything.
    fn span_script() -> impl Strategy<Value = Vec<(u8, u64)>> {
        proptest::collection::vec((0u8..8, 1u64..1000), 1..40)
    }

    proptest! {
        #[test]
        fn frame_invariants_hold(script in span_script()) {
            let tree = FrameTree::default();
            let mut open: Vec<(u32, u128)> = Vec::new(); // (id, accumulated charge)
            for (op, charge) in script {
                if op < 5 || open.is_empty() {
                    let name = ["a", "b", "c"][(op % 3) as usize];
                    let id = tree.enter(name);
                    open.push((id, 0));
                } else {
                    let (id, inner) = open.pop().unwrap();
                    let elapsed = inner + charge as u128;
                    tree.exit(id, elapsed);
                    if let Some(top) = open.last_mut() {
                        top.1 += elapsed;
                    }
                }
            }
            while let Some((id, inner)) = open.pop() {
                tree.exit(id, inner + 1);
                if let Some(top) = open.last_mut() {
                    top.1 += inner + 1;
                }
            }
            let snap = tree.snapshot();
            // self <= total for every frame.
            for (path, t) in &snap {
                prop_assert!(t.self_ns <= t.total_ns, "{path}: self > total");
            }
            // Children's totals sum to <= the parent's total.
            for (path, t) in &snap {
                let prefix = format!("{path}/");
                let child_sum: u128 = snap
                    .iter()
                    .filter(|(p, _)| {
                        p.starts_with(&prefix) && !p[prefix.len()..].contains('/')
                    })
                    .map(|(_, c)| c.total_ns)
                    .sum();
                prop_assert!(child_sum <= t.total_ns, "{path}: children {child_sum} > {}", t.total_ns);
                prop_assert_eq!(t.self_ns, t.total_ns - child_sum);
            }
            // The folded export re-parses to the same tree.
            let back = parse_folded(&to_folded(&snap)).expect("well-formed");
            let expect: Vec<(String, u128)> =
                snap.iter().map(|(p, c)| (p.clone(), c.self_ns)).collect();
            prop_assert_eq!(back, expect);
        }

        #[test]
        fn absorb_is_equivalent_to_replay(script in span_script()) {
            let tree = FrameTree::default();
            let mut open: Vec<u32> = Vec::new();
            for (op, charge) in script {
                if op < 5 || open.is_empty() {
                    open.push(tree.enter(["x", "y", "z"][(op % 3) as usize]));
                } else {
                    tree.exit(open.pop().unwrap(), charge as u128);
                }
            }
            while let Some(id) = open.pop() {
                tree.exit(id, 1);
            }
            let snap = tree.snapshot();
            let merged = FrameTree::default();
            for (path, t) in &snap {
                merged.absorb(path, *t);
            }
            prop_assert_eq!(merged.snapshot(), snap);
        }
    }
}
