//! Determinism audit trail: a chained 64-bit digest over the simulation's
//! structural event stream.
//!
//! Every fold point (scheduler pop, event dispatch, message send/arrive,
//! network send) mixes the event's *structural identity* — sim-time,
//! event/message kind label, node ids, payload tags — into a running chain.
//! Wall-clock readings, pointer values and trace contexts are never folded,
//! so two runs of the same scenario produce bit-identical chains regardless
//! of machine, worker count, or which other observability subsystems are
//! armed.
//!
//! Sharding: each simulation runs inside one registry shard, so each shard
//! records an independent chain ("segment") starting from
//! [`CHAIN_SEED`]. At absorb the parent assigns the shard the next
//! absorb-order segment index and mixes the segment chain into its own
//! run-level chain. Absorb order is task order (see `cdnc-par`), hence the
//! run-level chain is identical for `--jobs 1/2/4/…`.
//!
//! Checkpoints: every `checkpoint_every` folds the segment records
//! `(index, chain)`. The per-segment list is bounded: when it would exceed
//! [`MAX_CHECKPOINTS_PER_SEGMENT`] entries the stride doubles and every
//! other existing checkpoint is dropped — deterministic, because the
//! schedule depends only on the fold count.
//!
//! Divergence support: a [`TrapWindow`] makes every shard record full
//! per-fold entries (label, node, time, digest before/after) for local fold
//! indices in `[lo, hi)`; at absorb the parent keeps only the entries from
//! the shard whose segment index matches the trap. `perturb` flips the
//! folded word at one local fold index in every segment — an
//! observation-layer corruption used by the divergence self-test (simulation
//! state is untouched, so domain results stay bit-identical).

use crate::json::Json;
use parking_lot::Mutex;
use std::sync::Arc;

/// Default checkpoint stride (folds between recorded checkpoints).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 4096;

/// Per-segment checkpoint cap; reaching it doubles the stride.
pub const MAX_CHECKPOINTS_PER_SEGMENT: usize = 1024;

/// Hard cap on recorded trap entries (a trap window wider than this is
/// truncated; the divergence search narrows windows well below it).
pub const MAX_TRAP_ENTRIES: usize = 1 << 20;

/// Seed every segment chain starts from (an arbitrary odd constant; folding
/// zero events leaves the chain at the seed).
pub const CHAIN_SEED: u64 = 0xCD11_C0DE_D16E_5770;

/// XOR mask applied to the folded word at a perturbed index.
const PERTURB_FLIP: u64 = 1;

/// One digest-window trap: record per-fold entries for local fold indices
/// `lo..hi` of the shard absorbed as segment `segment`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapWindow {
    /// Absorb-order segment index the trap targets.
    pub segment: usize,
    /// First local fold index recorded (inclusive, 0-based).
    pub lo: u64,
    /// End of the recorded window (exclusive).
    pub hi: u64,
}

/// Configuration for [`crate::Registry::enable_digest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestConfig {
    /// Folds between checkpoints (initial stride; doubles when a segment
    /// would exceed [`MAX_CHECKPOINTS_PER_SEGMENT`]).
    pub checkpoint_every: u64,
    /// Flip the folded word at this local fold index, in every segment.
    pub perturb: Option<u64>,
    /// Record a per-fold window for the divergence search.
    pub trap: Option<TrapWindow>,
}

impl Default for DigestConfig {
    fn default() -> Self {
        DigestConfig { checkpoint_every: DEFAULT_CHECKPOINT_EVERY, perturb: None, trap: None }
    }
}

/// One periodic digest checkpoint: the chain value after `index` folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Number of folds absorbed into `chain` (1-based: the checkpoint after
    /// fold `index - 1`).
    pub index: u64,
    /// Chain value at that point.
    pub chain: u64,
}

/// One trapped fold: everything `divergence` needs to print the context
/// window around the first diverging event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapEntry {
    /// Local (segment-relative, 0-based) fold index.
    pub index: u64,
    /// Fold-point label (event/message kind).
    pub label: &'static str,
    /// Node the event concerned.
    pub node: u32,
    /// Sim-time of the fold, µs.
    pub t_us: u64,
    /// Chain value before this fold.
    pub before: u64,
    /// Chain value after this fold.
    pub after: u64,
}

/// A completed segment as absorbed into the parent.
#[derive(Debug, Clone)]
pub struct SegmentSnapshot {
    /// Absorb-order index.
    pub index: usize,
    /// Folds recorded in this segment.
    pub events: u64,
    /// Final segment chain.
    pub chain: u64,
    /// Periodic checkpoints, ascending by index.
    pub checkpoints: Vec<Checkpoint>,
}

/// The whole audit trail of one run, as written to `<fig>.digest.json`.
#[derive(Debug, Clone)]
pub struct DigestSnapshot {
    /// Total folds across all segments.
    pub events: u64,
    /// Run-level chain (segment chains mixed in absorb order).
    pub chain: u64,
    /// Per-segment chains and checkpoints, absorb order.
    pub segments: Vec<SegmentSnapshot>,
    /// Entries recorded by the trap window, if one was armed.
    pub trap: Vec<TrapEntry>,
}

/// SplitMix64-style combine: order-sensitive, full-avalanche mixing of one
/// word into the chain.
#[inline]
pub fn mix(h: u64, v: u64) -> u64 {
    let x = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB) ^ (x >> 31)
}

/// FNV-1a over a label's bytes — the word a fold starts from.
#[inline]
fn label_word(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Renders a chain value the way artifacts carry it. Digests are 64-bit and
/// the JSON layer's only number type is `f64`, so chains travel as hex
/// strings.
pub fn chain_hex(chain: u64) -> String {
    format!("0x{chain:016x}")
}

/// Parses a [`chain_hex`] rendering back to the chain value.
pub fn parse_chain_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// The currently-recording local chain of one registry (parent or shard).
#[derive(Debug)]
struct SegmentState {
    events: u64,
    chain: u64,
    stride: u64,
    checkpoints: Vec<Checkpoint>,
    trap: Vec<TrapEntry>,
}

impl SegmentState {
    fn new(stride: u64) -> Self {
        SegmentState {
            events: 0,
            chain: CHAIN_SEED,
            stride: stride.max(1),
            checkpoints: Vec::new(),
            trap: Vec::new(),
        }
    }
}

/// Segments absorbed from shards, in absorb order.
#[derive(Debug, Default)]
struct ParentState {
    segments: Vec<SegmentSnapshot>,
    trap: Vec<TrapEntry>,
}

/// The digest subsystem behind [`crate::Registry::enable_digest`].
#[derive(Debug)]
pub struct DigestCore {
    config: DigestConfig,
    local: Mutex<SegmentState>,
    parent: Mutex<ParentState>,
}

impl DigestCore {
    pub(crate) fn new(config: DigestConfig) -> Self {
        DigestCore {
            config,
            local: Mutex::new(SegmentState::new(config.checkpoint_every)),
            parent: Mutex::new(ParentState::default()),
        }
    }

    pub(crate) fn config(&self) -> DigestConfig {
        self.config
    }

    /// Folds one event into the local chain (see [`Digest::fold`]).
    fn fold(&self, label: &'static str, node: u32, t_us: u64, tags: &[u64]) {
        let mut w = label_word(label);
        w = mix(w, u64::from(node));
        w = mix(w, t_us);
        for &tag in tags {
            w = mix(w, tag);
        }
        let mut s = self.local.lock();
        let index = s.events;
        if self.config.perturb == Some(index) {
            w ^= PERTURB_FLIP;
        }
        let before = s.chain;
        let after = mix(before, w);
        s.chain = after;
        s.events = index + 1;
        if s.events.is_multiple_of(s.stride) {
            let checkpoint = Checkpoint { index: s.events, chain: after };
            s.checkpoints.push(checkpoint);
            if s.checkpoints.len() > MAX_CHECKPOINTS_PER_SEGMENT {
                // Double the stride; keep only checkpoints on the new grid.
                s.stride *= 2;
                let stride = s.stride;
                s.checkpoints.retain(|c| c.index.is_multiple_of(stride));
            }
        }
        if let Some(tw) = self.config.trap {
            if index >= tw.lo && index < tw.hi && s.trap.len() < MAX_TRAP_ENTRIES {
                s.trap.push(TrapEntry { index, label, node, t_us, before, after });
            }
        }
    }

    /// Checkpoint view of the currently-recording local segment, as
    /// `(events, chain, stride, checkpoints)` — everything a restored run
    /// needs to keep folding where a saved run left off. Trap entries are
    /// not part of the view: divergence traps are re-armed per run.
    pub(crate) fn export_local(&self) -> (u64, u64, u64, Vec<Checkpoint>) {
        let s = self.local.lock();
        (s.events, s.chain, s.stride, s.checkpoints.clone())
    }

    /// Overwrites the local segment with state captured by
    /// [`DigestCore::export_local`], so subsequent folds continue the saved
    /// run's chain exactly.
    pub(crate) fn restore_local(
        &self,
        events: u64,
        chain: u64,
        stride: u64,
        checkpoints: Vec<Checkpoint>,
    ) {
        let mut s = self.local.lock();
        s.events = events;
        s.chain = chain;
        s.stride = stride.max(1);
        s.checkpoints = checkpoints;
        s.trap.clear();
    }

    /// Absorbs a shard's segment: assign it the next absorb-order index,
    /// snapshot its chain + checkpoints, and keep its trap entries when the
    /// trap targets that segment. Shards that folded nothing leave no
    /// segment — the segment numbering tracks simulations, not workers.
    pub(crate) fn absorb(&self, shard: &DigestCore) {
        let s = shard.local.lock();
        if s.events == 0 {
            return;
        }
        let mut p = self.parent.lock();
        let index = p.segments.len();
        p.segments.push(SegmentSnapshot {
            index,
            events: s.events,
            chain: s.chain,
            checkpoints: s.checkpoints.clone(),
        });
        if self.config.trap.is_some_and(|tw| tw.segment == index) {
            p.trap = s.trap.clone();
        }
    }

    /// The run-level audit trail: all absorbed segments, plus this
    /// registry's own local chain as a trailing segment when it folded
    /// anything (figures always fold inside shards, so that is the
    /// exception, not the rule). Non-destructive.
    pub(crate) fn snapshot(&self) -> DigestSnapshot {
        let p = self.parent.lock();
        let s = self.local.lock();
        let mut segments = p.segments.clone();
        let mut trap = p.trap.clone();
        if s.events > 0 {
            let index = segments.len();
            segments.push(SegmentSnapshot {
                index,
                events: s.events,
                chain: s.chain,
                checkpoints: s.checkpoints.clone(),
            });
            if self.config.trap.is_some_and(|tw| tw.segment == index) {
                trap = s.trap.clone();
            }
        }
        let mut chain = CHAIN_SEED;
        let mut events = 0;
        for seg in &segments {
            chain = mix(chain, seg.chain);
            events += seg.events;
        }
        DigestSnapshot { events, chain, segments, trap }
    }
}

impl DigestSnapshot {
    /// Global (run-level) fold index of local fold `local` in segment
    /// `segment`: the sum of earlier segments' fold counts plus `local`.
    pub fn global_index(&self, segment: usize, local: u64) -> u64 {
        self.segments.iter().take(segment).map(|s| s.events).sum::<u64>() + local
    }

    /// The snapshot as the `<fig>.digest.json` document body (identity
    /// fields like figure/scale are the caller's to add).
    pub fn to_json(&self) -> Json {
        let segments: Vec<Json> = self
            .segments
            .iter()
            .map(|seg| {
                let checkpoints: Vec<Json> = seg
                    .checkpoints
                    .iter()
                    .map(|c| Json::obj().field("index", c.index).field("chain", chain_hex(c.chain)))
                    .collect();
                Json::obj()
                    .field("index", seg.index as u64)
                    .field("events", seg.events)
                    .field("chain", chain_hex(seg.chain))
                    .field("checkpoints", Json::Arr(checkpoints))
            })
            .collect();
        Json::obj()
            .field("events", self.events)
            .field("chain", chain_hex(self.chain))
            .field("segments", Json::Arr(segments))
    }
}

/// Cloneable fold handle: inert (one branch per call) unless the registry
/// armed the digest subsystem.
#[derive(Debug, Clone, Default)]
pub struct Digest(Option<Arc<DigestCore>>);

impl Digest {
    /// The inert handle disabled registries hand out.
    pub fn disabled() -> Self {
        Digest(None)
    }

    pub(crate) fn from_core(core: Option<Arc<DigestCore>>) -> Self {
        Digest(core)
    }

    /// `true` when folds are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Folds one event's structural identity into the chain. `label` names
    /// the fold point (event/message kind), `node` the node concerned,
    /// `t_us` the sim-time, `tags` the deterministic payload words
    /// (snapshot ids, generations, tokens — never wall-clock readings,
    /// trace contexts, or pointer values). Order-sensitive: the chain
    /// fingerprints the exact fold sequence.
    #[inline]
    pub fn fold(&self, label: &'static str, node: u32, t_us: u64, tags: &[u64]) {
        if let Some(core) = &self.0 {
            core.fold(label, node, t_us, tags);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(config: DigestConfig) -> DigestCore {
        DigestCore::new(config)
    }

    #[test]
    fn fold_is_order_sensitive_and_deterministic() {
        let a = core(DigestConfig::default());
        a.fold("publish", 1, 10, &[7]);
        a.fold("arrive", 2, 20, &[8]);
        let b = core(DigestConfig::default());
        b.fold("publish", 1, 10, &[7]);
        b.fold("arrive", 2, 20, &[8]);
        let c = core(DigestConfig::default());
        c.fold("arrive", 2, 20, &[8]);
        c.fold("publish", 1, 10, &[7]);
        assert_eq!(a.snapshot().chain, b.snapshot().chain);
        assert_ne!(a.snapshot().chain, c.snapshot().chain);
    }

    #[test]
    fn every_field_feeds_the_chain() {
        let base = || {
            let c = core(DigestConfig::default());
            c.fold("publish", 1, 10, &[7]);
            c.snapshot().chain
        };
        let b = base();
        let label = core(DigestConfig::default());
        label.fold("arrive", 1, 10, &[7]);
        let node = core(DigestConfig::default());
        node.fold("publish", 2, 10, &[7]);
        let time = core(DigestConfig::default());
        time.fold("publish", 1, 11, &[7]);
        let tag = core(DigestConfig::default());
        tag.fold("publish", 1, 10, &[8]);
        for other in [label, node, time, tag] {
            assert_ne!(other.snapshot().chain, b);
        }
    }

    #[test]
    fn checkpoints_record_on_the_stride() {
        let c = core(DigestConfig { checkpoint_every: 4, ..DigestConfig::default() });
        for i in 0..10 {
            c.fold("ev", 0, i, &[]);
        }
        let snap = c.snapshot();
        let seg = &snap.segments[0];
        assert_eq!(seg.events, 10);
        assert_eq!(seg.checkpoints.iter().map(|c| c.index).collect::<Vec<_>>(), vec![4, 8]);
    }

    #[test]
    fn checkpoint_stride_doubles_at_the_cap() {
        let c = core(DigestConfig { checkpoint_every: 1, ..DigestConfig::default() });
        let n = (MAX_CHECKPOINTS_PER_SEGMENT as u64) * 4;
        for i in 0..n {
            c.fold("ev", 0, i, &[]);
        }
        let snap = c.snapshot();
        let ckpts = &snap.segments[0].checkpoints;
        assert!(ckpts.len() <= MAX_CHECKPOINTS_PER_SEGMENT + 1, "bounded: {}", ckpts.len());
        // Still ascending and still ending at a recent fold.
        assert!(ckpts.windows(2).all(|w| w[0].index < w[1].index));
        assert!(ckpts.last().unwrap().index > n / 2);
    }

    #[test]
    fn perturb_flips_exactly_one_fold() {
        let run = |perturb| {
            let c = core(DigestConfig { checkpoint_every: 2, perturb, ..DigestConfig::default() });
            for i in 0..8 {
                c.fold("ev", 0, i, &[i]);
            }
            c.snapshot()
        };
        let clean = run(None);
        let bad = run(Some(5));
        assert_ne!(clean.chain, bad.chain);
        // Checkpoints before the perturbed index agree; later ones differ.
        let (ca, cb) = (&clean.segments[0].checkpoints, &bad.segments[0].checkpoints);
        assert_eq!(ca[0], cb[0], "checkpoint at index 2 unaffected");
        assert_eq!(ca[1], cb[1], "checkpoint at index 4 unaffected");
        assert_ne!(ca[2], cb[2], "checkpoint at index 6 sees the flip at fold 5");
    }

    #[test]
    fn trap_records_the_window_with_before_after_chains() {
        let c = core(DigestConfig {
            checkpoint_every: 64,
            trap: Some(TrapWindow { segment: 0, lo: 2, hi: 5 }),
            ..DigestConfig::default()
        });
        for i in 0..8 {
            c.fold("ev", 3, i * 10, &[i]);
        }
        let snap = c.snapshot();
        assert_eq!(snap.trap.len(), 3);
        assert_eq!(snap.trap[0].index, 2);
        assert_eq!(snap.trap[2].index, 4);
        // The chain is contiguous through the window.
        assert_eq!(snap.trap[0].after, snap.trap[1].before);
        assert_eq!(snap.trap[1].after, snap.trap[2].before);
        assert_eq!(snap.trap[0].node, 3);
        assert_eq!(snap.trap[1].t_us, 30);
    }

    #[test]
    fn absorb_assigns_segments_in_order_and_mixes_the_run_chain() {
        let parent = core(DigestConfig::default());
        let s1 = core(DigestConfig::default());
        s1.fold("a", 0, 1, &[]);
        let s2 = core(DigestConfig::default());
        s2.fold("b", 0, 2, &[]);
        let empty = core(DigestConfig::default());
        parent.absorb(&s1);
        parent.absorb(&empty); // no folds -> no segment
        parent.absorb(&s2);
        let snap = parent.snapshot();
        assert_eq!(snap.segments.len(), 2);
        assert_eq!(snap.segments[1].index, 1);
        assert_eq!(snap.events, 2);
        // Swapping absorb order changes the run chain.
        let parent2 = core(DigestConfig::default());
        parent2.absorb(&s2);
        parent2.absorb(&s1);
        assert_ne!(parent2.snapshot().chain, snap.chain);
    }

    #[test]
    fn global_index_offsets_by_earlier_segments() {
        let parent = core(DigestConfig::default());
        let s1 = core(DigestConfig::default());
        for i in 0..5 {
            s1.fold("a", 0, i, &[]);
        }
        let s2 = core(DigestConfig::default());
        s2.fold("b", 0, 9, &[]);
        parent.absorb(&s1);
        parent.absorb(&s2);
        let snap = parent.snapshot();
        assert_eq!(snap.global_index(0, 3), 3);
        assert_eq!(snap.global_index(1, 0), 5);
    }

    #[test]
    fn chain_hex_round_trips() {
        assert_eq!(parse_chain_hex(&chain_hex(0)), Some(0));
        assert_eq!(parse_chain_hex(&chain_hex(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_chain_hex(&chain_hex(CHAIN_SEED)), Some(CHAIN_SEED));
        assert_eq!(parse_chain_hex("nope"), None);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let d = Digest::disabled();
        assert!(!d.is_enabled());
        d.fold("ev", 0, 0, &[]); // must not panic
    }

    #[test]
    fn snapshot_json_uses_hex_chains() {
        let c = core(DigestConfig { checkpoint_every: 2, ..DigestConfig::default() });
        for i in 0..4 {
            c.fold("ev", 0, i, &[]);
        }
        let j = c.snapshot().to_json();
        let chain = j.get("chain").and_then(Json::as_str).unwrap();
        assert!(chain.starts_with("0x") && chain.len() == 18, "{chain}");
        let Some(Json::Arr(segs)) = j.get("segments") else { panic!("segments array") };
        assert_eq!(segs[0].get("events").and_then(Json::as_f64), Some(4.0));
    }
}
