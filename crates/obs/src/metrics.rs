//! Metric instruments: counters, gauges with high-water marks, and
//! fixed-bucket log-scale histograms.
//!
//! Every handle is an `Option<Arc<..>>`: a handle minted from a disabled
//! registry holds `None`, so the cost of an update on the disabled path is
//! a single branch. Enabled updates use relaxed atomics — metrics are
//! monotone accumulations read only at snapshot time, so no ordering is
//! required.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lower bound of the first histogram bucket.
///
/// Bucket `i` covers `[HISTOGRAM_MIN * 2^i, HISTOGRAM_MIN * 2^(i+1))`, so 64
/// doubling buckets span `1e-9 .. ~9.2e9` — nanoseconds to centuries when
/// values are seconds, and bytes to gigabytes when they are sizes.
pub const HISTOGRAM_MIN: f64 = 1e-9;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n` (saturating at `u64::MAX`: a pinned counter is a
    /// visible anomaly, a wrapped one silently reads as near-zero).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            // fetch_update never fails with a Relaxed pair and a Some return.
            let _ = cell.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_add(n)));
        }
    }

    /// The current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Relaxed))
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    pub(crate) value: AtomicU64,
    pub(crate) high_water: AtomicU64,
}

/// A level indicator that also tracks its high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCore>>);

impl Gauge {
    /// Sets the level to `v` and raises the high-water mark if needed.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.value.store(v, Relaxed);
            core.high_water.fetch_max(v, Relaxed);
        }
    }

    /// Adds `n` to the level (saturating at `u64::MAX`, like
    /// [`Counter::add`]).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            let mut now = 0;
            let _ = core.value.fetch_update(Relaxed, Relaxed, |v| {
                now = v.saturating_add(n);
                Some(now)
            });
            core.high_water.fetch_max(now, Relaxed);
        }
    }

    /// Subtracts `n` from the level (saturating at zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(core) = &self.0 {
            // fetch_update never fails with a Relaxed pair and a Some return.
            let _ = core.value.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(n)));
        }
    }

    /// The current level (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.value.load(Relaxed))
    }

    /// The highest level ever set (0 for a disabled handle).
    pub fn high_water(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.high_water.load(Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    pub(crate) count: AtomicU64,
    /// Sum of recorded values, stored as f64 bits.
    pub(crate) sum_bits: AtomicU64,
    /// Minimum recorded value, stored as f64 bits (`+inf` when empty).
    pub(crate) min_bits: AtomicU64,
    /// Maximum recorded value, stored as f64 bits (`-inf` when empty).
    pub(crate) max_bits: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// The bucket a value falls into: doubling buckets from [`HISTOGRAM_MIN`],
/// clamped at both ends (values `<= HISTOGRAM_MIN` land in bucket 0).
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= HISTOGRAM_MIN {
        return 0;
    }
    let idx = (v / HISTOGRAM_MIN).log2() as usize;
    idx.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_floor(i: usize) -> f64 {
    HISTOGRAM_MIN * (i as f64).exp2()
}

/// Folds an owned snapshot into a live histogram core as if its stream had
/// been recorded there: buckets and count add, sum accumulates, min/max
/// extend. Shared by registry absorb and the timeprof handler merge.
pub(crate) fn merge_into_core(dst: &HistogramCore, src: &HistogramSnapshot) {
    for (d, s) in dst.buckets.iter().zip(src.buckets.iter()) {
        d.fetch_add(*s, Relaxed);
    }
    dst.count.fetch_add(src.count, Relaxed);
    let _ = dst
        .sum_bits
        .fetch_update(Relaxed, Relaxed, |b| Some((f64::from_bits(b) + src.sum).to_bits()));
    let _ = dst.min_bits.fetch_update(Relaxed, Relaxed, |b| {
        (src.min < f64::from_bits(b)).then(|| src.min.to_bits())
    });
    let _ = dst.max_bits.fetch_update(Relaxed, Relaxed, |b| {
        (src.max > f64::from_bits(b)).then(|| src.max.to_bits())
    });
}

/// A fixed-bucket log-scale histogram of non-negative values.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation. Negative or non-finite values are clamped
    /// into the edge buckets so the count is always conserved.
    #[inline]
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.buckets[bucket_index(v)].fetch_add(1, Relaxed);
            core.count.fetch_add(1, Relaxed);
            let v = if v.is_finite() { v } else { bucket_floor(HISTOGRAM_BUCKETS - 1) };
            // CAS loops: f64 cells updated through their bit patterns.
            let _ = core
                .sum_bits
                .fetch_update(Relaxed, Relaxed, |bits| Some((f64::from_bits(bits) + v).to_bits()));
            let _ = core.min_bits.fetch_update(Relaxed, Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
            let _ = core.max_bits.fetch_update(Relaxed, Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
        }
    }

    /// A point-in-time copy of the histogram contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::empty(),
            Some(core) => HistogramSnapshot {
                buckets: core.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                count: core.count.load(Relaxed),
                sum: f64::from_bits(core.sum_bits.load(Relaxed)),
                min: f64::from_bits(core.min_bits.load(Relaxed)),
                max: f64::from_bits(core.max_bits.load(Relaxed)),
            },
        }
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds `other` into this snapshot as if both streams had been
    /// recorded into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of observed values, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile (`q` in `[0, 1]`) from bucket boundaries: the
    /// geometric midpoint of the bucket holding the `q`-th observation,
    /// sharpened by the tracked exact min / max at the extremes.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are known exactly.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let mid = (bucket_floor(i) * bucket_floor(i + 1)).sqrt();
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_histogram() -> Histogram {
        Histogram(Some(Arc::new(HistogramCore::default())))
    }

    #[test]
    fn counter_and_disabled_counter() {
        let on = Counter(Some(Arc::new(AtomicU64::new(0))));
        on.inc();
        on.add(4);
        assert_eq!(on.get(), 5);
        let off = Counter(None);
        off.add(100);
        assert_eq!(off.get(), 0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge(Some(Arc::new(GaugeCore::default())));
        g.add(3);
        g.add(5);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 8);
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates");
    }

    #[test]
    fn counter_and_gauge_saturate_instead_of_wrapping() {
        let c = Counter(Some(Arc::new(AtomicU64::new(u64::MAX - 1))));
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "counter pins at MAX");
        c.inc();
        assert_eq!(c.get(), u64::MAX, "and stays there");

        let g = Gauge(Some(Arc::new(GaugeCore::default())));
        g.set(u64::MAX - 1);
        g.add(10);
        assert_eq!(g.get(), u64::MAX, "gauge level pins at MAX");
        assert_eq!(g.high_water(), u64::MAX, "high-water follows the saturated level");
        g.sub(5);
        assert_eq!(g.get(), u64::MAX - 5, "a pinned gauge can still drain");
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(HISTOGRAM_MIN), 0);
        assert_eq!(bucket_index(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_summarises() {
        let h = enabled_histogram();
        for v in [0.001, 0.002, 0.004, 1.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum - 1.007).abs() < 1e-12);
        assert_eq!(s.min, 0.001);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
        let p50 = s.quantile(0.5).unwrap();
        assert!((0.001..=0.004).contains(&p50), "p50 {p50}");
        assert_eq!(s.quantile(1.0), Some(1.0));
    }

    #[test]
    fn empty_snapshot_quantiles() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
        assert_eq!(HistogramSnapshot::empty().mean(), None);
        assert_eq!(Histogram(None).snapshot(), HistogramSnapshot::empty());
    }
}
