//! Causal update-propagation tracing.
//!
//! Where [`crate::span`] times *phases* of the host program in wall-clock
//! time, this module records *simulated* causality: every published update
//! gets a [`TraceId`], and each step of its journey — the network hops, the
//! adoption or rejection at each replica, the user views — appends a
//! [`SpanRecord`] linked to its causal parent. The result is a per-update
//! flight record that turns the simulator into ground truth for the paper's
//! outside-in inference (§3): the analysis pipeline *infers* TTLs and tree
//! structure from polls; the tracer *knows* them.
//!
//! # Zero overhead when off
//!
//! [`Tracer`] follows the registry convention: a disabled handle holds
//! `None`, every operation is one branch, and the context values threaded
//! through simulation messages stay [`TraceCtx::NONE`]. Simulation logic
//! never reads a context, so results are bit-identical with tracing on or
//! off (the paired-run tests enforce this).
//!
//! # Identifiers
//!
//! Trace and span ids are dense sequence numbers in record order. The
//! simulators are single-threaded and deterministic, so ids are stable
//! across runs of the same configuration.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Identifies one published update's causal trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u32);

impl TraceId {
    /// "No trace": the sentinel carried by untraced messages.
    pub const NONE: TraceId = TraceId(u32::MAX);

    /// `true` unless this is the [`TraceId::NONE`] sentinel.
    pub fn is_some(self) -> bool {
        self != TraceId::NONE
    }
}

/// Identifies one span within a tracer's store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// "No span": the root's parent, and the sentinel in inactive contexts.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// `true` unless this is the [`SpanId::NONE`] sentinel.
    pub fn is_some(self) -> bool {
        self != SpanId::NONE
    }
}

/// The causal position a message carries: which trace it belongs to and
/// which span caused it. `Copy` and two words, so it rides inside simulation
/// messages for free; simulation logic must never branch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The update's trace, or [`TraceId::NONE`].
    pub trace: TraceId,
    /// The causing span, or [`SpanId::NONE`].
    pub span: SpanId,
}

impl TraceCtx {
    /// The inactive context: untraced runs carry exactly this everywhere.
    pub const NONE: TraceCtx = TraceCtx { trace: TraceId::NONE, span: SpanId::NONE };

    /// `true` when this context belongs to a live trace.
    pub fn is_active(self) -> bool {
        self.trace.is_some()
    }
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx::NONE
    }
}

/// What a span represents in an update's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// The provider publishes the update (each trace's root).
    Publish,
    /// A message carrying the update (or its invalidation) crosses the
    /// network; begin = send, end = delivery.
    Hop,
    /// A replica adopts the update as its content.
    Adopt,
    /// A replica receives the update but already holds it (or newer) —
    /// a routinely superseded delivery, *not* an anomaly.
    Skip,
    /// The message reached a failed/absent node and was dropped.
    Lost,
    /// An invalidation notice marks a replica stale.
    Stale,
    /// Algorithm 1 mode transition (control plane, no trace).
    ModeSwitch,
    /// Distribution-tree repair: orphan re-attach or recovery re-join
    /// (control plane, no trace).
    TreeRepair,
    /// An end-user observes the update at a replica.
    UserView,
    /// An interval allocated far more memory than the running median
    /// (control plane, no trace; recorded by the profiling probe).
    MemorySpike,
    /// The determinism audit trail diverged from a reference run at this
    /// point (control plane, no trace; recorded by `divergence`).
    DigestDivergence,
    /// The stall watchdog saw no scheduler progress for its wall-clock
    /// window (control plane, no trace; recorded by the health monitor).
    Stall,
    /// A node lifecycle event — join, graceful leave, or crash-restart
    /// (control plane, no trace; recorded by the churn plane).
    NodeChurn,
}

impl SpanKind {
    /// The lowercase name used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Publish => "publish",
            SpanKind::Hop => "hop",
            SpanKind::Adopt => "adopt",
            SpanKind::Skip => "skip",
            SpanKind::Lost => "lost",
            SpanKind::Stale => "stale",
            SpanKind::ModeSwitch => "mode_switch",
            SpanKind::TreeRepair => "tree_repair",
            SpanKind::UserView => "user_view",
            SpanKind::MemorySpike => "memory_spike",
            SpanKind::DigestDivergence => "digest_divergence",
            SpanKind::Stall => "stall",
            SpanKind::NodeChurn => "node_churn",
        }
    }

    /// Parses the name written by [`SpanKind::as_str`].
    pub fn parse(s: &str) -> Option<SpanKind> {
        match s {
            "publish" => Some(SpanKind::Publish),
            "hop" => Some(SpanKind::Hop),
            "adopt" => Some(SpanKind::Adopt),
            "skip" => Some(SpanKind::Skip),
            "lost" => Some(SpanKind::Lost),
            "stale" => Some(SpanKind::Stale),
            "mode_switch" => Some(SpanKind::ModeSwitch),
            "tree_repair" => Some(SpanKind::TreeRepair),
            "user_view" => Some(SpanKind::UserView),
            "memory_spike" => Some(SpanKind::MemorySpike),
            "digest_divergence" => Some(SpanKind::DigestDivergence),
            "stall" => Some(SpanKind::Stall),
            "node_churn" => Some(SpanKind::NodeChurn),
            _ => None,
        }
    }

    /// `true` for kinds that end a delivery chain: a hop whose delivery
    /// produced one of these is accounted for, anything else is orphaned.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SpanKind::Adopt
                | SpanKind::Skip
                | SpanKind::Lost
                | SpanKind::Stale
                | SpanKind::UserView
        )
    }
}

/// The closed vocabulary of span labels the workspace records. Labels are
/// `&'static str` so recording never allocates; the Chrome-trace importer
/// maps parsed strings back through this table.
pub const LABELS: [&str; 31] = [
    "publish",
    "adopt",
    "superseded",
    "absent",
    "stale",
    "view",
    "update",
    "poll",
    "poll-unchanged",
    "invalidation",
    "method-switch",
    "tree-maintenance",
    "user-request",
    "user-response",
    "ack",
    "origin-fetch",
    "to_invalidation",
    "to_ttl",
    "reattach",
    "rejoin",
    "fault-drop",
    "fault-dup",
    "failover",
    "degrade",
    "abandoned",
    "convergence",
    "memory-spike",
    "digest-divergence",
    "stall",
    "watchdog",
    "other",
];

/// Maps a label back into the static vocabulary ([`LABELS`]); unknown
/// strings map to `"other"`.
pub fn intern_label(s: &str) -> &'static str {
    LABELS.iter().find(|&&k| k == s).copied().unwrap_or("other")
}

/// One recorded step of an update's journey.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id (dense, record order).
    pub id: SpanId,
    /// The trace it belongs to ([`TraceId::NONE`] for control-plane spans).
    pub trace: TraceId,
    /// The causing span, or [`SpanId::NONE`] for roots and control spans.
    pub parent: SpanId,
    /// What happened.
    pub kind: SpanKind,
    /// Node where the span completed (hop: the destination).
    pub node: u32,
    /// Hop source node, or user id for [`SpanKind::UserView`].
    pub src: Option<u32>,
    /// Simulated begin, microseconds.
    pub begin_us: u64,
    /// Simulated end, microseconds (≥ begin; instant events have equal).
    pub end_us: u64,
    /// Short detail: the message class for hops ("update", "invalidation",
    /// …), the transition for mode switches, the repair type, …
    pub label: &'static str,
}

/// Per-trace metadata: which update it records and where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// The trace.
    pub id: TraceId,
    /// The update (snapshot) number published.
    pub update: u32,
    /// Publish instant, microseconds.
    pub published_us: u64,
    /// The scheme/scope label the publishing simulation ran under, so
    /// traces from different sims sharing one registry stay separable.
    pub scope: String,
}

#[derive(Default)]
struct TracerState {
    spans: Vec<SpanRecord>,
    traces: Vec<TraceMeta>,
}

/// Shared storage behind enabled [`Tracer`] handles.
#[derive(Default)]
pub struct TracerCore {
    state: Mutex<TracerState>,
    /// Latest simulated instant any attached scheduler reached.
    horizon_us: AtomicU64,
}

/// A cloneable handle recording causal spans, or an inert stub.
///
/// Obtained from [`crate::Registry::tracer`] after
/// [`crate::Registry::enable_tracing`]; defaults to disabled.
#[derive(Clone, Default)]
pub struct Tracer(pub(crate) Option<Arc<TracerCore>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "Tracer(enabled)" } else { "Tracer(disabled)" })
    }
}

impl Tracer {
    /// The inert tracer: every call is a no-op behind one branch.
    pub fn disabled() -> Tracer {
        Tracer(None)
    }

    /// `true` when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn push(&self, mut make: impl FnMut(SpanId) -> SpanRecord) -> TraceCtx {
        match &self.0 {
            None => TraceCtx::NONE,
            Some(core) => {
                let _prof = crate::profile::scope(crate::profile::Subsystem::Trace);
                let mut state = core.state.lock();
                let id = SpanId(state.spans.len() as u32);
                let record = make(id);
                let ctx = TraceCtx { trace: record.trace, span: id };
                state.spans.push(record);
                ctx
            }
        }
    }

    /// Starts a new trace for `update` published at `node`: allocates a
    /// trace id and records the root [`SpanKind::Publish`] span. `scope`
    /// labels the publishing simulation (e.g. the scheme label) so traces
    /// from different sims sharing one registry stay separable.
    pub fn publish(&self, update: u32, node: u32, at_us: u64, scope: &str) -> TraceCtx {
        let Some(core) = &self.0 else { return TraceCtx::NONE };
        let _prof = crate::profile::scope(crate::profile::Subsystem::Trace);
        let mut state = core.state.lock();
        let trace = TraceId(state.traces.len() as u32);
        let id = SpanId(state.spans.len() as u32);
        state.traces.push(TraceMeta {
            id: trace,
            update,
            published_us: at_us,
            scope: scope.to_owned(),
        });
        state.spans.push(SpanRecord {
            id,
            trace,
            parent: SpanId::NONE,
            kind: SpanKind::Publish,
            node,
            src: None,
            begin_us: at_us,
            end_us: at_us,
            label: "publish",
        });
        TraceCtx { trace, span: id }
    }

    /// Records a network hop of `ctx`'s trace (begin = send, end =
    /// delivery) and returns the hop's context for the receive side to
    /// parent its spans on. Inactive contexts record nothing.
    pub fn hop(
        &self,
        ctx: TraceCtx,
        label: &'static str,
        src: u32,
        dst: u32,
        sent_us: u64,
        arrive_us: u64,
    ) -> TraceCtx {
        if !ctx.is_active() {
            return ctx;
        }
        self.push(|id| SpanRecord {
            id,
            trace: ctx.trace,
            parent: ctx.span,
            kind: SpanKind::Hop,
            node: dst,
            src: Some(src),
            begin_us: sent_us,
            end_us: arrive_us,
            label,
        })
    }

    /// Records an instant child span of `ctx` and returns its context.
    /// Inactive contexts record nothing and pass through unchanged.
    pub fn child(
        &self,
        ctx: TraceCtx,
        kind: SpanKind,
        node: u32,
        at_us: u64,
        label: &'static str,
    ) -> TraceCtx {
        if !ctx.is_active() {
            return ctx;
        }
        self.push(|id| SpanRecord {
            id,
            trace: ctx.trace,
            parent: ctx.span,
            kind,
            node,
            src: None,
            begin_us: at_us,
            end_us: at_us,
            label,
        })
    }

    /// Records a replica adopting the update; the returned context is the
    /// node's new content provenance (parents further distribution).
    pub fn adopt(&self, ctx: TraceCtx, node: u32, at_us: u64) -> TraceCtx {
        self.child(ctx, SpanKind::Adopt, node, at_us, "adopt")
    }

    /// Records a superseded/duplicate delivery (terminal, not anomalous).
    pub fn skip(&self, ctx: TraceCtx, node: u32, at_us: u64) {
        self.child(ctx, SpanKind::Skip, node, at_us, "superseded");
    }

    /// Records a delivery dropped at a failed/absent node (terminal).
    pub fn lost(&self, ctx: TraceCtx, node: u32, at_us: u64) {
        self.child(ctx, SpanKind::Lost, node, at_us, "absent");
    }

    /// Records an invalidation marking `node` stale; the returned context
    /// parents any forwarded invalidations.
    pub fn stale(&self, ctx: TraceCtx, node: u32, at_us: u64) -> TraceCtx {
        self.child(ctx, SpanKind::Stale, node, at_us, "stale")
    }

    /// Records a user observing the content whose provenance is `ctx`.
    pub fn user_view(&self, ctx: TraceCtx, user: u32, node: u32, at_us: u64) {
        if !ctx.is_active() {
            return;
        }
        self.push(|id| SpanRecord {
            id,
            trace: ctx.trace,
            parent: ctx.span,
            kind: SpanKind::UserView,
            node,
            src: Some(user),
            begin_us: at_us,
            end_us: at_us,
            label: "view",
        });
    }

    /// Records a control-plane span outside any trace (Algorithm 1 mode
    /// switches, tree repairs).
    pub fn control(&self, kind: SpanKind, node: u32, at_us: u64, label: &'static str) {
        if self.0.is_none() {
            return;
        }
        self.push(|id| SpanRecord {
            id,
            trace: TraceId::NONE,
            parent: SpanId::NONE,
            kind,
            node,
            src: None,
            begin_us: at_us,
            end_us: at_us,
            label,
        });
    }

    /// Advances the recorded simulation horizon (driven by the scheduler's
    /// clock as events are processed).
    #[inline]
    pub fn tick(&self, now_us: u64) {
        if let Some(core) = &self.0 {
            core.horizon_us.fetch_max(now_us, Relaxed);
        }
    }

    /// Appends a finished shard's records onto this tracer, renumbering
    /// trace and span ids past everything already recorded (sentinels stay
    /// sentinels). Absorbing shard stores in task order reproduces exactly
    /// the ids a single tracer would have assigned running the same tasks
    /// sequentially — the parallel-determinism contract for tracing.
    pub fn absorb(&self, other: &SpanStore) {
        let Some(core) = &self.0 else { return };
        let _prof = crate::profile::scope(crate::profile::Subsystem::Trace);
        let mut state = core.state.lock();
        let trace_off = state.traces.len() as u32;
        let span_off = state.spans.len() as u32;
        state.traces.extend(
            other
                .traces
                .iter()
                .map(|meta| TraceMeta { id: TraceId(meta.id.0 + trace_off), ..meta.clone() }),
        );
        state.spans.extend(other.spans.iter().map(|s| offset_record(s, span_off, trace_off)));
        core.horizon_us.fetch_max(other.horizon_us, Relaxed);
    }

    /// A point-in-time copy of everything recorded.
    pub fn store(&self) -> SpanStore {
        match &self.0 {
            None => SpanStore::default(),
            Some(core) => {
                let state = core.state.lock();
                SpanStore {
                    spans: state.spans.clone(),
                    traces: state.traces.clone(),
                    horizon_us: core.horizon_us.load(Relaxed),
                }
            }
        }
    }
}

/// `record` with its ids shifted by the given offsets; the NONE sentinels
/// are preserved (a control span stays a control span, a root stays a root).
fn offset_record(record: &SpanRecord, span_off: u32, trace_off: u32) -> SpanRecord {
    SpanRecord {
        id: SpanId(record.id.0 + span_off),
        trace: if record.trace.is_some() {
            TraceId(record.trace.0 + trace_off)
        } else {
            TraceId::NONE
        },
        parent: if record.parent.is_some() {
            SpanId(record.parent.0 + span_off)
        } else {
            SpanId::NONE
        },
        ..record.clone()
    }
}

/// One step of a critical path, with latency attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The span this step corresponds to.
    pub span: SpanId,
    /// What the step is.
    pub kind: SpanKind,
    /// Node at which the step completed.
    pub node: u32,
    /// The span's detail label.
    pub label: &'static str,
    /// Time spent waiting at the previous node before this step began
    /// (processing, queue residence, poll-interval waits), microseconds.
    pub wait_us: u64,
    /// The step's own duration (network time for hops), microseconds.
    pub self_us: u64,
}

/// The slowest root-to-terminal chain of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The trace.
    pub trace: TraceId,
    /// The update it carries.
    pub update: u32,
    /// The publishing simulation's scope label.
    pub scope: String,
    /// Steps from the publish root to the slowest terminal span.
    pub steps: Vec<PathStep>,
    /// End-to-end latency of the path, microseconds.
    pub total_us: u64,
}

/// The reconstructed propagation tree of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationTree {
    /// The root (publish) span.
    pub root: SpanId,
    /// Spans of the trace, in record order.
    pub spans: Vec<SpanRecord>,
    children: HashMap<SpanId, Vec<SpanId>>,
}

impl PropagationTree {
    /// Builds the tree of one trace's spans (record order, as yielded by
    /// [`SpanStore::trace_spans`]). Returns `None` when the spans contain
    /// no publish root.
    pub fn build(spans: Vec<SpanRecord>) -> Option<PropagationTree> {
        let root = spans.iter().find(|s| s.kind == SpanKind::Publish)?.id;
        let mut children: HashMap<SpanId, Vec<SpanId>> = HashMap::new();
        for s in &spans {
            if s.parent.is_some() {
                children.entry(s.parent).or_default().push(s.id);
            }
        }
        Some(PropagationTree { root, spans, children })
    }

    /// Children of `span`, in record order.
    pub fn children(&self, span: SpanId) -> &[SpanId] {
        self.children.get(&span).map_or(&[], Vec::as_slice)
    }

    /// The record for `span`, if it belongs to this tree. Record order is
    /// id order, so this is a binary search.
    pub fn span(&self, span: SpanId) -> Option<&SpanRecord> {
        let i = self.spans.binary_search_by_key(&span, |s| s.id).ok()?;
        Some(&self.spans[i])
    }

    /// The critical path of this tree's trace (see
    /// [`SpanStore::critical_path`]); `meta` must describe the same trace.
    pub fn critical_path(&self, meta: &TraceMeta) -> Option<CriticalPath> {
        let slowest =
            self.spans.iter().filter(|s| s.kind.is_terminal()).max_by_key(|s| (s.end_us, s.id))?.id;
        // Walk parents back to the root.
        let mut chain = vec![slowest];
        let mut cursor = slowest;
        while let Some(record) = self.span(cursor) {
            if !record.parent.is_some() {
                break;
            }
            cursor = record.parent;
            chain.push(cursor);
        }
        chain.reverse();
        let mut steps = Vec::with_capacity(chain.len());
        let mut prev_end = None;
        for id in chain {
            let s = self.span(id).expect("chain spans exist");
            let wait_us = prev_end.map_or(0, |p: u64| s.begin_us.saturating_sub(p));
            steps.push(PathStep {
                span: s.id,
                kind: s.kind,
                node: s.node,
                label: s.label,
                wait_us,
                self_us: s.end_us.saturating_sub(s.begin_us),
            });
            prev_end = Some(s.end_us);
        }
        let root_begin = steps.first().map_or(0, |_| self.span(self.root).unwrap().begin_us);
        let end = prev_end.unwrap_or(root_begin);
        Some(CriticalPath {
            trace: meta.id,
            update: meta.update,
            scope: meta.scope.clone(),
            steps,
            total_us: end.saturating_sub(root_begin),
        })
    }

    /// Hop spans whose delivery left no terminal child: the message never
    /// produced an adopt/skip/lost/stale at its destination — in flight at
    /// the horizon or silently swallowed. Routinely superseded deliveries
    /// are *not* orphans (they get [`SpanKind::Skip`] children).
    pub fn orphan_hops(&self) -> Vec<SpanId> {
        self.spans
            .iter()
            .filter(|s| s.kind == SpanKind::Hop)
            .filter(|s| {
                !self
                    .children(s.id)
                    .iter()
                    .any(|&c| self.span(c).is_some_and(|r| r.kind.is_terminal()))
            })
            .map(|s| s.id)
            .collect()
    }
}

/// Aggregate numbers over a whole store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreSummary {
    /// Number of traces (published updates).
    pub traces: usize,
    /// Total spans recorded.
    pub spans: usize,
    /// Spans by kind, in [`SpanKind`] declaration order.
    pub by_kind: Vec<(&'static str, usize)>,
    /// Adoptions recorded.
    pub adoptions: usize,
    /// Deliveries dropped at absent nodes.
    pub lost: usize,
    /// Orphaned hops across all traces.
    pub orphan_hops: usize,
    /// Mean publish→adopt lag over all adoptions, seconds.
    pub mean_adopt_lag_s: f64,
    /// Worst publish→adopt lag, seconds.
    pub max_adopt_lag_s: f64,
}

/// An owned snapshot of a tracer's records, plus reconstruction helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStore {
    /// All spans, in record order (ids are dense indices into this).
    pub spans: Vec<SpanRecord>,
    /// Per-trace metadata, in trace-id order.
    pub traces: Vec<TraceMeta>,
    /// Latest simulated instant reached, microseconds.
    pub horizon_us: u64,
}

impl SpanStore {
    /// Metadata of `trace`, if recorded.
    pub fn meta(&self, trace: TraceId) -> Option<&TraceMeta> {
        self.traces.get(trace.0 as usize).filter(|m| m.id == trace)
    }

    /// The record for `span`, if any.
    pub fn span(&self, span: SpanId) -> Option<&SpanRecord> {
        self.spans.get(span.0 as usize).filter(|s| s.id == span)
    }

    /// Spans belonging to `trace`, in record order.
    pub fn trace_spans(&self, trace: TraceId) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.spans.iter().filter(move |s| s.trace == trace)
    }

    /// Rebuilds the propagation tree of `trace`: its spans indexed by
    /// parent. Returns `None` when the trace has no publish root. Scans the
    /// whole store — when walking every trace, use [`SpanStore::forest`]
    /// instead.
    pub fn tree(&self, trace: TraceId) -> Option<PropagationTree> {
        PropagationTree::build(self.trace_spans(trace).cloned().collect())
    }

    /// Clones the store's spans grouped per trace in one pass; element `i`
    /// holds trace `i`'s spans in record order.
    pub fn spans_by_trace(&self) -> Vec<Vec<SpanRecord>> {
        let mut grouped: Vec<Vec<SpanRecord>> = vec![Vec::new(); self.traces.len()];
        for s in &self.spans {
            if let Some(bucket) = grouped.get_mut(s.trace.0 as usize) {
                bucket.push(s.clone());
            }
        }
        grouped
    }

    /// Rebuilds every trace's propagation tree in one pass over the store;
    /// element `i` is trace `i`'s tree, `None` when it has no publish root.
    /// Per-trace [`SpanStore::tree`] calls re-scan all spans each time, so
    /// store-wide walks must go through this instead.
    pub fn forest(&self) -> Vec<Option<PropagationTree>> {
        self.spans_by_trace().into_iter().map(PropagationTree::build).collect()
    }

    /// Extracts the critical path of `trace`: the chain from the publish
    /// root to the latest-ending terminal span, with per-step latency split
    /// into wait (time at the node before the step) and self time (the
    /// step's own duration). Returns `None` when the trace has no terminal
    /// span (nothing was ever delivered).
    pub fn critical_path(&self, trace: TraceId) -> Option<CriticalPath> {
        self.tree(trace)?.critical_path(self.meta(trace)?)
    }

    /// Publish→adopt lags of `trace`, one per adoption, seconds.
    pub fn adopt_lags_s(&self, trace: TraceId) -> Vec<f64> {
        let Some(meta) = self.meta(trace) else { return Vec::new() };
        self.trace_spans(trace)
            .filter(|s| s.kind == SpanKind::Adopt)
            .map(|s| s.end_us.saturating_sub(meta.published_us) as f64 / 1e6)
            .collect()
    }

    /// Aggregates the whole store.
    pub fn summary(&self) -> StoreSummary {
        const KINDS: [SpanKind; 13] = [
            SpanKind::Publish,
            SpanKind::Hop,
            SpanKind::Adopt,
            SpanKind::Skip,
            SpanKind::Lost,
            SpanKind::Stale,
            SpanKind::ModeSwitch,
            SpanKind::TreeRepair,
            SpanKind::UserView,
            SpanKind::MemorySpike,
            SpanKind::DigestDivergence,
            SpanKind::Stall,
            SpanKind::NodeChurn,
        ];
        let mut counts = [0usize; KINDS.len()];
        let mut lags = Vec::new();
        for s in &self.spans {
            if let Some(i) = KINDS.iter().position(|&k| k == s.kind) {
                counts[i] += 1;
            }
            if s.kind == SpanKind::Adopt {
                if let Some(meta) = self.meta(s.trace) {
                    lags.push(s.end_us.saturating_sub(meta.published_us) as f64 / 1e6);
                }
            }
        }
        let by_kind: Vec<(&'static str, usize)> =
            KINDS.iter().zip(counts).map(|(&k, c)| (k.as_str(), c)).collect();
        let lost = counts[KINDS.iter().position(|&k| k == SpanKind::Lost).expect("listed")];
        let orphans: usize = self.forest().iter().flatten().map(|t| t.orphan_hops().len()).sum();
        let adoptions = lags.len();
        StoreSummary {
            traces: self.traces.len(),
            spans: self.spans.len(),
            adoptions,
            lost,
            orphan_hops: orphans,
            mean_adopt_lag_s: if adoptions == 0 {
                0.0
            } else {
                lags.iter().sum::<f64>() / adoptions as f64
            },
            max_adopt_lag_s: lags.iter().copied().fold(0.0, f64::max),
            by_kind,
        }
    }

    /// Appends `other`'s traces and spans after this store's, renumbering
    /// ids exactly like [`Tracer::absorb`]: merging per-shard stores in
    /// task order yields the store a single sequential tracer would have
    /// produced. Dense-id invariants are preserved, so every reconstruction
    /// helper keeps working on the merged store.
    pub fn merge(&mut self, other: &SpanStore) {
        let trace_off = self.traces.len() as u32;
        let span_off = self.spans.len() as u32;
        self.traces.extend(
            other
                .traces
                .iter()
                .map(|meta| TraceMeta { id: TraceId(meta.id.0 + trace_off), ..meta.clone() }),
        );
        self.spans.extend(other.spans.iter().map(|s| offset_record(s, span_off, trace_off)));
        self.horizon_us = self.horizon_us.max(other.horizon_us);
    }

    /// The distinct scope labels present, in first-seen order.
    pub fn scopes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for meta in &self.traces {
            if !out.contains(&meta.scope.as_str()) {
                out.push(&meta.scope);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled() -> Tracer {
        Tracer(Some(Arc::new(TracerCore::default())))
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        let ctx = t.publish(1, 0, 100, "test");
        assert_eq!(ctx, TraceCtx::NONE);
        let h = t.hop(ctx, "update", 0, 1, 100, 200);
        assert_eq!(h, TraceCtx::NONE);
        t.skip(h, 1, 200);
        t.tick(500);
        let store = t.store();
        assert!(store.spans.is_empty());
        assert!(store.traces.is_empty());
        assert_eq!(store.horizon_us, 0);
    }

    #[test]
    fn publish_hop_adopt_chain_links_causally() {
        let t = enabled();
        let root = t.publish(7, 0, 1_000, "unicast push");
        let hop = t.hop(root, "update", 0, 3, 1_000, 51_000);
        let adopt = t.adopt(hop, 3, 51_000);
        t.user_view(adopt, 9, 3, 60_000);
        let store = t.store();
        assert_eq!(store.traces.len(), 1);
        assert_eq!(store.traces[0].update, 7);
        assert_eq!(store.spans.len(), 4);
        let spans = &store.spans;
        assert_eq!(spans[0].kind, SpanKind::Publish);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[1].src, Some(0));
        assert_eq!(spans[2].parent, spans[1].id);
        assert_eq!(spans[3].parent, spans[2].id);
        assert_eq!(spans[3].src, Some(9), "user id rides in src");
        assert!(spans.iter().all(|s| s.trace == TraceId(0)));
    }

    #[test]
    fn critical_path_attributes_wait_and_self_time() {
        let t = enabled();
        let root = t.publish(1, 0, 0, "s");
        // Fast branch: arrives at 10 ms.
        let fast = t.hop(root, "update", 0, 1, 0, 10_000);
        t.adopt(fast, 1, 10_000);
        // Slow branch: leaves 5 ms after publish, arrives at 100 ms, adopted
        // at 100 ms.
        let slow = t.hop(root, "update", 0, 2, 5_000, 100_000);
        t.adopt(slow, 2, 100_000);
        let path = t.store().critical_path(TraceId(0)).expect("path exists");
        assert_eq!(path.total_us, 100_000);
        assert_eq!(path.steps.len(), 3); // publish → hop → adopt
        assert_eq!(path.steps[1].wait_us, 5_000, "sender-side wait");
        assert_eq!(path.steps[1].self_us, 95_000, "network time");
        assert_eq!(path.steps[2].node, 2);
    }

    #[test]
    fn orphan_hops_exclude_superseded_deliveries() {
        let t = enabled();
        let root = t.publish(1, 0, 0, "s");
        let delivered = t.hop(root, "update", 0, 1, 0, 10);
        t.skip(delivered, 1, 10); // superseded: NOT an orphan
        let dropped = t.hop(root, "update", 0, 2, 0, 10);
        t.lost(dropped, 2, 10); // dropped at absent node: NOT an orphan
        let vanished = t.hop(root, "update", 0, 3, 0, 10); // no terminal child
        let tree = t.store().tree(TraceId(0)).unwrap();
        assert_eq!(tree.orphan_hops(), vec![vanished.span]);
    }

    #[test]
    fn control_spans_stay_outside_traces() {
        let t = enabled();
        t.publish(1, 0, 0, "s");
        t.control(SpanKind::ModeSwitch, 4, 50, "to_invalidation");
        t.control(SpanKind::TreeRepair, 5, 60, "reattach");
        let store = t.store();
        assert_eq!(store.trace_spans(TraceId(0)).count(), 1);
        let control: Vec<_> = store.trace_spans(TraceId::NONE).collect();
        assert_eq!(control.len(), 2);
        assert!(control.iter().all(|s| !s.parent.is_some()));
    }

    #[test]
    fn summary_counts_and_lags() {
        let t = enabled();
        let a = t.publish(1, 0, 0, "s");
        let h = t.hop(a, "update", 0, 1, 0, 2_000_000);
        t.adopt(h, 1, 2_000_000);
        let b = t.publish(2, 0, 1_000_000, "s");
        let h2 = t.hop(b, "update", 0, 1, 1_000_000, 5_000_000);
        t.adopt(h2, 1, 5_000_000);
        t.tick(6_000_000);
        let store = t.store();
        assert_eq!(store.horizon_us, 6_000_000);
        let sum = store.summary();
        assert_eq!(sum.traces, 2);
        assert_eq!(sum.adoptions, 2);
        assert_eq!(sum.orphan_hops, 0);
        assert!((sum.mean_adopt_lag_s - 3.0).abs() < 1e-9);
        assert!((sum.max_adopt_lag_s - 4.0).abs() < 1e-9);
    }

    /// The one-pass store-wide views must agree with the per-trace APIs.
    #[test]
    fn forest_matches_per_trace_reconstruction() {
        let t = enabled();
        let a = t.publish(1, 0, 0, "s");
        let h = t.hop(a, "update", 0, 1, 0, 2_000_000);
        t.adopt(h, 1, 2_000_000);
        let b = t.publish(2, 0, 1_000_000, "s");
        t.hop(b, "update", 0, 2, 1_000_000, 4_000_000); // orphan: no terminal
        let store = t.store();
        let forest = store.forest();
        assert_eq!(forest.len(), store.traces.len());
        for (meta, (tree, spans)) in
            store.traces.iter().zip(forest.iter().zip(store.spans_by_trace()))
        {
            assert_eq!(tree, &store.tree(meta.id), "trace {:?}", meta.id);
            let per_trace: Vec<SpanRecord> = store.trace_spans(meta.id).cloned().collect();
            assert_eq!(spans, per_trace, "trace {:?}", meta.id);
            assert_eq!(
                tree.as_ref().and_then(|t| t.critical_path(meta)),
                store.critical_path(meta.id),
                "trace {:?}",
                meta.id
            );
        }
        assert_eq!(forest[1].as_ref().expect("rooted").orphan_hops().len(), 1);
    }

    #[test]
    fn scopes_deduplicate_in_order() {
        let t = enabled();
        t.publish(1, 0, 0, "unicast ttl");
        t.publish(2, 0, 0, "hat");
        t.publish(3, 0, 0, "unicast ttl");
        assert_eq!(t.store().scopes(), vec!["unicast ttl", "hat"]);
    }

    /// Records one trace + one control span into `t`, with all values
    /// shifted by `salt` so two shards are distinguishable after a merge.
    fn record_shard(t: &Tracer, salt: u32) {
        let root = t.publish(salt, salt, u64::from(salt) * 1_000, "shard");
        let hop = t.hop(root, "update", salt, salt + 1, 0, 10);
        t.adopt(hop, salt + 1, 10);
        t.control(SpanKind::ModeSwitch, salt, 50, "to_invalidation");
        t.tick(u64::from(salt) * 2_000);
    }

    /// Merging shard stores in task order must reproduce bit-for-bit the
    /// store one tracer would have produced recording the same tasks
    /// sequentially — the determinism contract `Pool::map` relies on.
    #[test]
    fn merge_in_task_order_equals_sequential_recording() {
        let serial = enabled();
        record_shard(&serial, 1);
        record_shard(&serial, 5);
        record_shard(&serial, 9);

        let shards: Vec<SpanStore> = [1, 5, 9]
            .iter()
            .map(|&salt| {
                let t = enabled();
                record_shard(&t, salt);
                t.store()
            })
            .collect();
        let mut merged = SpanStore::default();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged, serial.store());

        // Tracer::absorb is the in-place flavor of the same operation.
        let absorbed = enabled();
        for shard in &shards {
            absorbed.absorb(shard);
        }
        assert_eq!(absorbed.store(), serial.store());
    }

    #[test]
    fn merge_preserves_sentinels_and_dense_ids() {
        let a = enabled();
        record_shard(&a, 1);
        let b = enabled();
        record_shard(&b, 7);
        let mut merged = a.store();
        merged.merge(&b.store());
        for (i, s) in merged.spans.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i, "span ids stay dense");
        }
        for (i, m) in merged.traces.iter().enumerate() {
            assert_eq!(m.id.0 as usize, i, "trace ids stay dense");
        }
        let control: Vec<_> = merged.trace_spans(TraceId::NONE).collect();
        assert_eq!(control.len(), 2, "control spans stay outside traces");
        assert!(control.iter().all(|s| !s.parent.is_some()));
        // The second shard's trace is fully reconstructible post-merge.
        let tree = merged.tree(TraceId(1)).expect("rooted");
        assert_eq!(tree.spans.len(), 3);
        assert_eq!(merged.meta(TraceId(1)).unwrap().update, 7);
    }

    #[test]
    fn absorb_into_disabled_tracer_is_inert() {
        let src = enabled();
        record_shard(&src, 1);
        let dst = Tracer::disabled();
        dst.absorb(&src.store());
        assert!(dst.store().spans.is_empty());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            SpanKind::Publish,
            SpanKind::Hop,
            SpanKind::Adopt,
            SpanKind::Skip,
            SpanKind::Lost,
            SpanKind::Stale,
            SpanKind::ModeSwitch,
            SpanKind::TreeRepair,
            SpanKind::UserView,
            SpanKind::MemorySpike,
            SpanKind::DigestDivergence,
            SpanKind::Stall,
            SpanKind::NodeChurn,
        ] {
            assert_eq!(SpanKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(SpanKind::parse("bogus"), None);
    }
}
