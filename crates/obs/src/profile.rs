//! Memory and hot-path profiling: per-subsystem allocation attribution.
//!
//! The ROADMAP's million-node core needs to know *which* subsystem owns the
//! bytes a run allocates — the event queue, per-node replica state, net
//! packets, trace spans, or series cells — before any of it is rewritten to
//! arenas or pools. This module provides:
//!
//! - **A tagged counting global allocator** ([`ProfiledAlloc`]): binaries
//!   install it with `#[global_allocator]`. It always maintains the legacy
//!   total-allocation estimate (one relaxed add per allocation, exactly the
//!   cost the old counting allocator paid). When attribution is switched on
//!   with [`set_enabled`], every allocation and deallocation is additionally
//!   charged to the [`Subsystem`] named by the innermost [`scope`] guard on
//!   the current thread; unattributed traffic lands in [`Subsystem::Other`].
//! - **Scoped attribution guards** ([`scope`]): cheap thread-local tags
//!   placed inside component code (scheduler queue ops, network sends, the
//!   core simulation loop, span/series recording, analysis) so worker
//!   threads attribute correctly no matter which task they run.
//! - **Window accounting** ([`snapshot`], [`ProfileSnapshot::window_since`],
//!   [`reset_window_peaks`]): callers bracket a workload with snapshots and
//!   get the bytes/allocs/peak-live attributable to that window, excluding
//!   process-startup noise.
//! - **An allocation-spike detector** ([`SpikeDetector`], [`MemProbe`]):
//!   ticked from the scheduler clock, it compares per-interval allocated
//!   bytes against a running median and records a `memory_spike` control
//!   span (plus a `profile_mem_spikes` counter) when an interval exceeds a
//!   configurable multiple of it.
//!
//! # Determinism
//!
//! Tagged buckets count only work performed inside component scopes, which
//! is dominated by the workload itself — a pure function of the inputs. The
//! allocator is process-global though (unlike registry instruments, it is
//! not sharded and absorbed per task), so per-thread warm-up allocations
//! that happen to occur inside a scope (lock machinery, lazy TLS) add a
//! sub-0.1% jitter to the named totals across worker counts. Cross-`--jobs`
//! comparisons therefore use the registry's structural probes (which *are*
//! bit-identical for every `--jobs N`) for exact equality and hold the
//! named attribution totals to a tight relative tolerance. Everything tied
//! to worker count or wall clock outright — the `other` bucket (thread
//! spawn and orchestration overhead), live/peak levels, and spike timing —
//! is volatile telemetry, and the experiments crate scrubs it before
//! determinism comparisons exactly like wall times.
//!
//! # Zero overhead when off
//!
//! With attribution disabled the allocator performs the same single relaxed
//! add the previous counting allocator did, [`scope`] returns an inert
//! guard after one atomic load, and probe handles minted from unarmed
//! registries are `None` inside — one branch per tick.

use crate::metrics::Counter;
use crate::trace::{SpanKind, Tracer};
use parking_lot::Mutex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Number of attribution buckets (all of [`Subsystem::ALL`]).
pub const SUBSYSTEMS: usize = 7;

/// The attribution buckets: one per major subsystem, plus the residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// Event-queue operations (`cdnc-simcore`): schedule and pop.
    Scheduler = 0,
    /// Packet transport (`cdnc-net`).
    Net = 1,
    /// The CDN simulation proper (`cdnc-core`): node/user state, handlers.
    SimCore = 2,
    /// Measurement-trace synthesis (`cdnc-trace`) and causal span
    /// recording (`cdnc-obs::trace`).
    Trace = 3,
    /// Sim-time series sampling and storage.
    Series = 4,
    /// Statistics over finished runs (`cdnc-analysis`).
    Analysis = 5,
    /// Everything not under a scope guard: orchestration, thread spawns,
    /// I/O, formatting. The residual bucket — never tagged explicitly.
    Other = 6,
}

impl Subsystem {
    /// Every bucket, in index order.
    pub const ALL: [Subsystem; SUBSYSTEMS] = [
        Subsystem::Scheduler,
        Subsystem::Net,
        Subsystem::SimCore,
        Subsystem::Trace,
        Subsystem::Series,
        Subsystem::Analysis,
        Subsystem::Other,
    ];

    /// Stable lowercase name used in artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Scheduler => "scheduler",
            Subsystem::Net => "net",
            Subsystem::SimCore => "sim_core",
            Subsystem::Trace => "trace",
            Subsystem::Series => "series",
            Subsystem::Analysis => "analysis",
            Subsystem::Other => "other",
        }
    }

    /// `true` for every bucket except the [`Subsystem::Other`] residual.
    pub fn is_named(self) -> bool {
        !matches!(self, Subsystem::Other)
    }

    fn from_index(i: usize) -> Subsystem {
        Subsystem::ALL[i]
    }
}

/// Per-bucket atomic cells. All counter updates saturate (a pinned counter
/// is a visible anomaly; a wrapped one silently reads near zero), and live
/// levels are signed: frees of memory allocated before attribution was
/// enabled legitimately drive a bucket's live level negative.
#[derive(Debug, Default)]
struct Cells {
    allocs: AtomicU64,
    bytes: AtomicU64,
    frees: AtomicU64,
    freed_bytes: AtomicU64,
    live: AtomicI64,
    peak_live: AtomicI64,
}

impl Cells {
    const fn new() -> Cells {
        Cells {
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            freed_bytes: AtomicU64::new(0),
            live: AtomicI64::new(0),
            peak_live: AtomicI64::new(0),
        }
    }

    fn stats(&self) -> SubsystemStats {
        SubsystemStats {
            allocs: self.allocs.load(Relaxed),
            bytes: self.bytes.load(Relaxed),
            frees: self.frees.load(Relaxed),
            freed_bytes: self.freed_bytes.load(Relaxed),
            live_bytes: self.live.load(Relaxed),
            peak_live_bytes: self.peak_live.load(Relaxed),
        }
    }
}

fn sat_add(cell: &AtomicU64, n: u64) {
    // fetch_update never fails with a Relaxed pair and a Some return.
    let _ = cell.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_add(n)));
}

fn live_add(live: &AtomicI64, peak: &AtomicI64, delta: i64) {
    let mut now = 0;
    let _ = live.fetch_update(Relaxed, Relaxed, |v| {
        now = v.saturating_add(delta);
        Some(now)
    });
    if delta > 0 {
        peak.fetch_max(now, Relaxed);
    }
}

/// Byte counts pinned into the signed live-level domain (a count beyond
/// `i64::MAX` saturates rather than flipping the sign).
fn signed(bytes: u64) -> i64 {
    i64::try_from(bytes).unwrap_or(i64::MAX)
}

/// The counting core behind the global allocator. Instantiable so tests
/// can drive an isolated instance; the process uses one `static` instance
/// through the free functions of this module.
#[derive(Debug)]
pub struct ProfileCounters {
    enabled: AtomicBool,
    total_allocs: AtomicU64,
    total_bytes: AtomicU64,
    live: AtomicI64,
    peak_live: AtomicI64,
    cells: [Cells; SUBSYSTEMS],
}

impl Default for ProfileCounters {
    fn default() -> Self {
        ProfileCounters::new()
    }
}

impl ProfileCounters {
    /// A zeroed, disabled counter set.
    pub const fn new() -> ProfileCounters {
        ProfileCounters {
            enabled: AtomicBool::new(false),
            total_allocs: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            live: AtomicI64::new(0),
            peak_live: AtomicI64::new(0),
            cells: [const { Cells::new() }; SUBSYSTEMS],
        }
    }

    /// Turns per-subsystem attribution on or off. Totals count regardless.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Whether attribution is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Counts an allocation of `bytes`, charged to `tag` when attribution
    /// is enabled.
    pub fn record_alloc(&self, tag: Subsystem, bytes: u64) {
        sat_add(&self.total_allocs, 1);
        sat_add(&self.total_bytes, bytes);
        if !self.is_enabled() {
            return;
        }
        live_add(&self.live, &self.peak_live, signed(bytes));
        let cells = &self.cells[tag as usize];
        sat_add(&cells.allocs, 1);
        sat_add(&cells.bytes, bytes);
        live_add(&cells.live, &cells.peak_live, signed(bytes));
    }

    /// Counts a deallocation of `bytes`, charged to `tag` when attribution
    /// is enabled. No-op when disabled (matching the legacy counting
    /// allocator, which never looked at frees).
    pub fn record_dealloc(&self, tag: Subsystem, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        live_add(&self.live, &self.peak_live, -signed(bytes));
        let cells = &self.cells[tag as usize];
        sat_add(&cells.frees, 1);
        sat_add(&cells.freed_bytes, bytes);
        live_add(&cells.live, &cells.peak_live, -signed(bytes));
    }

    /// Counts an in-place resize from `old` to `new` bytes: growth adds to
    /// the byte totals (shrinkage doesn't — preserving the historic
    /// "cumulative allocation estimate" semantics) and the live level moves
    /// by the signed difference.
    pub fn record_realloc(&self, tag: Subsystem, old: u64, new: u64) {
        sat_add(&self.total_allocs, 1);
        sat_add(&self.total_bytes, new.saturating_sub(old));
        if !self.is_enabled() {
            return;
        }
        let delta = signed(new).saturating_sub(signed(old));
        live_add(&self.live, &self.peak_live, delta);
        let cells = &self.cells[tag as usize];
        sat_add(&cells.allocs, 1);
        sat_add(&cells.bytes, new.saturating_sub(old));
        live_add(&cells.live, &cells.peak_live, delta);
    }

    /// Rebases every peak-live level to the current live level, starting a
    /// fresh measurement window for peaks.
    pub fn reset_window_peaks(&self) {
        self.peak_live.store(self.live.load(Relaxed), Relaxed);
        for cells in &self.cells {
            cells.peak_live.store(cells.live.load(Relaxed), Relaxed);
        }
    }

    /// Cumulative bytes counted so far (lives independently of attribution).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Relaxed)
    }

    /// A point-in-time copy of every cell.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut subsystems = [SubsystemStats::default(); SUBSYSTEMS];
        for (slot, cells) in subsystems.iter_mut().zip(&self.cells) {
            *slot = cells.stats();
        }
        ProfileSnapshot {
            enabled: self.is_enabled(),
            total_allocs: self.total_allocs.load(Relaxed),
            total_bytes: self.total_bytes.load(Relaxed),
            live_bytes: self.live.load(Relaxed),
            peak_live_bytes: self.peak_live.load(Relaxed),
            subsystems,
        }
    }
}

/// One bucket's accumulated numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubsystemStats {
    /// Allocation events charged here.
    pub allocs: u64,
    /// Bytes allocated (realloc counts growth only).
    pub bytes: u64,
    /// Deallocation events charged here.
    pub frees: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Net live bytes (may be negative: frees of pre-attribution memory).
    pub live_bytes: i64,
    /// Highest live level since the last window reset.
    pub peak_live_bytes: i64,
}

/// A point-in-time copy of [`ProfileCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProfileSnapshot {
    /// Whether attribution was on when the snapshot was taken.
    pub enabled: bool,
    /// Allocation events since process start (or instance creation).
    pub total_allocs: u64,
    /// Bytes allocated since process start (realloc counts growth only).
    pub total_bytes: u64,
    /// Net live bytes while attribution was enabled.
    pub live_bytes: i64,
    /// Highest live level since the last window reset.
    pub peak_live_bytes: i64,
    /// Per-bucket numbers, indexed by `Subsystem as usize`.
    pub subsystems: [SubsystemStats; SUBSYSTEMS],
}

impl ProfileSnapshot {
    /// One bucket's stats.
    pub fn subsystem(&self, s: Subsystem) -> &SubsystemStats {
        &self.subsystems[s as usize]
    }

    /// The cumulative deltas between `base` (taken earlier) and this
    /// snapshot: counters subtract, live levels difference, and peaks stay
    /// at this snapshot's values (bracket the window with
    /// [`reset_window_peaks`] at its start for meaningful peaks).
    pub fn window_since(&self, base: &ProfileSnapshot) -> ProfileSnapshot {
        let mut out = *self;
        out.total_allocs = self.total_allocs.saturating_sub(base.total_allocs);
        out.total_bytes = self.total_bytes.saturating_sub(base.total_bytes);
        out.live_bytes = self.live_bytes - base.live_bytes;
        for (slot, (now, then)) in
            out.subsystems.iter_mut().zip(self.subsystems.iter().zip(base.subsystems.iter()))
        {
            slot.allocs = now.allocs.saturating_sub(then.allocs);
            slot.bytes = now.bytes.saturating_sub(then.bytes);
            slot.frees = now.frees.saturating_sub(then.frees);
            slot.freed_bytes = now.freed_bytes.saturating_sub(then.freed_bytes);
            slot.live_bytes = now.live_bytes - then.live_bytes;
        }
        out
    }

    /// Bytes charged to named (non-`other`) subsystems.
    pub fn named_bytes(&self) -> u64 {
        Subsystem::ALL
            .iter()
            .filter(|s| s.is_named())
            .map(|&s| self.subsystem(s).bytes)
            .fold(0u64, u64::saturating_add)
    }

    /// Fraction of the counting-allocator byte total charged to named
    /// subsystems (0.0 when nothing was counted).
    pub fn attributed_fraction(&self) -> f64 {
        let tagged: u64 =
            Subsystem::ALL.iter().map(|&s| self.subsystem(s).bytes).fold(0u64, u64::saturating_add);
        if tagged == 0 {
            return 0.0;
        }
        self.named_bytes() as f64 / tagged as f64
    }
}

// ---------------------------------------------------------------------------
// The process-global instance and its allocator front-end.
// ---------------------------------------------------------------------------

static GLOBAL: ProfileCounters = ProfileCounters::new();
static INSTALLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The innermost scope's tag; `const` init so the allocator can read it
    /// without triggering lazy initialisation (no allocation, no recursion).
    static CURRENT_TAG: Cell<u8> = const { Cell::new(Subsystem::Other as u8) };
}

fn current_tag() -> Subsystem {
    // try_with: survives reads during TLS teardown (report as Other).
    let idx = CURRENT_TAG.try_with(Cell::get).unwrap_or(Subsystem::Other as u8);
    Subsystem::from_index(idx as usize)
}

/// The bucket allocations on this thread are currently charged to.
pub fn current() -> Subsystem {
    current_tag()
}

/// An RAII attribution tag: while alive, allocations on this thread are
/// charged to the scope's subsystem; dropping restores the previous tag, so
/// scopes nest. Inert (and free) when attribution is disabled.
#[must_use = "the scope tags allocations only while the guard lives"]
#[derive(Debug)]
pub struct ScopeGuard {
    prev: Option<u8>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            let _ = CURRENT_TAG.try_with(|c| c.set(prev));
        }
    }
}

/// Charges allocations on this thread to `tag` until the guard drops.
#[inline]
pub fn scope(tag: Subsystem) -> ScopeGuard {
    if !GLOBAL.is_enabled() {
        return ScopeGuard { prev: None };
    }
    let prev = CURRENT_TAG
        .try_with(|c| {
            let prev = c.get();
            c.set(tag as u8);
            prev
        })
        .ok();
    ScopeGuard { prev }
}

/// Turns per-subsystem attribution on or off for the process.
pub fn set_enabled(on: bool) {
    GLOBAL.set_enabled(on);
}

/// Whether per-subsystem attribution is on.
pub fn is_enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Whether [`ProfiledAlloc`] is this process's global allocator (i.e. the
/// counters are actually fed).
pub fn installed() -> bool {
    INSTALLED.load(Relaxed)
}

/// A point-in-time copy of the process counters.
pub fn snapshot() -> ProfileSnapshot {
    GLOBAL.snapshot()
}

/// Rebases the process peak-live levels; see
/// [`ProfileCounters::reset_window_peaks`].
pub fn reset_window_peaks() {
    GLOBAL.reset_window_peaks();
}

/// Cumulative bytes allocated since process start, or `None` when
/// [`ProfiledAlloc`] is not installed.
pub fn total_allocated_bytes() -> Option<u64> {
    installed().then(|| GLOBAL.total_bytes())
}

/// Cumulative allocation events since process start, or `None` when
/// [`ProfiledAlloc`] is not installed.
pub fn total_allocs() -> Option<u64> {
    installed().then(|| GLOBAL.total_allocs.load(Relaxed))
}

/// The tagged counting global allocator: a thin wrapper around [`System`]
/// feeding [`ProfileCounters`]. Install in a binary with
/// `#[global_allocator]` and call [`ProfiledAlloc::mark_installed`] first
/// thing in `main` so library code can tell "nothing counted" from "no
/// allocator installed".
pub struct ProfiledAlloc;

impl ProfiledAlloc {
    /// Marks the counters live.
    pub fn mark_installed() {
        INSTALLED.store(true, Relaxed);
    }
}

// SAFETY: delegates every operation to `System` unchanged; the extra work
// is relaxed atomic accounting on success paths plus a thread-local read
// that cannot allocate (const-initialised `Cell<u8>`).
unsafe impl GlobalAlloc for ProfiledAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            GLOBAL.record_alloc(current_tag(), layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        GLOBAL.record_dealloc(current_tag(), layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            GLOBAL.record_alloc(current_tag(), layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            GLOBAL.record_realloc(current_tag(), layout.size() as u64, new_size as u64);
        }
        p
    }
}

// ---------------------------------------------------------------------------
// Allocation-spike detection.
// ---------------------------------------------------------------------------

/// Samples of interval-allocated bytes kept for the running median.
pub const SPIKE_WINDOW: usize = 32;

/// Intervals observed before spike judgements begin (a median over fewer
/// samples is noise).
pub const SPIKE_MIN_SAMPLES: usize = 4;

/// Default spike threshold: an interval allocating more than this multiple
/// of the running median is anomalous.
pub const DEFAULT_SPIKE_MULTIPLE: f64 = 8.0;

/// Flags intervals whose allocated bytes exceed a configurable multiple of
/// the running median of recent intervals. Pure state machine — feed it
/// per-interval byte counts, it answers "was that a spike".
#[derive(Debug, Clone)]
pub struct SpikeDetector {
    multiple: f64,
    window: VecDeque<u64>,
}

impl SpikeDetector {
    /// A detector flagging intervals above `multiple` × running median.
    pub fn new(multiple: f64) -> SpikeDetector {
        SpikeDetector { multiple, window: VecDeque::with_capacity(SPIKE_WINDOW) }
    }

    /// The current running median, once enough samples exist.
    pub fn median(&self) -> Option<u64> {
        if self.window.len() < SPIKE_MIN_SAMPLES {
            return None;
        }
        let mut sorted: Vec<u64> = self.window.iter().copied().collect();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    /// Feeds one interval's allocated bytes; returns `Some(median)` when
    /// the interval is a spike (judged against the median of *previous*
    /// intervals, then added to the window).
    pub fn observe(&mut self, interval_bytes: u64) -> Option<u64> {
        let spike = match self.median() {
            Some(median) if median > 0 => {
                (interval_bytes as f64 > self.multiple * median as f64).then_some(median)
            }
            _ => None,
        };
        if self.window.len() == SPIKE_WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(interval_bytes);
        spike
    }
}

/// One detected allocation spike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpikeRecord {
    /// Simulated end of the spiking interval, microseconds.
    pub at_us: u64,
    /// Bytes the interval allocated.
    pub bytes: u64,
    /// The running median it was judged against.
    pub median_bytes: u64,
}

#[derive(Debug)]
struct ProbeState {
    last_total_bytes: u64,
    detector: SpikeDetector,
    spikes: Vec<SpikeRecord>,
}

/// Shared state behind an armed [`MemProbe`].
#[derive(Debug)]
pub struct MemProbeCore {
    cadence_us: u64,
    next_boundary_us: AtomicU64,
    state: Mutex<ProbeState>,
    spike_counter: Counter,
    tracer: Tracer,
}

/// A scheduler-ticked allocation-spike probe (inert when profiling is not
/// armed on the registry). On every cadence boundary of *simulated* time it
/// reads the process allocation total, feeds the interval delta to a
/// [`SpikeDetector`], and records a `memory_spike` control span plus a
/// `profile_mem_spikes` counter increment for each spike.
///
/// Allocation totals are process-global and wall-clock-class: spike counts
/// and timings are volatile telemetry (like `wall_s`), not part of the
/// deterministic artifact surface.
#[derive(Debug, Clone, Default)]
pub struct MemProbe(pub(crate) Option<Arc<MemProbeCore>>);

impl MemProbe {
    /// An armed probe judging intervals of `cadence_us` simulated time
    /// against `multiple` × running median, counting spikes on
    /// `spike_counter` and recording spans through `tracer`.
    pub fn armed(cadence_us: u64, multiple: f64, spike_counter: Counter, tracer: Tracer) -> Self {
        MemProbe(Some(Arc::new(MemProbeCore {
            cadence_us: cadence_us.max(1),
            next_boundary_us: AtomicU64::new(cadence_us.max(1)),
            state: Mutex::new(ProbeState {
                last_total_bytes: GLOBAL.total_bytes(),
                detector: SpikeDetector::new(multiple),
                spikes: Vec::new(),
            }),
            spike_counter,
            tracer,
        })))
    }

    /// Whether the probe records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advances the probe clock; cheap (one load and compare) until a
    /// cadence boundary is crossed.
    #[inline]
    pub fn tick(&self, now_us: u64) {
        if let Some(core) = &self.0 {
            if now_us >= core.next_boundary_us.load(Relaxed) {
                core.cross(now_us);
            }
        }
    }

    /// The spikes detected so far.
    pub fn spikes(&self) -> Vec<SpikeRecord> {
        self.0.as_ref().map_or_else(Vec::new, |core| core.state.lock().spikes.clone())
    }
}

impl MemProbeCore {
    fn cross(&self, now_us: u64) {
        let mut state = self.state.lock();
        // Re-check under the lock: another thread may have advanced past us.
        if now_us < self.next_boundary_us.load(Relaxed) {
            return;
        }
        let total = GLOBAL.total_bytes();
        let delta = total.saturating_sub(state.last_total_bytes);
        state.last_total_bytes = total;
        if let Some(median) = state.detector.observe(delta) {
            state.spikes.push(SpikeRecord { at_us: now_us, bytes: delta, median_bytes: median });
            self.spike_counter.inc();
            self.tracer.control(SpanKind::MemorySpike, 0, now_us, "memory-spike");
        }
        self.next_boundary_us.store(now_us.saturating_add(self.cadence_us), Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_attribute_only_when_enabled() {
        let c = ProfileCounters::new();
        c.record_alloc(Subsystem::Net, 100);
        assert_eq!(c.snapshot().total_bytes, 100);
        assert_eq!(c.snapshot().subsystem(Subsystem::Net).bytes, 0, "attribution off");
        c.set_enabled(true);
        c.record_alloc(Subsystem::Net, 50);
        let snap = c.snapshot();
        assert_eq!(snap.total_bytes, 150);
        assert_eq!(snap.subsystem(Subsystem::Net).bytes, 50);
        assert_eq!(snap.subsystem(Subsystem::Net).live_bytes, 50);
        assert_eq!(snap.live_bytes, 50);
    }

    #[test]
    fn dealloc_of_pre_enable_memory_goes_negative_not_wrapping() {
        let c = ProfileCounters::new();
        c.set_enabled(true);
        c.record_dealloc(Subsystem::SimCore, 10);
        let snap = c.snapshot();
        assert_eq!(snap.subsystem(Subsystem::SimCore).live_bytes, -10);
        assert_eq!(snap.live_bytes, -10);
        assert_eq!(snap.subsystem(Subsystem::SimCore).freed_bytes, 10);
    }

    #[test]
    fn realloc_counts_growth_only_but_tracks_live_both_ways() {
        let c = ProfileCounters::new();
        c.set_enabled(true);
        c.record_alloc(Subsystem::Trace, 100);
        c.record_realloc(Subsystem::Trace, 100, 160);
        assert_eq!(c.snapshot().subsystem(Subsystem::Trace).bytes, 160);
        assert_eq!(c.snapshot().subsystem(Subsystem::Trace).live_bytes, 160);
        c.record_realloc(Subsystem::Trace, 160, 40);
        let snap = c.snapshot();
        assert_eq!(snap.subsystem(Subsystem::Trace).bytes, 160, "shrink adds nothing");
        assert_eq!(snap.subsystem(Subsystem::Trace).live_bytes, 40);
        assert_eq!(snap.subsystem(Subsystem::Trace).peak_live_bytes, 160);
    }

    #[test]
    fn window_since_subtracts_counters() {
        let c = ProfileCounters::new();
        c.set_enabled(true);
        c.record_alloc(Subsystem::Scheduler, 100);
        let base = c.snapshot();
        c.reset_window_peaks();
        c.record_alloc(Subsystem::Scheduler, 30);
        c.record_dealloc(Subsystem::Scheduler, 130);
        let win = c.snapshot().window_since(&base);
        let s = win.subsystem(Subsystem::Scheduler);
        assert_eq!(s.allocs, 1);
        assert_eq!(s.bytes, 30);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live_bytes, -100);
        assert_eq!(win.total_allocs, 1);
    }

    #[test]
    fn attribution_fraction_counts_named_buckets_only() {
        let c = ProfileCounters::new();
        c.set_enabled(true);
        c.record_alloc(Subsystem::SimCore, 90);
        c.record_alloc(Subsystem::Other, 10);
        let snap = c.snapshot();
        assert_eq!(snap.named_bytes(), 90);
        assert!((snap.attributed_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn scope_guards_nest_and_restore() {
        // Scopes are inert while attribution is off process-wide; flip it
        // on briefly. Serial within this test; other tests don't read tags.
        set_enabled(true);
        assert_eq!(current(), Subsystem::Other);
        {
            let _sim = scope(Subsystem::SimCore);
            assert_eq!(current(), Subsystem::SimCore);
            {
                let _net = scope(Subsystem::Net);
                assert_eq!(current(), Subsystem::Net);
            }
            assert_eq!(current(), Subsystem::SimCore);
        }
        assert_eq!(current(), Subsystem::Other);
        set_enabled(false);
        let guard = scope(Subsystem::Trace);
        assert_eq!(current(), Subsystem::Other, "disabled scopes are inert");
        drop(guard);
    }

    #[test]
    fn spike_detector_flags_multiples_of_running_median() {
        let mut d = SpikeDetector::new(4.0);
        for _ in 0..SPIKE_MIN_SAMPLES {
            assert_eq!(d.observe(100), None, "warm-up intervals never spike");
        }
        assert_eq!(d.observe(150), None, "within the band");
        assert_eq!(d.observe(1000), Some(100), "10x the median spikes");
        // The spike itself joined the window but the median is robust.
        assert_eq!(d.observe(120), None);
    }

    #[test]
    fn spike_detector_window_is_bounded() {
        let mut d = SpikeDetector::new(2.0);
        for i in 0..(SPIKE_WINDOW * 3) {
            let _ = d.observe(100 + (i % 7) as u64);
        }
        assert!(d.window.len() <= SPIKE_WINDOW);
        assert!(d.median().is_some());
    }

    #[test]
    fn mem_probe_detects_injected_spike() {
        let reg = crate::Registry::enabled();
        reg.enable_tracing();
        let counter = reg.counter("profile_mem_spikes");
        let probe = MemProbe::armed(1_000, 4.0, counter.clone(), reg.tracer());
        // Establish a quiet baseline, then allocate heavily in one
        // interval. The process allocator is not installed under test, so
        // drive the global byte total directly — ambient noise would only
        // make intervals larger, never suppress the spike.
        for i in 1..=8u64 {
            GLOBAL.record_alloc(Subsystem::Other, 1024);
            probe.tick(i * 1_000);
        }
        let snap_before = counter.get();
        // The injected "spike": bump the process total by a large amount.
        // (Runs under the test allocator too — drive the global counters
        // directly so the test is deterministic without installation.)
        GLOBAL.record_alloc(Subsystem::Other, 100 << 20);
        probe.tick(9_000);
        if probe.spikes().is_empty() {
            // Ambient allocator noise can only make the interval bigger, so
            // a missed spike would mean the probe is broken.
            panic!("100 MiB in one interval must register as a spike");
        }
        assert!(counter.get() > snap_before);
        let store = reg.tracer().store();
        assert!(store.spans.iter().any(|s| s.kind == SpanKind::MemorySpike));
        assert_eq!(probe.spikes()[0].at_us, 9_000);
    }

    #[test]
    fn unarmed_probe_is_inert() {
        let probe = MemProbe::default();
        probe.tick(1_000_000);
        assert!(!probe.is_enabled());
        assert!(probe.spikes().is_empty());
    }
}
