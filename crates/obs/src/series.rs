//! Sim-time time-series sampling: the third leg of `cdnc-obs`.
//!
//! [`crate::Registry::enable_series`] attaches a [`SeriesCore`] to a
//! registry; instrumented components then register *sources* — named
//! gauges or counters to snapshot — and the scheduler drives the
//! [`Sampler`] handle with the simulation clock. Whenever the clock
//! crosses a cadence boundary every source is sampled at that boundary,
//! so a run yields one aligned `(sim-time, value)` series per source.
//!
//! # Contract
//!
//! Same rules as the registry and tracer:
//!
//! - **Zero overhead when off.** A disabled registry (or one without
//!   series enabled) hands out `Sampler(None)`; a tick costs one branch.
//!   When enabled, the tick fast path is one relaxed atomic load.
//! - **Observation only.** Sampling reads instrument cells and writes
//!   into its own buffers — nothing feeds back into simulated state.
//! - **Deterministic under `--jobs N`.** Parallel tasks sample into their
//!   own registry shards; [`crate::Registry::absorb`] replays shard points
//!   through the same push path in task order, so the merged series are
//!   bit-identical for any worker count.
//!
//! # Bounded memory
//!
//! Each series holds at most [`SERIES_CAPACITY`] points. On overflow it is
//! downsampled in place to half capacity with [`lttb`]
//! (largest-triangle-three-buckets), a deterministic pure function that
//! keeps the first and last points and picks the visually dominant point
//! per bucket — long runs degrade resolution gracefully instead of
//! growing without bound.

use crate::json::Json;
use crate::metrics::GaugeCore;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Maximum points a series buffers before LTTB halves it.
pub const SERIES_CAPACITY: usize = 4096;

/// Default sampling cadence: 250 ms of simulated time.
pub const DEFAULT_CADENCE_US: u64 = 250_000;

/// One sample: simulated time (µs) and the sampled value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Simulated time of the cadence boundary this sample was taken at.
    pub t_us: u64,
    /// Sampled value.
    pub value: f64,
}

/// How a source turns its instrument into samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Instantaneous gauge level.
    Gauge,
    /// Cumulative counter value.
    Counter,
    /// Per-second rate derived from counter deltas between samples.
    Rate,
}

impl SeriesKind {
    /// Stable wire name used in `*.series.json`.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
            SeriesKind::Rate => "rate",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn parse(s: &str) -> Option<SeriesKind> {
        match s {
            "gauge" => Some(SeriesKind::Gauge),
            "counter" => Some(SeriesKind::Counter),
            "rate" => Some(SeriesKind::Rate),
            _ => None,
        }
    }
}

/// The instrument cell a source reads. Registry-side code interns the
/// cell by name so a source and the matching [`crate::Counter`] /
/// [`crate::Gauge`] handles share storage.
#[derive(Debug, Clone)]
pub(crate) enum SourceCell {
    Gauge(Arc<GaugeCore>),
    Counter(Arc<AtomicU64>),
}

impl SourceCell {
    fn read(&self) -> u64 {
        match self {
            SourceCell::Gauge(core) => core.value.load(Relaxed),
            SourceCell::Counter(cell) => cell.load(Relaxed),
        }
    }
}

#[derive(Debug)]
struct Source {
    name: String,
    kind: SeriesKind,
    cell: SourceCell,
    /// Counter reading at the previous sample ([`SeriesKind::Rate`] only).
    last: u64,
    points: Vec<SeriesPoint>,
}

impl Source {
    /// Appends one point, compacting with LTTB at capacity. All point
    /// ingestion — live sampling and shard absorption alike — goes
    /// through here so both paths compact identically.
    fn push(&mut self, point: SeriesPoint) {
        self.points.push(point);
        if self.points.len() >= SERIES_CAPACITY {
            self.points = lttb(&self.points, SERIES_CAPACITY / 2);
        }
    }
}

#[derive(Debug, Default)]
struct SeriesState {
    sources: Vec<Source>,
    /// Boundary of the last sample in the current segment.
    last_us: u64,
    /// Whether the current segment has sampled at least once.
    sampled: bool,
    /// Points pushed since creation, before any compaction (throughput
    /// accounting for the bench harness).
    total_points: u64,
}

/// The attached sampling engine; lives behind
/// [`crate::Registry::enable_series`].
#[derive(Debug)]
pub(crate) struct SeriesCore {
    pub(crate) cadence_us: u64,
    /// The next cadence boundary; the tick fast path compares against
    /// this without locking.
    next_due: AtomicU64,
    state: Mutex<SeriesState>,
}

impl SeriesCore {
    pub(crate) fn new(cadence_us: u64) -> Self {
        SeriesCore {
            cadence_us: cadence_us.max(1),
            next_due: AtomicU64::new(0),
            state: Mutex::new(SeriesState::default()),
        }
    }

    /// Registers a source; a `(name, kind)` pair already present is left
    /// untouched so repeated `set_obs` calls stay idempotent.
    pub(crate) fn add_source(&self, name: &str, kind: SeriesKind, cell: SourceCell) {
        let mut state = self.state.lock();
        if state.sources.iter().any(|s| s.name == name && s.kind == kind) {
            return;
        }
        let last = if kind == SeriesKind::Rate { cell.read() } else { 0 };
        state.sources.push(Source { name: name.to_owned(), kind, cell, last, points: Vec::new() });
    }

    /// Starts a fresh sampling segment: the next sim starting its clock at
    /// zero re-arms the boundary and re-bases rate deltas. Series points
    /// keep accumulating — a later segment simply restarts the timestamps,
    /// which consumers treat as a segment break.
    pub(crate) fn begin_segment(&self) {
        let mut state = self.state.lock();
        state.last_us = 0;
        state.sampled = false;
        for source in &mut state.sources {
            if source.kind == SeriesKind::Rate {
                source.last = source.cell.read();
            }
        }
        self.next_due.store(0, Relaxed);
    }

    /// Samples every source at the latest cadence boundary ≤ `now_us`.
    /// A clock jump across several boundaries collapses to one sample
    /// with rates averaged over the whole gap, keeping idle periods from
    /// flooding the buffers.
    fn sample(&self, now_us: u64) {
        let _prof = crate::profile::scope(crate::profile::Subsystem::Series);
        let mut state = self.state.lock();
        let boundary = now_us - now_us % self.cadence_us;
        if state.sampled && boundary <= state.last_us {
            return;
        }
        let dt_us = if state.sampled { boundary - state.last_us } else { self.cadence_us };
        let dt_s = dt_us.max(1) as f64 / 1e6;
        state.total_points += state.sources.len() as u64;
        for source in &mut state.sources {
            let raw = source.cell.read();
            let value = match source.kind {
                SeriesKind::Gauge | SeriesKind::Counter => raw as f64,
                SeriesKind::Rate => {
                    let delta = raw.saturating_sub(source.last);
                    source.last = raw;
                    delta as f64 / dt_s
                }
            };
            source.push(SeriesPoint { t_us: boundary, value });
        }
        state.last_us = boundary;
        state.sampled = true;
        self.next_due.store(boundary + self.cadence_us, Relaxed);
    }

    /// Appends externally recorded points (a shard's series) through the
    /// normal push path, creating the source if needed.
    pub(crate) fn append(
        &self,
        name: &str,
        kind: SeriesKind,
        cell: SourceCell,
        points: &[SeriesPoint],
    ) {
        let _prof = crate::profile::scope(crate::profile::Subsystem::Series);
        let mut state = self.state.lock();
        let idx = match state.sources.iter().position(|s| s.name == name && s.kind == kind) {
            Some(i) => i,
            None => {
                state.sources.push(Source {
                    name: name.to_owned(),
                    kind,
                    cell,
                    last: 0,
                    points: Vec::new(),
                });
                state.sources.len() - 1
            }
        };
        state.total_points += points.len() as u64;
        for &p in points {
            state.sources[idx].points.push(p);
            if state.sources[idx].points.len() >= SERIES_CAPACITY {
                state.sources[idx].points = lttb(&state.sources[idx].points, SERIES_CAPACITY / 2);
            }
        }
    }

    /// Every source's recorded points, for [`crate::Registry::absorb`].
    pub(crate) fn export(&self) -> Vec<(String, SeriesKind, Vec<SeriesPoint>)> {
        self.state
            .lock()
            .sources
            .iter()
            .map(|s| (s.name.clone(), s.kind, s.points.clone()))
            .collect()
    }

    /// A point-in-time copy of all series, sorted by `(name, kind)`.
    pub(crate) fn snapshot(&self) -> SeriesSnapshot {
        let state = self.state.lock();
        let mut series: Vec<SeriesEntry> = state
            .sources
            .iter()
            .map(|s| SeriesEntry { name: s.name.clone(), kind: s.kind, points: s.points.clone() })
            .collect();
        series.sort_by(|a, b| (&a.name, a.kind).cmp(&(&b.name, b.kind)));
        SeriesSnapshot { cadence_us: self.cadence_us, total_points: state.total_points, series }
    }
}

/// Cloneable handle the scheduler drives; inert (`None`) unless series
/// sampling is enabled on the registry.
#[derive(Debug, Clone, Default)]
pub struct Sampler(pub(crate) Option<Arc<SeriesCore>>);

impl Sampler {
    /// Advances the sampling clock to `now_us`, taking a sample if a
    /// cadence boundary was crossed. One branch when disabled; one
    /// relaxed load between boundaries when enabled.
    #[inline]
    pub fn tick(&self, now_us: u64) {
        if let Some(core) = &self.0 {
            if now_us >= core.next_due.load(Relaxed) {
                core.sample(now_us);
            }
        }
    }

    /// Whether sampling is live behind this handle.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Marks the start of a new simulation sharing this sampler (sim
    /// clocks restart at zero); no-op when disabled.
    pub fn begin_segment(&self) {
        if let Some(core) = &self.0 {
            core.begin_segment();
        }
    }
}

/// One named series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesEntry {
    /// Instrument name the source samples.
    pub name: String,
    /// Sampling mode.
    pub kind: SeriesKind,
    /// Recorded points. Timestamps are non-decreasing within a segment; a
    /// decrease marks the start of the next simulation's segment.
    pub points: Vec<SeriesPoint>,
}

/// All series a registry recorded, in exportable form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesSnapshot {
    /// Sampling cadence, µs of simulated time.
    pub cadence_us: u64,
    /// Points pushed before compaction — sampling throughput.
    pub total_points: u64,
    /// Series sorted by `(name, kind)`.
    pub series: Vec<SeriesEntry>,
}

impl SeriesSnapshot {
    /// A series by name and kind.
    pub fn get(&self, name: &str, kind: SeriesKind) -> Option<&SeriesEntry> {
        self.series.iter().find(|s| s.name == name && s.kind == kind)
    }

    /// The snapshot as the `*.series.json` document.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|entry| {
                let points = entry
                    .points
                    .iter()
                    .map(|p| Json::Arr(vec![Json::from(p.t_us), Json::from(p.value)]))
                    .collect();
                Json::obj()
                    .field("name", entry.name.as_str())
                    .field("kind", entry.kind.name())
                    .field("points", Json::Arr(points))
            })
            .collect();
        Json::obj()
            .field("cadence_us", self.cadence_us)
            .field("total_points", self.total_points)
            .field("series", Json::Arr(series))
    }

    /// Parses a `*.series.json` document written by [`Self::to_json`].
    /// Returns `None` when the shape does not match.
    pub fn from_json(doc: &Json) -> Option<SeriesSnapshot> {
        let cadence_us = doc.get("cadence_us")?.as_f64()? as u64;
        let total_points = doc.get("total_points")?.as_f64()? as u64;
        let Json::Arr(items) = doc.get("series")? else { return None };
        let mut series = Vec::with_capacity(items.len());
        for item in items {
            let Json::Str(name) = item.get("name")? else { return None };
            let Json::Str(kind) = item.get("kind")? else { return None };
            let kind = SeriesKind::parse(kind)?;
            let Json::Arr(raw) = item.get("points")? else { return None };
            let mut points = Vec::with_capacity(raw.len());
            for p in raw {
                let Json::Arr(pair) = p else { return None };
                let (t, v) = (pair.first()?.as_f64()?, pair.get(1)?.as_f64()?);
                points.push(SeriesPoint { t_us: t as u64, value: v });
            }
            series.push(SeriesEntry { name: name.clone(), kind, points });
        }
        Some(SeriesSnapshot { cadence_us, total_points, series })
    }
}

/// Largest-triangle-three-buckets downsampling to at most `threshold`
/// points (Steinarsson 2013). Keeps the first and last points and, for
/// each interior bucket, the point forming the largest triangle with the
/// previously kept point and the next bucket's centroid. Output is a
/// subsequence of the input, so ordering (and within-segment timestamp
/// monotonicity) is preserved. Deterministic: pure f64 arithmetic, ties
/// resolved to the earliest candidate.
pub fn lttb(points: &[SeriesPoint], threshold: usize) -> Vec<SeriesPoint> {
    if threshold >= points.len() {
        return points.to_vec();
    }
    if threshold < 3 {
        let mut kept = vec![points[0]];
        if threshold >= 2 {
            kept.push(points[points.len() - 1]);
        }
        return kept;
    }
    let mut kept = Vec::with_capacity(threshold);
    kept.push(points[0]);
    // Interior points split into threshold-2 buckets of equal f64 width.
    let interior = (points.len() - 2) as f64;
    let buckets = (threshold - 2) as f64;
    let mut prev = points[0];
    for b in 0..threshold - 2 {
        let lo = 1 + (b as f64 * interior / buckets).floor() as usize;
        let hi = 1 + (((b + 1) as f64) * interior / buckets).floor() as usize;
        let hi = hi.max(lo + 1).min(points.len() - 1);
        // Centroid of the *next* bucket (the final point for the last one).
        let (nlo, nhi) = if b + 1 < threshold - 2 {
            let nlo = 1 + (((b + 1) as f64) * interior / buckets).floor() as usize;
            let nhi = (1 + (((b + 2) as f64) * interior / buckets).floor() as usize).max(nlo + 1);
            (nlo, nhi.min(points.len() - 1))
        } else {
            (points.len() - 1, points.len())
        };
        let n = (nhi - nlo).max(1) as f64;
        let (cx, cy) = points[nlo..nhi.max(nlo + 1)]
            .iter()
            .fold((0.0, 0.0), |(x, y), p| (x + p.t_us as f64, y + p.value));
        let (cx, cy) = (cx / n, cy / n);
        let mut best = points[lo];
        let mut best_area = -1.0f64;
        for &p in &points[lo..hi] {
            let area = ((prev.t_us as f64 - cx) * (p.value - prev.value)
                - (prev.t_us as f64 - p.t_us as f64) * (cy - prev.value))
                .abs();
            if area > best_area {
                best_area = area;
                best = p;
            }
        }
        kept.push(best);
        prev = best;
    }
    kept.push(points[points.len() - 1]);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn pts(n: usize) -> Vec<SeriesPoint> {
        (0..n)
            .map(|i| SeriesPoint { t_us: i as u64 * 1000, value: ((i * 37) % 101) as f64 })
            .collect()
    }

    #[test]
    fn lttb_small_inputs_pass_through() {
        let p = pts(5);
        assert_eq!(lttb(&p, 10), p);
        assert_eq!(lttb(&p, 5), p);
        let two = lttb(&p, 2);
        assert_eq!(two, vec![p[0], p[4]]);
        assert_eq!(lttb(&p, 1), vec![p[0]]);
    }

    #[test]
    fn lttb_downsamples_to_threshold_keeping_ends() {
        for n in [10usize, 100, 1000] {
            for threshold in [3usize, 7, 64] {
                let p = pts(n);
                let out = lttb(&p, threshold);
                assert_eq!(out.len(), threshold.min(n));
                assert_eq!(out[0], p[0], "first point kept");
                assert_eq!(*out.last().unwrap(), *p.last().unwrap(), "last point kept");
                assert!(
                    out.windows(2).all(|w| w[0].t_us < w[1].t_us),
                    "monotone timestamps (n={n}, threshold={threshold})"
                );
            }
        }
    }

    #[test]
    fn lttb_is_deterministic() {
        let p = pts(500);
        assert_eq!(lttb(&p, 50), lttb(&p, 50));
    }

    #[test]
    fn disabled_sampler_is_inert() {
        let off = Registry::disabled();
        off.enable_series(1000);
        off.series_gauge("g");
        let sampler = off.sampler();
        assert!(!sampler.is_enabled());
        sampler.tick(10_000);
        assert!(off.series_snapshot().series.is_empty());
        // Enabled registry without enable_series: same inertness.
        let on = Registry::enabled();
        on.series_gauge("g");
        assert!(!on.sampler().is_enabled());
        assert!(on.series_snapshot().series.is_empty());
    }

    #[test]
    fn sampler_snapshots_on_cadence_boundaries() {
        let reg = Registry::enabled();
        reg.enable_series(1000);
        let gauge = reg.gauge("depth");
        let counter = reg.counter("events");
        reg.series_gauge("depth");
        reg.series_counter("events");
        reg.series_rate("events");
        let sampler = reg.sampler();
        assert!(sampler.is_enabled());

        gauge.set(5);
        counter.add(10);
        sampler.tick(0); // boundary 0
        gauge.set(7);
        counter.add(10);
        sampler.tick(500); // between boundaries: no sample
        sampler.tick(1500); // boundary 1000
        sampler.tick(1700); // still boundary 1000: no sample

        let snap = reg.series_snapshot();
        assert_eq!(snap.cadence_us, 1000);
        let depth = snap.get("depth", SeriesKind::Gauge).unwrap();
        assert_eq!(
            depth.points,
            vec![SeriesPoint { t_us: 0, value: 5.0 }, SeriesPoint { t_us: 1000, value: 7.0 }]
        );
        let cum = snap.get("events", SeriesKind::Counter).unwrap();
        assert_eq!(cum.points[1].value, 20.0);
        let rate = snap.get("events", SeriesKind::Rate).unwrap();
        // First window covers one cadence (10 events / 1 ms), second the
        // 10 events landing between the two boundaries.
        assert_eq!(rate.points[0].value, 10.0 / 1e-3);
        assert_eq!(rate.points[1].value, 10.0 / 1e-3);
    }

    #[test]
    fn clock_jump_collapses_to_one_sample_with_averaged_rate() {
        let reg = Registry::enabled();
        reg.enable_series(1000);
        let counter = reg.counter("c");
        reg.series_rate("c");
        let sampler = reg.sampler();
        sampler.tick(0);
        counter.add(8);
        sampler.tick(4000); // four boundaries crossed at once
        let snap = reg.series_snapshot();
        let rate = snap.get("c", SeriesKind::Rate).unwrap();
        assert_eq!(rate.points.len(), 2, "one sample per jump, not per boundary");
        assert_eq!(rate.points[1].t_us, 4000);
        assert_eq!(rate.points[1].value, 8.0 / 4e-3, "rate averaged over the gap");
    }

    #[test]
    fn begin_segment_restarts_clock_and_rebases_rates() {
        let reg = Registry::enabled();
        reg.enable_series(1000);
        let counter = reg.counter("c");
        reg.series_rate("c");
        let sampler = reg.sampler();
        counter.add(5);
        sampler.tick(0);
        sampler.tick(2000);
        sampler.begin_segment();
        counter.add(3);
        sampler.tick(1000);
        let snap = reg.series_snapshot();
        let rate = snap.get("c", SeriesKind::Rate).unwrap();
        let ts: Vec<u64> = rate.points.iter().map(|p| p.t_us).collect();
        assert_eq!(ts, vec![0, 2000, 1000], "second segment restarts timestamps");
        assert_eq!(
            rate.points[2].value,
            3.0 / 1e-3,
            "rate counts only increments since the segment started"
        );
    }

    #[test]
    fn capacity_triggers_lttb_compaction() {
        let reg = Registry::enabled();
        reg.enable_series(10);
        let gauge = reg.gauge("g");
        reg.series_gauge("g");
        let sampler = reg.sampler();
        for i in 0..(SERIES_CAPACITY as u64 + 100) {
            gauge.set(i % 17);
            sampler.tick(i * 10);
        }
        let snap = reg.series_snapshot();
        let g = snap.get("g", SeriesKind::Gauge).unwrap();
        assert!(g.points.len() < SERIES_CAPACITY, "compacted below capacity");
        assert_eq!(g.points[0].t_us, 0, "first point survives compaction");
        assert!(
            g.points.windows(2).all(|w| w[0].t_us < w[1].t_us),
            "timestamps stay monotone through compaction"
        );
        assert_eq!(snap.total_points, SERIES_CAPACITY as u64 + 100, "pre-compaction count kept");
    }

    #[test]
    fn shard_mirrors_series_arming_and_absorb_appends_in_order() {
        let parent = Registry::enabled();
        parent.enable_series(1000);
        let mut expected = Vec::new();
        for task in 0..3u64 {
            let shard = parent.shard();
            let sampler = shard.sampler();
            assert!(sampler.is_enabled(), "shard mirrors series arming");
            let gauge = shard.gauge("depth");
            shard.series_gauge("depth");
            for step in 0..4u64 {
                gauge.set(task * 10 + step);
                sampler.tick(step * 1000);
                expected.push(SeriesPoint { t_us: step * 1000, value: (task * 10 + step) as f64 });
            }
            parent.absorb(&shard);
        }
        let snap = parent.series_snapshot();
        let depth = snap.get("depth", SeriesKind::Gauge).unwrap();
        assert_eq!(depth.points, expected, "shard points appended in absorb order");
        assert_eq!(snap.total_points, expected.len() as u64);
    }

    #[test]
    fn unarmed_shard_of_armed_parent_records_nothing_extra() {
        let parent = Registry::enabled();
        let shard = parent.shard();
        assert!(!shard.sampler().is_enabled(), "series was not armed");
        parent.absorb(&shard);
        assert!(parent.series_snapshot().series.is_empty());
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = Registry::enabled();
        reg.enable_series(500);
        reg.gauge("g").set(3);
        reg.counter("c").add(7);
        reg.series_gauge("g");
        reg.series_counter("c");
        reg.series_rate("c");
        let sampler = reg.sampler();
        sampler.tick(0);
        sampler.tick(600);
        let snap = reg.series_snapshot();
        let doc = snap.to_json();
        let parsed = crate::json::parse(&doc.to_pretty()).expect("valid json");
        let back = SeriesSnapshot::from_json(&parsed).expect("round-trip");
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_sorts_by_name_and_kind() {
        let reg = Registry::enabled();
        reg.enable_series(100);
        reg.series_rate("zeta");
        reg.series_counter("zeta");
        reg.series_gauge("alpha");
        reg.sampler().tick(0);
        let snap = reg.series_snapshot();
        let order: Vec<(&str, SeriesKind)> =
            snap.series.iter().map(|s| (s.name.as_str(), s.kind)).collect();
        assert_eq!(
            order,
            vec![
                ("alpha", SeriesKind::Gauge),
                ("zeta", SeriesKind::Counter),
                ("zeta", SeriesKind::Rate),
            ]
        );
    }
}
