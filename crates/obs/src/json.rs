//! A hand-rolled JSON document model and writer.
//!
//! The workspace has no serde_json; run artifacts are small and written
//! once per run, so a minimal tree-plus-writer is all that is needed.
//! Objects preserve insertion order, which keeps artifacts diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite floats serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values print without a fractional part, staying inside
        // the range JSON consumers can hold exactly in an f64.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` prints the shortest representation that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document produced by [`Json::to_compact`] /
/// [`Json::to_pretty`] (or any standard JSON text) back into a [`Json`]
/// tree. Intended for tests that validate written artifacts; numbers all
/// land in `f64`, so integers beyond 2^53 lose precision.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect "\uXXXX" for the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".to_owned());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("unpaired surrogate")?
                            };
                            out.push(c);
                            self.pos -= 1; // compensate for the += 1 below
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => unreachable!("loop above stops only at '\"' or '\\\\'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_owned())?;
        let n = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape '{s}'"))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let n: f64 = s.parse().map_err(|_| format!("bad number '{s}'"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(format!("non-finite number '{s}'"))
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(value: Option<T>) -> Json {
        value.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_round_structure() {
        let j = Json::obj()
            .field("name", "fig20")
            .field("count", 3u64)
            .field("ok", true)
            .field("items", vec![1.5f64, 2.0]);
        assert_eq!(j.to_compact(), r#"{"name":"fig20","count":3,"ok":true,"items":[1.5,2]}"#);
    }

    #[test]
    fn escaping_and_non_finite() {
        let j = Json::obj().field("s", "a\"b\\c\nd\u{1}").field("nan", f64::NAN);
        assert_eq!(j.to_compact(), "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"nan\":null}");
    }

    #[test]
    fn pretty_indents_and_terminates() {
        let j = Json::obj().field("a", Json::Arr(vec![Json::Num(1.0)]));
        assert_eq!(j.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn get_and_accessors() {
        let j = Json::obj().field("x", 4.25f64).field("s", "hi");
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(4.25));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("hi"));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_compact(), "{}");
        assert_eq!(Json::Arr(Vec::new()).to_compact(), "[]");
        assert_eq!(Json::obj().to_pretty(), "{}\n");
    }

    #[test]
    fn parse_accepts_all_value_kinds() {
        let j =
            parse(r#" {"a": [1, -2.5, 1e3], "b": null, "c": [true, false], "d": "x"} "#).unwrap();
        assert_eq!(
            j,
            Json::obj()
                .field("a", Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(1e3)]))
                .field("b", Json::Null)
                .field("c", vec![true, false])
                .field("d", "x")
        );
    }

    #[test]
    fn parse_decodes_escapes() {
        let j = parse(r#""a\"b\\c\nd\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(j, Json::Str("a\"b\\c\ndA😀".to_owned()));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "[1] x",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escaped_keys_round_trip() {
        let j = Json::obj()
            .field("quote\"key", 1u64)
            .field("tab\tkey", 2u64)
            .field("uni😀key", 3u64)
            .field("ctrl\u{2}key", "line\r\nbreak");
        for text in [j.to_compact(), j.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), j, "from {text:?}");
        }
    }

    #[test]
    fn deep_nesting_round_trips() {
        let mut j = Json::Num(7.0);
        for i in 0..200 {
            j = if i % 2 == 0 { Json::Arr(vec![j]) } else { Json::obj().field("d", j) };
        }
        assert_eq!(parse(&j.to_compact()).unwrap(), j);
        assert_eq!(parse(&j.to_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj()
            .field("s", "a\"b\\c\nd\u{1}")
            .field("n", 4.25f64)
            .field("big", 8_000_000_000_000_000u64)
            .field("arr", vec![1.5f64, 2.0])
            .field("nested", Json::obj().field("ok", true).field("none", Json::Null));
        assert_eq!(parse(&j.to_compact()).unwrap(), j);
        assert_eq!(parse(&j.to_pretty()).unwrap(), j);
    }
}
