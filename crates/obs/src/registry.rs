//! The metrics registry: named instruments, phase timers, and the event log
//! behind one cloneable handle.
//!
//! # Disabled mode
//!
//! [`Registry::disabled()`] holds no allocation at all. Instruments minted
//! from it are inert, and every operation on the registry or its handles
//! costs exactly one branch (`Option` check on an `Arc`). Code under
//! instrumentation therefore never needs `if obs.enabled()` guards.
//!
//! # Interning
//!
//! Instruments are interned by name: two `counter("x")` calls return handles
//! to the same cell, wherever they happen. Callers grab handles once and
//! update through them on hot paths; name lookup is the cold path.

use crate::digest::{Digest, DigestConfig, DigestCore, DigestSnapshot};
use crate::events::{EventLog, EventRecord, Level};
use crate::health::{Health, HealthSnapshot, HealthState};
use crate::json::Json;
use crate::metrics::{Counter, Gauge, GaugeCore, Histogram, HistogramCore, HistogramSnapshot};
use crate::profile::MemProbe;
use crate::series::{Sampler, SeriesCore, SeriesKind, SeriesSnapshot, SourceCell};
use crate::span::SpanGuard;
use crate::timeprof::{FrameTree, HandlerTimer, PhaseTiming, TimeProfCore, TimeProfSnapshot};
use crate::trace::{Tracer, TracerCore};
use parking_lot::Mutex;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<GaugeCore>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCore>)>>,
    spans: Arc<FrameTree>,
    events: Mutex<Option<Arc<EventLog>>>,
    tracer: Mutex<Option<Arc<TracerCore>>>,
    series: Mutex<Option<Arc<SeriesCore>>>,
    profile: Mutex<Option<ProfileConfig>>,
    timeprof: Mutex<Option<Arc<TimeProfCore>>>,
    digest: Mutex<Option<Arc<DigestCore>>>,
    health: Mutex<Option<Arc<HealthState>>>,
}

/// Arming parameters for the profiling structural probes; see
/// [`Registry::enable_profiling`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Simulated-time interval between allocation-spike judgements, µs.
    pub spike_cadence_us: u64,
    /// An interval allocating more than this multiple of the running
    /// median is a spike.
    pub spike_multiple: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            spike_cadence_us: crate::series::DEFAULT_CADENCE_US,
            spike_multiple: crate::profile::DEFAULT_SPIKE_MULTIPLE,
        }
    }
}

fn intern<T: Default>(table: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut table = table.lock();
    match table.iter().find(|(n, _)| n == name) {
        Some((_, cell)) => Arc::clone(cell),
        None => {
            let cell = Arc::new(T::default());
            table.push((name.to_owned(), Arc::clone(&cell)));
            cell
        }
    }
}

/// A cloneable handle to one run's metrics. See the module docs.
#[derive(Clone, Default)]
pub struct Registry(Option<Arc<Inner>>);

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "Registry(enabled)" } else { "Registry(disabled)" })
    }
}

impl Registry {
    /// A live registry.
    pub fn enabled() -> Registry {
        Registry(Some(Arc::new(Inner::default())))
    }

    /// The inert registry: every operation is a no-op behind one branch.
    pub fn disabled() -> Registry {
        Registry(None)
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The counter named `name` (inert handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.0.as_ref().map(|inner| intern(&inner.counters, name)))
    }

    /// The gauge named `name` (inert handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.0.as_ref().map(|inner| intern(&inner.gauges, name)))
    }

    /// The histogram named `name` (inert handle when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.0.as_ref().map(|inner| intern(&inner.histograms, name)))
    }

    /// Opens a phase timer; the scope it lives for is recorded under `name`,
    /// nested inside any enclosing span on this thread.
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.0 {
            None => SpanGuard::disabled(),
            Some(inner) => SpanGuard::enter(Arc::clone(&inner.spans), name),
        }
    }

    /// Attaches a ring-buffered event log accepting `min_level` and above,
    /// holding at most `capacity` events.
    pub fn enable_events(&self, min_level: Level, capacity: usize) {
        if let Some(inner) = &self.0 {
            *inner.events.lock() = Some(Arc::new(EventLog::new(min_level, capacity)));
        }
    }

    /// Records a structured event if an event log is attached and accepts
    /// `level`. `fields` is only built when the event will be kept.
    pub fn event(&self, level: Level, label: &str, fields: impl FnOnce() -> Json) {
        if let Some(inner) = &self.0 {
            let log = inner.events.lock().clone();
            if let Some(log) = log {
                if log.accepts(level) {
                    log.push(level, label, fields());
                }
            }
        }
    }

    /// Attaches the causal update tracer. Until this is called (and always
    /// on a disabled registry) [`Registry::tracer`] hands out inert tracers,
    /// so tracing follows the same opt-in gate as the event log.
    pub fn enable_tracing(&self) {
        if let Some(inner) = &self.0 {
            let mut slot = inner.tracer.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(TracerCore::default()));
            }
        }
    }

    /// The attached tracer (inert when disabled or tracing not enabled).
    pub fn tracer(&self) -> Tracer {
        Tracer(self.0.as_ref().and_then(|inner| inner.tracer.lock().clone()))
    }

    /// Attaches the sim-time series sampler with the given cadence (µs of
    /// simulated time). Until this is called (and always on a disabled
    /// registry) [`Registry::sampler`] hands out inert samplers and the
    /// `series_*` registration methods are no-ops — the same opt-in gate
    /// the event log and tracer use.
    pub fn enable_series(&self, cadence_us: u64) {
        if let Some(inner) = &self.0 {
            let mut slot = inner.series.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(SeriesCore::new(cadence_us)));
            }
        }
    }

    /// Arms the profiling structural probes: the scheduler's queue-depth
    /// log-histogram at pop time, per-`PacketKind` packet/byte accounting
    /// in the network, per-node state-size estimation in the simulator,
    /// and the allocation-spike probe ([`Registry::mem_probe`]). Like
    /// events/tracing/series this is an opt-in gate mirrored by
    /// [`Registry::shard`] — the probes record through ordinary interned
    /// instruments, so `--jobs N` merges bit-identically.
    ///
    /// This does *not* flip the process-global allocator attribution
    /// ([`crate::profile::set_enabled`]); binaries that installed
    /// [`crate::profile::ProfiledAlloc`] switch that separately.
    pub fn enable_profiling(&self, config: ProfileConfig) {
        if let Some(inner) = &self.0 {
            let mut slot = inner.profile.lock();
            if slot.is_none() {
                *slot = Some(config);
            }
        }
    }

    /// Whether profiling probes are armed.
    pub fn profiling_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.profile.lock().is_some())
    }

    /// The armed profiling configuration, if any.
    pub fn profile_config(&self) -> Option<ProfileConfig> {
        self.0.as_ref().and_then(|inner| *inner.profile.lock())
    }

    /// A fresh allocation-spike probe wired to this registry's
    /// `profile_mem_spikes` counter and tracer (inert unless profiling is
    /// armed). Each scheduler mints its own probe in `set_obs`, so probe
    /// state stays per-simulation while the instruments merge as usual.
    pub fn mem_probe(&self) -> MemProbe {
        match self.profile_config() {
            None => MemProbe::default(),
            Some(cfg) => MemProbe::armed(
                cfg.spike_cadence_us,
                cfg.spike_multiple,
                self.counter("profile_mem_spikes"),
                self.tracer(),
            ),
        }
    }

    /// Arms the hot-path time profiler: per-event-kind dispatch timers
    /// ([`Registry::handler_timer`]) and per-worker utilization accounting
    /// ([`Registry::record_worker_use`]) start recording, and
    /// [`Registry::timeprof_snapshot`] returns `Some`. Like the other
    /// opt-in gates this is mirrored by [`Registry::shard`] and merged in
    /// task order by [`Registry::absorb`]: dispatch *counts* and frame
    /// structure are bit-identical at any `--jobs`, while the nanosecond
    /// moments and worker stats are volatile wall-clock telemetry.
    pub fn enable_timeprof(&self) {
        if let Some(inner) = &self.0 {
            let mut slot = inner.timeprof.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(TimeProfCore::default()));
            }
        }
    }

    /// Whether the time profiler is armed.
    pub fn timeprof_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.timeprof.lock().is_some())
    }

    /// The dispatch timer labelled `label` (inert unless timeprof is
    /// armed). Handles are minted once per run — typically one per event
    /// or message kind — and started on each dispatch.
    pub fn handler_timer(&self, label: &str) -> HandlerTimer {
        match self.timeprof_core() {
            None => HandlerTimer::default(),
            Some(core) => core.handlers.timer(label),
        }
    }

    /// Accumulates one parallel map's per-worker utilization. No-op
    /// unless timeprof is armed.
    pub fn record_worker_use(&self, stats: &[crate::timeprof::WorkerUse]) {
        if let Some(core) = self.timeprof_core() {
            core.record_workers(stats);
        }
    }

    /// A point-in-time copy of the time profiler's state (`None` when
    /// disabled or timeprof not armed). Frames always come from the span
    /// tree, which records whenever the registry is enabled.
    pub fn timeprof_snapshot(&self) -> Option<TimeProfSnapshot> {
        let inner = self.0.as_ref()?;
        let core = inner.timeprof.lock().clone()?;
        Some(TimeProfSnapshot {
            frames: inner.spans.snapshot(),
            handlers: core.handlers.snapshot(),
            workers: core.workers_snapshot(),
        })
    }

    fn timeprof_core(&self) -> Option<Arc<TimeProfCore>> {
        self.0.as_ref().and_then(|inner| inner.timeprof.lock().clone())
    }

    /// Arms the determinism audit trail: [`Registry::digest`] handles start
    /// folding, [`Registry::digest_snapshot`] returns `Some`, and
    /// [`Registry::shard`] arms shards with the same configuration — each
    /// shard records its own segment chain, absorbed in task order, so the
    /// run-level chain is bit-identical at any `--jobs`. Like the other
    /// opt-in gates, idempotent: the first configuration wins.
    pub fn enable_digest(&self, config: DigestConfig) {
        if let Some(inner) = &self.0 {
            let mut slot = inner.digest.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(DigestCore::new(config)));
            }
        }
    }

    /// Whether the digest audit trail is armed.
    pub fn digest_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.digest.lock().is_some())
    }

    /// The armed digest configuration, if any.
    pub fn digest_config(&self) -> Option<DigestConfig> {
        self.digest_core().map(|core| core.config())
    }

    /// A fold handle on the audit trail (inert when disabled or digest not
    /// armed). Fold points grab the handle once in their `set_obs` and fold
    /// through it on the hot path.
    pub fn digest(&self) -> Digest {
        Digest::from_core(self.digest_core())
    }

    /// The run-level audit trail so far (`None` when disabled or digest not
    /// armed). Non-destructive.
    pub fn digest_snapshot(&self) -> Option<DigestSnapshot> {
        Some(self.digest_core()?.snapshot())
    }

    fn digest_core(&self) -> Option<Arc<DigestCore>> {
        self.0.as_ref().and_then(|inner| inner.digest.lock().clone())
    }

    /// Checkpoint view of the digest's currently-recording local segment as
    /// `(events, chain, stride, checkpoints)`, or `None` when disabled or
    /// digest not armed. Together with [`Registry::restore_digest_local`]
    /// this lets a restored simulation continue the saved run's chain, so a
    /// restore-then-run audit trail is bit-identical to the straight run.
    pub fn digest_local_state(&self) -> Option<(u64, u64, u64, Vec<crate::digest::Checkpoint>)> {
        Some(self.digest_core()?.export_local())
    }

    /// Overwrites the digest's local segment with state captured by
    /// [`Registry::digest_local_state`]. Returns `false` (and does nothing)
    /// when disabled or digest not armed.
    pub fn restore_digest_local(
        &self,
        events: u64,
        chain: u64,
        stride: u64,
        checkpoints: Vec<crate::digest::Checkpoint>,
    ) -> bool {
        match self.digest_core() {
            Some(core) => {
                core.restore_local(events, chain, stride, checkpoints);
                true
            }
            None => false,
        }
    }

    /// Arms the run-health counters: [`Registry::health`] handles start
    /// recording and [`Registry::health_snapshot`] returns `Some`. Health
    /// is wall-clock telemetry — shards *share* the parent's state (live
    /// aggregation across workers) and [`Registry::absorb`] has nothing to
    /// fold, so arming it never perturbs determinism artifacts.
    pub fn enable_health(&self) {
        if let Some(inner) = &self.0 {
            let mut slot = inner.health.lock();
            if slot.is_none() {
                *slot = Some(Arc::new(HealthState::default()));
            }
        }
    }

    /// Whether run-health counters are armed.
    pub fn health_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|inner| inner.health.lock().is_some())
    }

    /// A health handle (inert when disabled or health not armed).
    pub fn health(&self) -> Health {
        Health::from_state(self.0.as_ref().and_then(|inner| inner.health.lock().clone()))
    }

    /// A point-in-time reading of the health counters (`None` when disabled
    /// or health not armed).
    pub fn health_snapshot(&self) -> Option<HealthSnapshot> {
        let state = self.0.as_ref().and_then(|inner| inner.health.lock().clone())?;
        Some(HealthSnapshot::read(&state))
    }

    /// The attached sampler (inert when disabled or series not enabled).
    pub fn sampler(&self) -> Sampler {
        Sampler(self.0.as_ref().and_then(|inner| inner.series.lock().clone()))
    }

    /// Registers a series source sampling the gauge `name`'s level on
    /// every cadence boundary. No-op unless series sampling is enabled.
    pub fn series_gauge(&self, name: &str) {
        if let Some((inner, series)) = self.series_core() {
            series.add_source(
                name,
                SeriesKind::Gauge,
                SourceCell::Gauge(intern(&inner.gauges, name)),
            );
        }
    }

    /// Registers a series source sampling the counter `name`'s cumulative
    /// value. No-op unless series sampling is enabled.
    pub fn series_counter(&self, name: &str) {
        if let Some((inner, series)) = self.series_core() {
            series.add_source(
                name,
                SeriesKind::Counter,
                SourceCell::Counter(intern(&inner.counters, name)),
            );
        }
    }

    /// Registers a series source deriving a per-second rate from counter
    /// `name`'s deltas between samples. No-op unless series sampling is
    /// enabled.
    pub fn series_rate(&self, name: &str) {
        if let Some((inner, series)) = self.series_core() {
            series.add_source(
                name,
                SeriesKind::Rate,
                SourceCell::Counter(intern(&inner.counters, name)),
            );
        }
    }

    /// A point-in-time copy of every recorded series (empty when disabled
    /// or series not enabled).
    pub fn series_snapshot(&self) -> SeriesSnapshot {
        self.0
            .as_ref()
            .and_then(|inner| inner.series.lock().clone())
            .map(|core| core.snapshot())
            .unwrap_or_default()
    }

    fn series_core(&self) -> Option<(&Arc<Inner>, Arc<SeriesCore>)> {
        let inner = self.0.as_ref()?;
        let series = inner.series.lock().clone()?;
        Some((inner, series))
    }

    /// Removes and returns buffered events (empty when disabled or no log).
    pub fn drain_events(&self) -> Vec<EventRecord> {
        self.0
            .as_ref()
            .and_then(|inner| inner.events.lock().clone())
            .map(|log| log.drain())
            .unwrap_or_default()
    }

    /// Events evicted from the ring so far.
    pub fn dropped_events(&self) -> u64 {
        self.0
            .as_ref()
            .and_then(|inner| inner.events.lock().clone())
            .map(|log| log.dropped())
            .unwrap_or(0)
    }

    /// A point-in-time copy of every instrument, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.0 else {
            return MetricsSnapshot::default();
        };
        use std::sync::atomic::Ordering::Relaxed;
        let mut counters: Vec<(String, u64)> =
            inner.counters.lock().iter().map(|(n, c)| (n.clone(), c.load(Relaxed))).collect();
        counters.sort();
        let mut gauges: Vec<(String, GaugeSnapshot)> = inner
            .gauges
            .lock()
            .iter()
            .map(|(n, g)| {
                (
                    n.clone(),
                    GaugeSnapshot {
                        value: g.value.load(Relaxed),
                        high_water: g.high_water.load(Relaxed),
                    },
                )
            })
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = inner
            .histograms
            .lock()
            .iter()
            .map(|(n, h)| (n.clone(), Histogram(Some(Arc::clone(h))).snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, histograms, spans: inner.spans.snapshot() }
    }

    /// A fresh registry configured like this one — same enabled state, same
    /// event-log arming (level and capacity), same tracing arming — but with
    /// empty instruments. Parallel tasks record into their own shard and the
    /// runner folds shards back with [`Registry::absorb`] in task order, so
    /// the merged result is bit-identical to recording everything into one
    /// registry sequentially. Disabled registries shard to disabled handles,
    /// preserving zero overhead when observability is off.
    pub fn shard(&self) -> Registry {
        let Some(inner) = &self.0 else {
            return Registry::disabled();
        };
        let shard = Registry::enabled();
        if let Some(log) = inner.events.lock().as_ref() {
            shard.enable_events(log.min_level(), log.capacity());
        }
        if inner.tracer.lock().is_some() {
            shard.enable_tracing();
        }
        if let Some(series) = inner.series.lock().as_ref() {
            shard.enable_series(series.cadence_us);
        }
        if let Some(profile) = *inner.profile.lock() {
            shard.enable_profiling(profile);
        }
        if inner.timeprof.lock().is_some() {
            shard.enable_timeprof();
        }
        if let Some(digest) = inner.digest.lock().as_ref() {
            // Fresh segment chain, same configuration.
            shard.enable_digest(digest.config());
        }
        if let Some(health) = inner.health.lock().as_ref() {
            // Shared state: health aggregates live across workers.
            if let Some(shard_inner) = &shard.0 {
                *shard_inner.health.lock() = Some(Arc::clone(health));
            }
        }
        shard
    }

    /// Folds everything `shard` recorded into this registry: counters add,
    /// gauges take the shard's last level (skipping gauges the shard never
    /// touched) and raise the high-water mark, histograms merge, phase
    /// timings accumulate, events renumber onto this log's sequence, and
    /// traces renumber past everything already recorded. Instruments keep
    /// shard-side first-use order, so absorbing shards in task order yields
    /// exactly the state of a single registry that ran the tasks in order.
    ///
    /// No-op when either side is disabled or `shard` is this registry.
    pub fn absorb(&self, shard: &Registry) {
        use std::sync::atomic::Ordering::Relaxed;
        let (Some(inner), Some(other)) = (&self.0, &shard.0) else { return };
        if Arc::ptr_eq(inner, other) {
            return;
        }
        for (name, cell) in other.counters.lock().iter() {
            self.counter(name).add(cell.load(Relaxed));
        }
        for (name, core) in other.gauges.lock().iter() {
            let (value, high) = (core.value.load(Relaxed), core.high_water.load(Relaxed));
            if value == 0 && high == 0 {
                continue; // interned but never moved: don't clobber ours
            }
            if let Some(mine) = self.gauge(name).0 {
                mine.value.store(value, Relaxed);
                mine.high_water.fetch_max(high, Relaxed);
            }
        }
        for (name, core) in other.histograms.lock().iter() {
            if let Some(mine) = self.histogram(name).0 {
                let snap = Histogram(Some(Arc::clone(core))).snapshot();
                crate::metrics::merge_into_core(&mine, &snap);
            }
        }
        for (path, timing) in other.spans.snapshot() {
            inner.spans.absorb(&path, timing);
        }
        let shard_timeprof = other.timeprof.lock().clone();
        if let Some(shard_timeprof) = shard_timeprof {
            let mine = inner.timeprof.lock().clone();
            if let Some(mine) = mine {
                mine.absorb(&shard_timeprof);
            }
        }
        let shard_log = other.events.lock().clone();
        if let Some(shard_log) = shard_log {
            let mine = inner.events.lock().clone();
            if let Some(mine) = mine {
                mine.absorb(shard_log.drain(), shard_log.dropped());
            }
        }
        let shard_tracer = Tracer(other.tracer.lock().clone());
        if shard_tracer.is_enabled() {
            Tracer(inner.tracer.lock().clone()).absorb(&shard_tracer.store());
        }
        let shard_digest = other.digest.lock().clone();
        if let Some(shard_digest) = shard_digest {
            let mine = inner.digest.lock().clone();
            if let Some(mine) = mine {
                mine.absorb(&shard_digest);
            }
        }
        // Health needs no absorb: shards share the parent's state.
        let shard_series = other.series.lock().clone();
        if let Some(shard_series) = shard_series {
            let mine = inner.series.lock().clone();
            if let Some(mine) = mine {
                // Shard points replay through the normal push path against
                // cells interned in *this* registry, so a later absorb or
                // live sample cannot alias shard storage.
                for (name, kind, points) in shard_series.export() {
                    let cell = match kind {
                        SeriesKind::Gauge => SourceCell::Gauge(intern(&inner.gauges, &name)),
                        SeriesKind::Counter | SeriesKind::Rate => {
                            SourceCell::Counter(intern(&inner.counters, &name))
                        }
                    };
                    mine.append(&name, kind, cell, &points);
                }
            }
        }
    }
}

/// Final value and high-water mark of a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: u64,
    /// Highest level observed.
    pub high_water: u64,
}

/// Everything a registry recorded, in exportable form.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, GaugeSnapshot)>,
    /// Histogram contents, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Span timings in first-entered order (wall-clock, non-deterministic).
    pub spans: Vec<(String, PhaseTiming)>,
}

impl MetricsSnapshot {
    /// The value of a counter, or 0 if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The metrics (not spans) as a JSON object.
    pub fn metrics_json(&self) -> Json {
        let counters = self.counters.iter().fold(Json::obj(), |obj, (n, v)| obj.field(n, *v));
        let gauges = self.gauges.iter().fold(Json::obj(), |obj, (n, g)| {
            obj.field(n, Json::obj().field("value", g.value).field("high_water", g.high_water))
        });
        let histograms = self.histograms.iter().fold(Json::obj(), |obj, (n, h)| {
            let mut j = Json::obj()
                .field("count", h.count)
                .field("sum", h.sum)
                .field("mean", h.mean())
                .field("min", h.count.gt(&0).then_some(h.min))
                .field("max", h.count.gt(&0).then_some(h.max))
                .field("p50", h.quantile(0.50))
                .field("p95", h.quantile(0.95))
                .field("p99", h.quantile(0.99));
            // Only the occupied tail of the bucket array, as (index, count)
            // pairs — 64 mostly-zero entries per histogram add noise.
            let occupied: Vec<Json> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| Json::Arr(vec![Json::from(i), Json::from(c)]))
                .collect();
            j = j.field("buckets", Json::Arr(occupied));
            obj.field(n, j)
        });
        Json::obj()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }

    /// The span timings as a JSON array (in first-entered order).
    pub fn spans_json(&self) -> Json {
        Json::Arr(
            self.spans
                .iter()
                .map(|(path, t)| {
                    Json::obj()
                        .field("phase", path.as_str())
                        .field("count", t.count)
                        .field("total_s", t.total_secs())
                        .field("self_s", t.self_secs())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_cells() {
        let reg = Registry::enabled();
        reg.counter("events").add(2);
        reg.counter("events").add(3);
        assert_eq!(reg.counter("events").get(), 5);
        assert_eq!(reg.snapshot().counter("events"), 5);
        assert_eq!(reg.snapshot().counter("never"), 0);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        reg.counter("x").inc();
        reg.gauge("g").add(10);
        reg.histogram("h").record(1.0);
        let _span = reg.span("phase");
        reg.enable_events(Level::Debug, 8);
        reg.event(Level::Warn, "e", || Json::Null);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(reg.drain_events().is_empty());
    }

    #[test]
    fn snapshot_sorts_names() {
        let reg = Registry::enabled();
        reg.counter("zeta").inc();
        reg.counter("alpha").inc();
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn event_fields_lazily_built() {
        let reg = Registry::enabled();
        // No log attached: closure must not run.
        reg.event(Level::Warn, "e", || panic!("built without a log"));
        reg.enable_events(Level::Info, 8);
        // Below threshold: closure must not run.
        reg.event(Level::Debug, "e", || panic!("built below threshold"));
        reg.event(Level::Info, "kept", || Json::obj().field("k", 1u64));
        assert_eq!(reg.drain_events().len(), 1);
    }

    #[test]
    fn spans_aggregate_under_paths() {
        let reg = Registry::enabled();
        {
            let _outer = reg.span("run");
            let _inner = reg.span("observe");
        }
        let spans = reg.snapshot().spans;
        let paths: Vec<&str> = spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["run/observe", "run"]);
    }

    #[test]
    fn tracing_gated_behind_enable() {
        let reg = Registry::enabled();
        assert!(!reg.tracer().is_enabled(), "tracing is opt-in even when enabled");
        reg.enable_tracing();
        let t = reg.tracer();
        assert!(t.is_enabled());
        assert!(t.publish(1, 0, 0, "s").is_active());
        assert_eq!(reg.tracer().store().traces.len(), 1, "handles share one core");
        let off = Registry::disabled();
        off.enable_tracing();
        assert!(!off.tracer().is_enabled());
        assert!(!off.tracer().publish(1, 0, 0, "s").is_active());
    }

    /// Drives one "task" worth of recording against `reg`, salted so the
    /// contributions of different tasks are distinguishable after merging.
    fn record_task(reg: &Registry, salt: u64) {
        reg.counter("polls").add(salt);
        reg.counter("updates").inc();
        reg.gauge("inflight").set(salt);
        reg.histogram("lag_s").record(salt as f64 * 0.5);
        reg.histogram("lag_s").record(salt as f64 * 0.25);
        {
            let _g = reg.span("task");
        }
        reg.event(Level::Info, "task_done", || Json::obj().field("salt", salt));
        reg.tracer().publish(salt as u32, 0, salt * 100, "shard");
    }

    /// The shard/absorb contract: shards absorbed in task order leave the
    /// parent with exactly the state of one registry driven sequentially
    /// (wall-clock span durations excepted — their counts and paths match).
    #[test]
    fn absorbing_shards_in_order_matches_sequential_recording() {
        let serial = Registry::enabled();
        serial.enable_events(Level::Info, 8);
        serial.enable_tracing();
        let parallel = serial.shard();
        for salt in [3u64, 5, 9] {
            record_task(&serial, salt);
            let shard = parallel.shard();
            record_task(&shard, salt);
            parallel.absorb(&shard);
        }

        let (a, b) = (serial.snapshot(), parallel.snapshot());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        assert_eq!(a.histograms, b.histograms);
        let phases = |s: &MetricsSnapshot| {
            s.spans.iter().map(|(p, t)| (p.clone(), t.count)).collect::<Vec<_>>()
        };
        assert_eq!(phases(&a), phases(&b));

        let fmt = |e: Vec<EventRecord>| {
            e.into_iter().map(|r| r.to_json().to_compact()).collect::<Vec<_>>()
        };
        assert_eq!(fmt(serial.drain_events()), fmt(parallel.drain_events()));
        assert_eq!(serial.tracer().store(), parallel.tracer().store());
    }

    #[test]
    fn shard_mirrors_arming_and_absorb_carries_event_drops() {
        let reg = Registry::enabled();
        reg.enable_events(Level::Warn, 2);
        let shard = reg.shard();
        assert!(!shard.tracer().is_enabled(), "tracing was not armed");
        shard.event(Level::Info, "below", || Json::Null);
        for i in 0..3u64 {
            shard.event(Level::Warn, "kept", || Json::obj().field("i", i));
        }
        reg.absorb(&shard);
        assert_eq!(reg.dropped_events(), 1, "shard-side eviction carries over");
        assert_eq!(reg.drain_events().len(), 2);
    }

    #[test]
    fn absorb_keeps_untouched_shard_gauges_from_clobbering() {
        let reg = Registry::enabled();
        reg.gauge("level").set(7);
        let shard = reg.shard();
        let _ = shard.gauge("level"); // interned but never moved
        shard.counter("polls").inc();
        reg.absorb(&shard);
        assert_eq!(reg.gauge("level").get(), 7);
        let active = reg.shard();
        active.gauge("level").set(3);
        reg.absorb(&active);
        assert_eq!(reg.gauge("level").get(), 3, "a touched shard gauge wins");
        assert_eq!(reg.gauge("level").high_water(), 7, "high-water only rises");
    }

    #[test]
    fn disabled_registries_shard_and_absorb_inertly() {
        let off = Registry::disabled();
        let shard = off.shard();
        assert!(!shard.is_enabled());
        shard.counter("x").inc();
        off.absorb(&shard);
        assert!(off.snapshot().counters.is_empty());

        let on = Registry::enabled();
        on.counter("x").inc();
        on.absorb(&off); // disabled shard: no-op
        on.absorb(&on); // self-absorb: guarded no-op, not a double count
        assert_eq!(on.snapshot().counter("x"), 1);
    }

    #[test]
    fn timeprof_gated_behind_enable_and_mirrored_by_shard() {
        let reg = Registry::enabled();
        assert!(!reg.timeprof_enabled(), "timeprof is opt-in even when enabled");
        assert!(reg.timeprof_snapshot().is_none());
        drop(reg.handler_timer("ev_publish").start()); // inert before arming
        reg.enable_timeprof();
        drop(reg.handler_timer("ev_publish").start());
        let shard = reg.shard();
        assert!(shard.timeprof_enabled(), "shard mirrors the arming");
        drop(shard.handler_timer("ev_publish").start());
        drop(shard.handler_timer("ev_probe").start());
        shard.record_worker_use(&[crate::timeprof::WorkerUse {
            worker: 0,
            busy_ns: 10,
            tasks: 2,
            ..Default::default()
        }]);
        reg.absorb(&shard);
        let snap = reg.timeprof_snapshot().expect("armed");
        let labels: Vec<(&str, u64)> =
            snap.handlers.iter().map(|(n, h)| (n.as_str(), h.count)).collect();
        assert_eq!(labels, [("ev_probe", 1), ("ev_publish", 2)], "pre-arming start dropped");
        assert_eq!(snap.workers.len(), 1);
        assert_eq!(snap.workers[0].tasks, 2);

        let off = Registry::disabled();
        off.enable_timeprof();
        assert!(!off.timeprof_enabled());
        assert!(off.timeprof_snapshot().is_none());
    }

    #[test]
    fn digest_gated_behind_enable_and_sharded_per_segment() {
        use crate::digest::DigestConfig;
        let reg = Registry::enabled();
        assert!(!reg.digest_enabled(), "digest is opt-in even when enabled");
        assert!(reg.digest_snapshot().is_none());
        reg.digest().fold("ev", 0, 1, &[]); // inert before arming
        reg.enable_digest(DigestConfig::default());
        assert!(reg.digest_enabled());
        assert_eq!(reg.digest_snapshot().unwrap().events, 0, "pre-arming fold dropped");

        // Two shards, each one segment; absorb order decides segment order.
        let s1 = reg.shard();
        assert!(s1.digest_enabled(), "shard mirrors the arming");
        s1.digest().fold("a", 1, 10, &[7]);
        let s2 = reg.shard();
        s2.digest().fold("b", 2, 20, &[8]);
        reg.absorb(&s1);
        reg.absorb(&s2);
        let snap = reg.digest_snapshot().unwrap();
        assert_eq!(snap.events, 2);
        assert_eq!(snap.segments.len(), 2);

        // A sequential registry absorbing identical shards in the same
        // order produces the identical run chain.
        let reg2 = Registry::enabled();
        reg2.enable_digest(DigestConfig::default());
        let t1 = reg2.shard();
        t1.digest().fold("a", 1, 10, &[7]);
        let t2 = reg2.shard();
        t2.digest().fold("b", 2, 20, &[8]);
        reg2.absorb(&t1);
        reg2.absorb(&t2);
        assert_eq!(reg2.digest_snapshot().unwrap().chain, snap.chain);

        let off = Registry::disabled();
        off.enable_digest(DigestConfig::default());
        assert!(!off.digest_enabled());
        assert!(off.digest_snapshot().is_none());
    }

    #[test]
    fn health_shards_share_live_state() {
        let reg = Registry::enabled();
        assert!(!reg.health_enabled(), "health is opt-in even when enabled");
        reg.health().tick(1); // inert before arming
        reg.enable_health();
        let shard = reg.shard();
        assert!(shard.health_enabled());
        shard.health().tick(42);
        // Live before any absorb: shards write the parent's state directly.
        let snap = reg.health_snapshot().unwrap();
        assert_eq!(snap.events, 1);
        assert_eq!(snap.sim_time_us, 42);
        reg.absorb(&shard); // no double counting
        assert_eq!(reg.health_snapshot().unwrap().events, 1);
    }

    #[test]
    fn metrics_json_shape() {
        let reg = Registry::enabled();
        reg.counter("c").add(2);
        reg.gauge("g").set(4);
        reg.histogram("h").record(0.5);
        let j = reg.snapshot().metrics_json();
        assert_eq!(j.get("counters").and_then(|c| c.get("c")).and_then(Json::as_f64), Some(2.0));
        let g = j.get("gauges").and_then(|g| g.get("g")).unwrap();
        assert_eq!(g.get("high_water").and_then(Json::as_f64), Some(4.0));
        let h = j.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(1.0));
    }
}
