//! Scoped phase timers.
//!
//! `registry.span("build_tree")` returns a guard; when it drops, the elapsed
//! wall time is folded into the registry under the span's *path* — nested
//! spans on the same thread compose their names with `/`, so a `flush`
//! opened under `build_tree` records as `build_tree/flush`.
//!
//! Timing is observation-only (wall clock, never fed back into simulation
//! state), so instrumented and uninstrumented runs stay bit-identical.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// The stack of open span paths on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated timings per span path.
#[derive(Debug, Default)]
pub(crate) struct SpanRecorder {
    /// `path -> (invocations, total nanoseconds)`.
    totals: Mutex<Vec<(String, PhaseTiming)>>,
}

/// Aggregate timing of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTiming {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u128,
}

impl PhaseTiming {
    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

impl SpanRecorder {
    fn record(&self, path: String, elapsed_ns: u128) {
        let mut totals = self.totals.lock();
        match totals.iter_mut().find(|(p, _)| *p == path) {
            Some((_, t)) => {
                t.count += 1;
                t.total_ns += elapsed_ns;
            }
            None => totals.push((path, PhaseTiming { count: 1, total_ns: elapsed_ns })),
        }
    }

    /// Folds a shard's aggregate for one path into this recorder, adding
    /// both the entry count and the accumulated time. Absorbing shard
    /// snapshots in task order keeps first-entered path order deterministic.
    pub(crate) fn absorb(&self, path: &str, timing: PhaseTiming) {
        let mut totals = self.totals.lock();
        match totals.iter_mut().find(|(p, _)| p == path) {
            Some((_, t)) => {
                t.count += timing.count;
                t.total_ns += timing.total_ns;
            }
            None => totals.push((path.to_owned(), timing)),
        }
    }

    /// Paths and timings in first-entered order.
    pub(crate) fn snapshot(&self) -> Vec<(String, PhaseTiming)> {
        self.totals.lock().clone()
    }
}

/// A detached span-nesting context; restores the previous one on drop.
#[derive(Debug)]
#[must_use = "dropping immediately re-attaches the previous span context"]
pub struct DetachedSpans {
    saved: Vec<String>,
}

/// Detaches the current thread's span-nesting context until the guard
/// drops: spans entered meanwhile record as top-level paths. Use when
/// recording into a shard registry that will be absorbed into a parent —
/// shard paths must not inherit the spawning thread's open spans, or
/// inline (serial) task execution would nest where worker threads don't.
pub fn detach_spans() -> DetachedSpans {
    DetachedSpans { saved: SPAN_STACK.with(|s| std::mem::take(&mut *s.borrow_mut())) }
}

impl Drop for DetachedSpans {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| *s.borrow_mut() = std::mem::take(&mut self.saved));
    }
}

/// An open phase timer; records on drop.
#[must_use = "a span measures the scope it is alive for"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    recorder: Arc<SpanRecorder>,
    path: String,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    pub(crate) fn enter(recorder: Arc<SpanRecorder>, name: &str) -> SpanGuard {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_owned(),
            };
            stack.push(path.clone());
            path
        });
        SpanGuard { inner: Some(OpenSpan { recorder, path, start: Instant::now() }) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            let elapsed = open.start.elapsed().as_nanos();
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Drop order can be violated by mem::forget games; recover by
                // popping to this span's frame rather than panicking.
                if let Some(pos) = stack.iter().rposition(|p| *p == open.path) {
                    stack.truncate(pos);
                }
            });
            open.recorder.record(open.path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_composes_paths() {
        let rec = Arc::new(SpanRecorder::default());
        {
            let _outer = SpanGuard::enter(Arc::clone(&rec), "outer");
            for _ in 0..3 {
                let _inner = SpanGuard::enter(Arc::clone(&rec), "inner");
            }
        }
        let snap = rec.snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["outer/inner", "outer"]);
        assert_eq!(snap[0].1.count, 3);
        assert_eq!(snap[1].1.count, 1);
    }

    #[test]
    fn sibling_after_nested_is_top_level() {
        let rec = Arc::new(SpanRecorder::default());
        {
            let _a = SpanGuard::enter(Arc::clone(&rec), "a");
        }
        {
            let _b = SpanGuard::enter(Arc::clone(&rec), "b");
        }
        let paths: Vec<String> = rec.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["a", "b"]);
    }

    #[test]
    fn detaching_makes_spans_top_level_and_restores() {
        let rec = Arc::new(SpanRecorder::default());
        {
            let _outer = SpanGuard::enter(Arc::clone(&rec), "outer");
            {
                let _detached = detach_spans();
                let _task = SpanGuard::enter(Arc::clone(&rec), "task");
            }
            let _inner = SpanGuard::enter(Arc::clone(&rec), "inner");
        }
        let paths: Vec<String> = rec.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["task", "outer/inner", "outer"]);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let g = SpanGuard::disabled();
        drop(g);
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}
