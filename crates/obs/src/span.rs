//! Scoped phase timers.
//!
//! `registry.span("build_tree")` returns a guard; when it drops, the elapsed
//! wall time is folded into the registry under the span's *path* — nested
//! spans on the same thread compose their names with `/`, so a `flush`
//! opened under `build_tree` records as `build_tree/flush`.
//!
//! Recording is backed by the hierarchical frame tree in
//! [`crate::timeprof`]: paths are interned to frame ids on first entry, so
//! the hot enter/exit path performs no allocation and no scan over
//! previously recorded paths, and each frame tracks self time (children
//! attributed to parents) alongside its total.
//!
//! Timing is observation-only (wall clock, never fed back into simulation
//! state), so instrumented and uninstrumented runs stay bit-identical.

use crate::timeprof::{self, FrameTree, StackEntry};
use std::sync::Arc;
use std::time::Instant;

/// A detached span-nesting context; restores the previous one on drop.
#[derive(Debug)]
#[must_use = "dropping immediately re-attaches the previous span context"]
pub struct DetachedSpans {
    saved: Vec<StackEntry>,
}

/// Detaches the current thread's span-nesting context until the guard
/// drops: spans entered meanwhile record as top-level paths. Use when
/// recording into a shard registry that will be absorbed into a parent —
/// shard paths must not inherit the spawning thread's open spans, or
/// inline (serial) task execution would nest where worker threads don't.
pub fn detach_spans() -> DetachedSpans {
    DetachedSpans { saved: timeprof::take_stack() }
}

impl Drop for DetachedSpans {
    fn drop(&mut self) {
        timeprof::restore_stack(std::mem::take(&mut self.saved));
    }
}

/// An open phase timer; records on drop.
#[must_use = "a span measures the scope it is alive for"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    tree: Arc<FrameTree>,
    frame: u32,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn disabled() -> SpanGuard {
        SpanGuard { inner: None }
    }

    pub(crate) fn enter(tree: Arc<FrameTree>, name: &str) -> SpanGuard {
        let frame = tree.enter(name);
        SpanGuard { inner: Some(OpenSpan { tree, frame, start: Instant::now() }) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.inner.take() {
            let elapsed = open.start.elapsed().as_nanos();
            open.tree.exit(open.frame, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_composes_paths() {
        let rec = Arc::new(FrameTree::default());
        {
            let _outer = SpanGuard::enter(Arc::clone(&rec), "outer");
            for _ in 0..3 {
                let _inner = SpanGuard::enter(Arc::clone(&rec), "inner");
            }
        }
        let snap = rec.snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["outer/inner", "outer"]);
        assert_eq!(snap[0].1.count, 3);
        assert_eq!(snap[1].1.count, 1);
        assert!(snap[1].1.self_ns <= snap[1].1.total_ns);
    }

    #[test]
    fn sibling_after_nested_is_top_level() {
        let rec = Arc::new(FrameTree::default());
        {
            let _a = SpanGuard::enter(Arc::clone(&rec), "a");
        }
        {
            let _b = SpanGuard::enter(Arc::clone(&rec), "b");
        }
        let paths: Vec<String> = rec.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["a", "b"]);
    }

    #[test]
    fn detaching_makes_spans_top_level_and_restores() {
        let rec = Arc::new(FrameTree::default());
        {
            let _outer = SpanGuard::enter(Arc::clone(&rec), "outer");
            {
                let _detached = detach_spans();
                let _task = SpanGuard::enter(Arc::clone(&rec), "task");
            }
            let _inner = SpanGuard::enter(Arc::clone(&rec), "inner");
        }
        let paths: Vec<String> = rec.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["task", "outer/inner", "outer"]);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let g = SpanGuard::disabled();
        drop(g);
        assert!(timeprof::stack_is_empty());
    }

    #[test]
    fn forgotten_inner_guard_recovers() {
        let rec = Arc::new(FrameTree::default());
        {
            let _outer = SpanGuard::enter(Arc::clone(&rec), "outer");
            let inner = SpanGuard::enter(Arc::clone(&rec), "inner");
            std::mem::forget(inner);
        }
        assert!(timeprof::stack_is_empty(), "outer's drop truncates the leaked frame");
        let paths: Vec<String> = rec.snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, ["outer"], "the forgotten span never records");
    }
}
