//! Wall-clock run health: live progress counters, a heartbeat file writer,
//! and a stall watchdog.
//!
//! Unlike every other obs subsystem, health is *deliberately* wall-clock:
//! it exists so an operator (or `experiments watch`) can see how an
//! hours-long sweep is doing without touching its determinism. The counters
//! live in one [`HealthState`] shared by the parent registry and every
//! shard (shards clone the `Arc`, absorb is a no-op), updated with relaxed
//! atomics from the scheduler hot path — one fetch-add per event when
//! armed, one branch when not.
//!
//! The [`HealthMonitor`] heartbeat thread samples the state every tick into
//! a live-updating `<fig>.health.json` (written to a temp file and renamed,
//! so readers never see a torn document). When the event counter stops
//! moving for `stall_after` wall time it records a stall: a `stall` warn
//! event, a [`SpanKind::Stall`] control span for the flight recorder, and a
//! bump of the stall counter surfaced in the health file and run summary.

use crate::events::Level;
use crate::json::Json;
use crate::registry::Registry;
use crate::trace::SpanKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default heartbeat interval.
pub const DEFAULT_HEARTBEAT_MS: u64 = 500;

/// Default wall-clock silence before the watchdog declares a stall.
pub const DEFAULT_STALL_AFTER_MS: u64 = 10_000;

/// Shared live counters (relaxed; telemetry only, never folded into
/// results or digests).
#[derive(Debug, Default)]
pub struct HealthState {
    /// Scheduler events processed, all workers.
    pub events: AtomicU64,
    /// Most recently observed sim-time, µs (last writer wins across
    /// workers — a "recent progress" indicator, not a total order).
    pub sim_time_us: AtomicU64,
    /// Horizon of the most recently started simulation, µs.
    pub horizon_us: AtomicU64,
    /// Simulations queued so far in this run.
    pub sims_total: AtomicU64,
    /// Simulations finished so far.
    pub sims_done: AtomicU64,
    /// Stall episodes the watchdog recorded.
    pub stalls: AtomicU64,
}

/// Cloneable handle; inert unless the registry armed health.
#[derive(Debug, Clone, Default)]
pub struct Health(Option<Arc<HealthState>>);

impl Health {
    /// The inert handle disabled registries hand out.
    pub fn disabled() -> Self {
        Health(None)
    }

    pub(crate) fn from_state(state: Option<Arc<HealthState>>) -> Self {
        Health(state)
    }

    pub(crate) fn state(&self) -> Option<&Arc<HealthState>> {
        self.0.as_ref()
    }

    /// `true` when health counters are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// One scheduler event processed at sim-time `t_us`.
    #[inline]
    pub fn tick(&self, t_us: u64) {
        if let Some(s) = &self.0 {
            s.events.fetch_add(1, Relaxed);
            s.sim_time_us.store(t_us, Relaxed);
        }
    }

    /// Declares the horizon of a simulation that is starting.
    pub fn set_horizon(&self, horizon_us: u64) {
        if let Some(s) = &self.0 {
            s.horizon_us.store(horizon_us, Relaxed);
        }
    }

    /// `n` more simulations queued in this run.
    pub fn add_sims(&self, n: u64) {
        if let Some(s) = &self.0 {
            s.sims_total.fetch_add(n, Relaxed);
        }
    }

    /// One simulation finished.
    pub fn sim_done(&self) {
        if let Some(s) = &self.0 {
            s.sims_done.fetch_add(1, Relaxed);
        }
    }
}

/// Point-in-time health reading (see [`Registry::health_snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    pub events: u64,
    pub sim_time_us: u64,
    pub horizon_us: u64,
    pub sims_total: u64,
    pub sims_done: u64,
    pub stalls: u64,
}

impl HealthSnapshot {
    pub(crate) fn read(state: &HealthState) -> Self {
        HealthSnapshot {
            events: state.events.load(Relaxed),
            sim_time_us: state.sim_time_us.load(Relaxed),
            horizon_us: state.horizon_us.load(Relaxed),
            sims_total: state.sims_total.load(Relaxed),
            sims_done: state.sims_done.load(Relaxed),
            stalls: state.stalls.load(Relaxed),
        }
    }
}

/// Resident set size (`VmRSS`) of this process, kB — the live companion of
/// the peak (`VmHWM`) readings the perf harness records. Linux-only; `None`
/// elsewhere or on read failure.
pub fn vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// Heartbeat configuration for [`HealthMonitor::start`].
#[derive(Debug, Clone)]
pub struct HealthMonitorConfig {
    /// Figure id stamped into the health file.
    pub figure: String,
    /// Path of the live-updating health file.
    pub path: PathBuf,
    /// Sampling interval.
    pub interval: Duration,
    /// Wall-clock event-counter silence before a stall is declared.
    pub stall_after: Duration,
}

/// The heartbeat thread: samples the registry's health state into a
/// live-updating JSON file until [`HealthMonitor::stop`].
#[derive(Debug)]
pub struct HealthMonitor {
    done: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthMonitor {
    /// Spawns the heartbeat. Returns `None` when `registry` has no health
    /// state armed (nothing to sample).
    pub fn start(registry: &Registry, config: HealthMonitorConfig) -> Option<HealthMonitor> {
        let state = registry.health().state()?.clone();
        let registry = registry.clone();
        let done = Arc::new(AtomicBool::new(false));
        let done_flag = done.clone();
        let handle = std::thread::Builder::new()
            .name("cdnc-health".into())
            .spawn(move || heartbeat_loop(&registry, &state, &config, &done_flag))
            .ok()?;
        Some(HealthMonitor { done, handle: Some(handle) })
    }

    /// Stops the heartbeat and writes the final (`finished: true`) sample.
    pub fn stop(mut self) {
        self.done.store(true, Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HealthMonitor {
    fn drop(&mut self) {
        self.done.store(true, Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn heartbeat_loop(
    registry: &Registry,
    state: &Arc<HealthState>,
    config: &HealthMonitorConfig,
    done: &AtomicBool,
) {
    let started = Instant::now();
    let mut last_events = 0u64;
    let mut last_sample = started;
    let mut last_progress = started;
    let mut stalled = false;
    loop {
        let finished = done.load(Relaxed);
        let now = Instant::now();
        let snap = HealthSnapshot::read(state);
        let tick_s = now.duration_since(last_sample).as_secs_f64();
        let recent_rate = if tick_s > 0.0 {
            (snap.events.saturating_sub(last_events)) as f64 / tick_s
        } else {
            0.0
        };
        if snap.events != last_events {
            last_events = snap.events;
            last_progress = now;
            stalled = false;
        } else if !finished && !stalled && now.duration_since(last_progress) >= config.stall_after {
            // One stall episode per silence: warn + flight-recorder span.
            stalled = true;
            state.stalls.fetch_add(1, Relaxed);
            let silent_s = now.duration_since(last_progress).as_secs_f64();
            registry.event(Level::Warn, "stall", || {
                Json::obj()
                    .field("figure", config.figure.as_str())
                    .field("silent_s", silent_s)
                    .field("events", snap.events)
            });
            registry.tracer().control(SpanKind::Stall, 0, snap.sim_time_us, "watchdog");
        }
        last_sample = now;
        let wall_s = now.duration_since(started).as_secs_f64();
        let doc = health_json(&config.figure, wall_s, recent_rate, &snap, finished);
        write_atomic(&config.path, &doc.to_pretty());
        if finished {
            return;
        }
        // Sleep in short slices so stop() latency stays bounded.
        let deadline = Instant::now() + config.interval;
        while Instant::now() < deadline && !done.load(Relaxed) {
            std::thread::sleep(config.interval.min(Duration::from_millis(20)));
        }
    }
}

/// The `<fig>.health.json` document for one sample.
fn health_json(
    figure: &str,
    wall_s: f64,
    recent_rate: f64,
    snap: &HealthSnapshot,
    finished: bool,
) -> Json {
    let mean_rate = if wall_s > 0.0 { snap.events as f64 / wall_s } else { 0.0 };
    let eta_s = if finished || snap.sims_done == 0 || snap.sims_total <= snap.sims_done {
        0.0
    } else {
        wall_s * (snap.sims_total - snap.sims_done) as f64 / snap.sims_done as f64
    };
    Json::obj()
        .field("figure", figure)
        .field("wall_s", wall_s)
        .field("events", snap.events)
        .field("events_per_s", mean_rate)
        .field("recent_events_per_s", recent_rate)
        .field("sims_done", snap.sims_done)
        .field("sims_total", snap.sims_total)
        .field("sim_time_us", snap.sim_time_us)
        .field("horizon_us", snap.horizon_us)
        .field("eta_s", eta_s)
        .field("vm_rss_kb", vm_rss_kb().unwrap_or(0))
        .field("stalls", snap.stalls)
        .field("finished", finished)
}

/// Writes `body` to `path` atomically (temp sibling + rename) so `watch`
/// never reads a torn file.
fn write_atomic(path: &std::path::Path, body: &str) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, body).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = Health::disabled();
        assert!(!h.is_enabled());
        h.tick(5);
        h.add_sims(3);
        h.sim_done();
    }

    #[test]
    fn ticks_accumulate_and_snapshot_reads_them() {
        let state = Arc::new(HealthState::default());
        let h = Health::from_state(Some(state.clone()));
        h.set_horizon(1_000);
        h.add_sims(2);
        h.tick(10);
        h.tick(20);
        h.sim_done();
        let snap = HealthSnapshot::read(&state);
        assert_eq!(snap.events, 2);
        assert_eq!(snap.sim_time_us, 20);
        assert_eq!(snap.horizon_us, 1_000);
        assert_eq!(snap.sims_total, 2);
        assert_eq!(snap.sims_done, 1);
    }

    #[test]
    fn vm_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(vm_rss_kb().unwrap_or(0) > 0, "a running test has resident pages");
        }
    }

    #[test]
    fn monitor_writes_a_live_then_final_health_file() {
        let dir = std::env::temp_dir().join(format!("cdnc-health-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::enabled();
        reg.enable_health();
        reg.health().add_sims(4);
        reg.health().tick(123);
        reg.health().sim_done();
        let path = dir.join("figX.health.json");
        let mon = HealthMonitor::start(
            &reg,
            HealthMonitorConfig {
                figure: "figX".into(),
                path: path.clone(),
                interval: Duration::from_millis(10),
                stall_after: Duration::from_secs(3600),
            },
        )
        .expect("health armed");
        // The first sample lands promptly.
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        mon.stop();
        let body = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_str), Some("figX"));
        assert_eq!(doc.get("events").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("sims_total").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("finished"), Some(&Json::Bool(true)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_flags_a_stall_once_per_silence() {
        let reg = Registry::enabled();
        reg.enable_health();
        reg.enable_events(Level::Warn, 64);
        reg.health().tick(50);
        let dir = std::env::temp_dir().join(format!("cdnc-stall-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mon = HealthMonitor::start(
            &reg,
            HealthMonitorConfig {
                figure: "figY".into(),
                path: dir.join("figY.health.json"),
                interval: Duration::from_millis(5),
                stall_after: Duration::from_millis(30),
            },
        )
        .expect("health armed");
        std::thread::sleep(Duration::from_millis(200));
        mon.stop();
        let snap = reg.health_snapshot().unwrap();
        assert_eq!(snap.stalls, 1, "one episode despite many silent ticks");
        let events = reg.drain_events();
        assert_eq!(events.iter().filter(|e| e.label == "stall").count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
