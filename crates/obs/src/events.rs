//! Ring-buffered, level-filtered structured event log.
//!
//! Events are held in a bounded ring (oldest dropped first) and drained at
//! end of run into a JSONL file — one JSON object per line. The log is for
//! forensic "what happened around the anomaly" questions; aggregate
//! questions belong to the metrics registry.

use crate::json::Json;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Event severity, ordered from chattiest to most important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume tracing detail.
    Debug,
    /// Notable state changes.
    Info,
    /// Unexpected but non-fatal conditions.
    Warn,
}

impl Level {
    /// The lowercase name used in serialized events.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    /// Parses `"debug"` / `"info"` / `"warn"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            _ => None,
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Monotone sequence number across the whole run (records dropped from
    /// the ring leave visible gaps).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Short event name, e.g. `"switch_to_invalidation"`.
    pub label: String,
    /// Free-form structured payload.
    pub fields: Json,
}

impl EventRecord {
    /// The event as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("seq", self.seq)
            .field("level", self.level.as_str())
            .field("event", self.label.as_str())
            .field("fields", self.fields.clone())
    }
}

/// The bounded event buffer.
#[derive(Debug)]
pub(crate) struct EventLog {
    min_level: Level,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<EventRecord>>,
    dropped: AtomicU64,
}

impl EventLog {
    pub(crate) fn new(min_level: Level, capacity: usize) -> Self {
        EventLog {
            min_level,
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn accepts(&self, level: Level) -> bool {
        level >= self.min_level
    }

    pub(crate) fn push(&self, level: Level, label: &str, fields: Json) {
        if !self.accepts(level) {
            return;
        }
        let seq = self.seq.fetch_add(1, Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(EventRecord { seq, level, label: label.to_owned(), fields });
    }

    /// Removes and returns all buffered events, oldest first.
    pub(crate) fn drain(&self) -> Vec<EventRecord> {
        self.ring.lock().drain(..).collect()
    }

    /// The minimum level this log accepts.
    pub(crate) fn min_level(&self) -> Level {
        self.min_level
    }

    /// The ring capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends already-accepted records (from a shard's log of the same
    /// configuration), renumbering them onto this log's sequence so merged
    /// output looks exactly like one log that recorded everything. The
    /// shard's eviction count is carried over too.
    pub(crate) fn absorb(&self, records: Vec<EventRecord>, dropped: u64) {
        self.dropped.fetch_add(dropped, Relaxed);
        let mut ring = self.ring.lock();
        for mut record in records {
            record.seq = self.seq.fetch_add(1, Relaxed);
            if ring.len() == self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Relaxed);
            }
            ring.push_back(record);
        }
    }

    /// Events evicted by the ring since the start of the run.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filter_and_order() {
        let log = EventLog::new(Level::Info, 16);
        log.push(Level::Debug, "noise", Json::Null);
        log.push(Level::Info, "a", Json::Null);
        log.push(Level::Warn, "b", Json::Null);
        let events = log.drain();
        let labels: Vec<&str> = events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["a", "b"]);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn ring_evicts_oldest() {
        let log = EventLog::new(Level::Debug, 2);
        for label in ["first", "second", "third"] {
            log.push(Level::Info, label, Json::Null);
        }
        let labels: Vec<String> = log.drain().into_iter().map(|e| e.label).collect();
        assert_eq!(labels, ["second", "third"]);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn ring_exactly_at_capacity_keeps_everything() {
        let log = EventLog::new(Level::Debug, 3);
        for i in 0..3u64 {
            log.push(Level::Info, &format!("e{i}"), Json::Null);
        }
        let events = log.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(log.dropped(), 0, "at capacity nothing is evicted yet");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2], "sequence numbers are contiguous");
    }

    #[test]
    fn ring_far_past_capacity_keeps_newest_window() {
        let log = EventLog::new(Level::Debug, 4);
        for i in 0..100u64 {
            log.push(Level::Info, &format!("e{i}"), Json::Null);
        }
        let events = log.drain();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [96, 97, 98, 99], "only the newest window survives");
        assert_eq!(log.dropped(), 96);
        // The sequence keeps counting across a drain, so gaps stay visible.
        log.push(Level::Info, "after", Json::Null);
        assert_eq!(log.drain()[0].seq, 100);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let log = EventLog::new(Level::Debug, 0);
        log.push(Level::Info, "a", Json::Null);
        log.push(Level::Info, "b", Json::Null);
        let events = log.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "b");
    }

    #[test]
    fn record_serializes_to_jsonl_line() {
        let log = EventLog::new(Level::Debug, 4);
        log.push(Level::Warn, "orphaned", Json::obj().field("node", 7u64));
        let line = log.drain()[0].to_json().to_compact();
        assert_eq!(line, r#"{"seq":0,"level":"warn","event":"orphaned","fields":{"node":7}}"#);
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [Level::Debug, Level::Info, Level::Warn] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("TRACE"), None);
    }
}
