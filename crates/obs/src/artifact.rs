//! Structured run artifacts.
//!
//! A [`RunArtifact`] bundles everything needed to interpret one run after
//! the fact — identity (run id, seed, config digest), the metrics and phase
//! timings recorded by the [`Registry`], and a caller-supplied summary of
//! the domain result — and serializes it to a JSON file. The optional event
//! log drains to a sibling `.jsonl` file.

use crate::json::Json;
use crate::registry::Registry;
use std::io;
use std::path::{Path, PathBuf};

/// FNV-1a digest of a string, rendered as 16 hex digits.
///
/// Used to fingerprint configurations: hash the `Debug` rendering of the
/// config and two runs with the same digest used the same inputs.
pub fn digest_str(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// Everything recorded about one experiment run.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Stable identifier, e.g. `"fig20-default-seed0"`.
    pub run_id: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Fingerprint of the configuration (see [`digest_str`]).
    pub config_digest: String,
    /// Domain-level result summary, built by the caller.
    pub summary: Json,
}

impl RunArtifact {
    /// Starts an artifact for the given run identity.
    pub fn new(run_id: impl Into<String>, seed: u64, config_digest: impl Into<String>) -> Self {
        RunArtifact {
            run_id: run_id.into(),
            seed,
            config_digest: config_digest.into(),
            summary: Json::Null,
        }
    }

    /// Attaches the domain result summary.
    #[must_use]
    pub fn with_summary(mut self, summary: Json) -> Self {
        self.summary = summary;
        self
    }

    /// The artifact as a JSON document, folding in everything `registry`
    /// recorded (metrics, phase timings, event-log accounting).
    pub fn to_json(&self, registry: &Registry) -> Json {
        let snap = registry.snapshot();
        Json::obj()
            .field("run_id", self.run_id.as_str())
            .field("seed", self.seed)
            .field("config_digest", self.config_digest.as_str())
            .field("summary", self.summary.clone())
            .field("metrics", snap.metrics_json())
            .field("phases", snap.spans_json())
    }

    /// Writes `<dir>/<run_id>.json` (pretty-printed), creating `dir` as
    /// needed, and returns the path written.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>, registry: &Registry) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.run_id));
        std::fs::write(&path, self.to_json(registry).to_pretty())?;
        Ok(path)
    }
}

/// Drains `registry`'s event log into `<dir>/<run_id>.jsonl` (one event per
/// line) and returns the path, or `None` when there were no events.
pub fn write_event_log(
    dir: impl AsRef<Path>,
    run_id: &str,
    registry: &Registry,
) -> io::Result<Option<PathBuf>> {
    let events = registry.drain_events();
    if events.is_empty() {
        return Ok(None);
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{run_id}.jsonl"));
    let mut out = String::new();
    for event in &events {
        out.push_str(&event.to_json().to_compact());
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Level;

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(digest_str("abc"), digest_str("abc"));
        assert_ne!(digest_str("abc"), digest_str("abd"));
        assert_eq!(digest_str("").len(), 16);
    }

    #[test]
    fn artifact_json_carries_identity_and_metrics() {
        let reg = Registry::enabled();
        reg.counter("events_processed").add(41);
        let art = RunArtifact::new("fig9-test", 7, digest_str("cfg"))
            .with_summary(Json::obj().field("rows", 3u64));
        let j = art.to_json(&reg);
        assert_eq!(j.get("run_id").and_then(Json::as_str), Some("fig9-test"));
        assert_eq!(j.get("seed").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("summary").and_then(|s| s.get("rows")).and_then(Json::as_f64), Some(3.0));
        let counters = j.get("metrics").and_then(|m| m.get("counters")).unwrap();
        assert_eq!(counters.get("events_processed").and_then(Json::as_f64), Some(41.0));
    }

    #[test]
    fn writes_artifact_and_event_log_files() {
        let dir = std::env::temp_dir().join("cdnc-obs-artifact-test");
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::enabled();
        reg.enable_events(Level::Info, 8);
        reg.event(Level::Info, "hello", || Json::Null);
        let art = RunArtifact::new("unit", 1, digest_str("x"));
        let json_path = art.write_to_dir(&dir, &reg).unwrap();
        let log_path = write_event_log(&dir, "unit", &reg).unwrap().unwrap();
        let body = std::fs::read_to_string(&json_path).unwrap();
        assert!(body.contains("\"run_id\": \"unit\""));
        let log = std::fs::read_to_string(&log_path).unwrap();
        assert_eq!(log.lines().count(), 1);
        // A second drain has nothing left.
        assert!(write_event_log(&dir, "unit", &reg).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
