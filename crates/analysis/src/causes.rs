//! Cause breakdown for content inconsistency (paper §3.4, Figs. 7–10).

use crate::inconsistency::{
    consistency_ratio, corrected_polls_by_server, day_episodes, episodes_of_server,
    first_appearances_for, Episode, FirstAppearances,
};
use cdnc_simcore::stats::{pearson, Cdf};
use cdnc_simcore::{SimDuration, SimTime};
use cdnc_trace::{DayTrace, SnapshotId, Trace};
use std::collections::HashMap;

// --- §3.4.2 provider inconsistency --------------------------------------

/// Inconsistency lengths of the provider origin replicas for one day,
/// using the same α/β machinery as the server analysis (Fig. 7).
pub fn provider_inconsistency_lengths(day: &DayTrace) -> Vec<f64> {
    let mut by_replica: HashMap<u32, Vec<(SimTime, SnapshotId)>> = HashMap::new();
    for p in &day.provider_polls {
        by_replica.entry(p.replica).or_default().push((p.time, p.snapshot));
    }
    for polls in by_replica.values_mut() {
        polls.sort_by_key(|&(t, _)| t);
    }
    let alpha =
        FirstAppearances::from_observations(by_replica.values().flatten().map(|&(t, s)| (s, t)));
    let mut replicas: Vec<u32> = by_replica.keys().copied().collect();
    replicas.sort_unstable();
    replicas
        .iter()
        .flat_map(|r| episodes_of_server(*r, &by_replica[r], &alpha))
        .map(|e| e.length_s)
        .collect()
}

// --- §3.4.3 distance and ISP effects -------------------------------------

/// Average consistency ratio per provider-distance bucket (Fig. 8) plus the
/// Pearson correlation between distance and ratio.
///
/// Returns `(bucket_centres_km, mean_ratios, pearson_r)`.
pub fn distance_vs_consistency(
    trace: &Trace,
    day_index: usize,
    bucket_km: f64,
) -> (Vec<f64>, Vec<f64>, f64) {
    assert!(bucket_km > 0.0, "bucket size must be positive");
    let day = &trace.days[day_index];
    let session_s = trace.session.as_secs_f64();
    let polls = corrected_polls_by_server(day, &trace.servers);
    let alpha = first_appearances_for(&polls, None);
    // Per-server consistency ratio.
    let mut per_server: Vec<(f64, f64)> = Vec::new(); // (distance, ratio)
    for meta in &trace.servers {
        let Some(server_polls) = polls.get(&meta.id) else { continue };
        let eps = episodes_of_server(meta.id, server_polls, &alpha);
        per_server.push((meta.distance_to_provider_km, consistency_ratio(&eps, session_s)));
    }
    let r = {
        let xs: Vec<f64> = per_server.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = per_server.iter().map(|p| p.1).collect();
        pearson(&xs, &ys)
    };
    // Bucket means.
    let mut buckets: HashMap<u64, (f64, u64)> = HashMap::new();
    for &(d, ratio) in &per_server {
        let b = (d / bucket_km) as u64;
        let e = buckets.entry(b).or_insert((0.0, 0));
        e.0 += ratio;
        e.1 += 1;
    }
    let mut keys: Vec<u64> = buckets.keys().copied().collect();
    keys.sort_unstable();
    let centres: Vec<f64> = keys.iter().map(|&k| (k as f64 + 0.5) * bucket_km).collect();
    let means: Vec<f64> = keys.iter().map(|&k| buckets[&k].0 / buckets[&k].1 as f64).collect();
    (centres, means, r)
}

/// Intra- and inter-ISP inconsistency lengths per ISP cluster (Fig. 9).
///
/// For each ISP cluster: *intra* lengths use α computed from that cluster's
/// own polls; *inter* lengths use α computed from all **other** clusters'
/// polls (the earliest appearance elsewhere) — so inter ≥ intra measures how
/// far the cluster lags the rest of the CDN.
#[derive(Debug, Clone, PartialEq)]
pub struct IspClusterInconsistency {
    /// The cluster's ISP id (as raw u16).
    pub isp: u16,
    /// Number of servers in the cluster.
    pub servers: usize,
    /// Intra-ISP inconsistency lengths, seconds.
    pub intra: Vec<f64>,
    /// Inter-ISP inconsistency lengths, seconds.
    pub inter: Vec<f64>,
}

/// Computes per-ISP intra/inter inconsistency for one day.
pub fn isp_inconsistency(trace: &Trace, day_index: usize) -> Vec<IspClusterInconsistency> {
    let day = &trace.days[day_index];
    let polls = corrected_polls_by_server(day, &trace.servers);
    // Group servers by ISP.
    let mut groups: HashMap<u16, Vec<u32>> = HashMap::new();
    for meta in &trace.servers {
        groups.entry(meta.isp.0).or_default().push(meta.id);
    }
    let mut isps: Vec<u16> = groups.keys().copied().collect();
    isps.sort_unstable();
    let mut out = Vec::with_capacity(isps.len());
    for isp in isps {
        let members = &groups[&isp];
        let intra_alpha = first_appearances_for(&polls, Some(members));
        let others: Vec<u32> =
            trace.servers.iter().map(|m| m.id).filter(|id| !members.contains(id)).collect();
        let inter_alpha = first_appearances_for(&polls, Some(&others));
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for &m in members {
            if let Some(server_polls) = polls.get(&m) {
                intra.extend(
                    episodes_of_server(m, server_polls, &intra_alpha).iter().map(|e| e.length_s),
                );
                inter.extend(
                    episodes_of_server(m, server_polls, &inter_alpha).iter().map(|e| e.length_s),
                );
            }
        }
        out.push(IspClusterInconsistency { isp, servers: members.len(), intra, inter });
    }
    out
}

// --- §3.4.4 provider bandwidth --------------------------------------------

/// CDF of provider response times (Fig. 10(a)), seconds.
pub fn provider_response_times(day: &DayTrace) -> Cdf {
    Cdf::from_samples(day.provider_polls.iter().map(|p| p.response_time.as_secs_f64()))
}

// --- §3.4.5 server failure and overload -----------------------------------

/// A detected server absence: a gap between successive polls longer than
/// the poll interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedAbsence {
    /// The absent server.
    pub server: u32,
    /// Last successful poll before the gap.
    pub last_seen: SimTime,
    /// First successful poll after the gap.
    pub returned: SimTime,
    /// Absence length: `returned − last_seen − poll_interval`, seconds.
    pub length_s: f64,
}

/// Detects absences in one day's server polls (paper: `t_{i+1} − t_i − 10 s`).
pub fn detect_absences(day: &DayTrace, poll_interval: SimDuration) -> Vec<DetectedAbsence> {
    let mut out = Vec::new();
    let mut iter = day.server_polls.iter().peekable();
    while let Some(p) = iter.next() {
        if let Some(next) = iter.peek() {
            if next.server == p.server {
                let gap = next.time.since(p.time);
                if gap > poll_interval + SimDuration::from_millis(1) {
                    out.push(DetectedAbsence {
                        server: p.server,
                        last_seen: p.time,
                        returned: next.time,
                        length_s: gap.saturating_sub(poll_interval).as_secs_f64(),
                    });
                }
            }
        }
    }
    out
}

/// Mean inconsistency length grouped by absence length (Fig. 10(c)).
///
/// The paper: "suppose the content responded at `t_{i+1}` from the content
/// server that was absent is `C_{i+1}`, then we call the inconsistency
/// length of `C_{i+1}` the inconsistency length of this absence" — i.e. for
/// each absence we take the stale episode of the snapshot served at the
/// *first post-return poll*. Group 0 collects the no-absence baseline: all
/// episodes not linked to any absence.
///
/// Returns `(bin_upper_bounds_s, mean_inconsistency_s)`; bins are
/// `[0,0]`, `(0,50]`, `(50,100]`, … `(350,400]` as in the paper.
pub fn inconsistency_by_absence_length(trace: &Trace, day_index: usize) -> (Vec<f64>, Vec<f64>) {
    inconsistency_by_absence_length_days(trace, &[day_index as u16])
}

/// [`inconsistency_by_absence_length`] pooled over every trace day — the
/// paper pools 15 days to populate the long-absence bins.
pub fn inconsistency_by_absence_length_pooled(trace: &Trace) -> (Vec<f64>, Vec<f64>) {
    let days: Vec<u16> = (0..trace.days.len() as u16).collect();
    inconsistency_by_absence_length_days(trace, &days)
}

fn inconsistency_by_absence_length_days(
    trace: &Trace,
    day_indices: &[u16],
) -> (Vec<f64>, Vec<f64>) {
    let mut bins: Vec<(f64, u64)> = vec![(0.0, 0); 9]; // bin 0 = no absence; 1..=8 = (0,50]..(350,400]
    for &d in day_indices {
        accumulate_absence_bins(trace, d as usize, &mut bins);
    }
    let bounds: Vec<f64> = (0..9).map(|i| i as f64 * 50.0).collect();
    let means: Vec<f64> =
        bins.iter().map(|&(sum, n)| if n == 0 { 0.0 } else { sum / n as f64 }).collect();
    (bounds, means)
}

fn accumulate_absence_bins(trace: &Trace, day_index: usize, bins: &mut [(f64, u64)]) {
    let day = &trace.days[day_index];
    let absences = detect_absences(day, trace.poll_interval);
    let polls = corrected_polls_by_server(day, &trace.servers);
    let alpha = first_appearances_for(&polls, None);
    let mut eps_by_server: HashMap<u32, Vec<Episode>> = HashMap::new();
    for (&server, server_polls) in &polls {
        eps_by_server.insert(server, episodes_of_server(server, server_polls, &alpha));
    }
    let mut absence_episode_ids: Vec<(u32, SimTime)> = Vec::new();
    for a in &absences {
        if a.length_s > 400.0 {
            continue;
        }
        let bin = ((a.length_s / 50.0).ceil() as usize).clamp(1, 8);
        // The first poll at or after the return (note: `detect_absences`
        // works on raw times while episodes use corrected times; the skew
        // residual is sub-second, far below the 10 s poll grid).
        let Some(server_polls) = polls.get(&a.server) else { continue };
        let idx = server_polls.partition_point(|&(t, _)| t < a.returned);
        let Some(&(poll_t, snap)) = server_polls.get(idx) else { continue };
        // That content's own stale episode, if it ever became stale.
        if let Some(e) =
            eps_by_server[&a.server].iter().find(|e| e.snapshot == snap && e.end >= poll_t)
        {
            bins[bin].0 += e.length_s;
            bins[bin].1 += 1;
            absence_episode_ids.push((e.server, e.end));
        }
    }
    // Baseline: everything not linked to an absence.
    for eps in eps_by_server.values() {
        for e in eps {
            if !absence_episode_ids.contains(&(e.server, e.end)) {
                bins[0].0 += e.length_s;
                bins[0].1 += 1;
            }
        }
    }
}

/// Mean inconsistency of episodes ending within `window_s` seconds *before*
/// absences vs *after* them (Fig. 10(d) flavour), grouped by absence length
/// bins of 100 s: `[0,100], (100,200], (200,300], (300,400]`.
///
/// Returns `(before_means, after_means)` with 4 entries each.
pub fn inconsistency_around_absences(
    trace: &Trace,
    day_index: usize,
    window_s: f64,
) -> (Vec<f64>, Vec<f64>) {
    let day = &trace.days[day_index];
    let absences = detect_absences(day, trace.poll_interval);
    let episodes = day_episodes(day, &trace.servers, None);
    let mut eps_by_server: HashMap<u32, Vec<&Episode>> = HashMap::new();
    for e in &episodes {
        eps_by_server.entry(e.server).or_default().push(e);
    }
    let mut before: Vec<(f64, u64)> = vec![(0.0, 0); 4];
    let mut after: Vec<(f64, u64)> = vec![(0.0, 0); 4];
    for a in &absences {
        if a.length_s > 400.0 {
            continue;
        }
        let bin = ((a.length_s / 100.0).floor() as usize).min(3);
        let w = SimDuration::from_secs_f64(window_s);
        if let Some(eps) = eps_by_server.get(&a.server) {
            for e in eps {
                if e.end <= a.last_seen && e.end + w >= a.last_seen {
                    before[bin].0 += e.length_s;
                    before[bin].1 += 1;
                }
                if e.end >= a.returned && a.returned + w >= e.end {
                    after[bin].0 += e.length_s;
                    after[bin].1 += 1;
                }
            }
        }
    }
    let finish = |v: Vec<(f64, u64)>| {
        v.into_iter().map(|(s, n)| if n == 0 { 0.0 } else { s / n as f64 }).collect()
    };
    (finish(before), finish(after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_trace::{crawl, CrawlConfig};

    fn mini_trace() -> Trace {
        crawl(&CrawlConfig { servers: 60, users: 20, days: 1, ..CrawlConfig::tiny() })
    }

    #[test]
    fn provider_is_much_more_consistent_than_servers() {
        let trace = mini_trace();
        let day = &trace.days[0];
        let provider = provider_inconsistency_lengths(day);
        let servers: Vec<f64> =
            day_episodes(day, &trace.servers, None).iter().map(|e| e.length_s).collect();
        let p_mean = if provider.is_empty() {
            0.0
        } else {
            provider.iter().sum::<f64>() / provider.len() as f64
        };
        let s_mean = servers.iter().sum::<f64>() / servers.len() as f64;
        assert!(
            p_mean < s_mean / 3.0,
            "origin mean {p_mean} should be far below server mean {s_mean}"
        );
        assert!(p_mean < 15.0, "origin inconsistency should be a few seconds, got {p_mean}");
    }

    #[test]
    fn distance_correlation_is_weak() {
        let trace = mini_trace();
        let (centres, means, r) = distance_vs_consistency(&trace, 0, 2_000.0);
        assert_eq!(centres.len(), means.len());
        assert!(!centres.is_empty());
        assert!(r.abs() < 0.5, "distance-consistency correlation should be weak, r = {r}");
        for m in means {
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn inter_isp_exceeds_intra_isp() {
        let trace = mini_trace();
        let clusters = isp_inconsistency(&trace, 0);
        assert!(!clusters.is_empty());
        let mut intra_sum = 0.0;
        let mut intra_n = 0usize;
        let mut inter_sum = 0.0;
        let mut inter_n = 0usize;
        for c in &clusters {
            intra_sum += c.intra.iter().sum::<f64>();
            intra_n += c.intra.len();
            inter_sum += c.inter.iter().sum::<f64>();
            inter_n += c.inter.len();
        }
        let intra_mean = intra_sum / intra_n.max(1) as f64;
        let inter_mean = inter_sum / inter_n.max(1) as f64;
        assert!(
            inter_mean > intra_mean,
            "inter-ISP mean {inter_mean} must exceed intra-ISP mean {intra_mean}"
        );
    }

    #[test]
    fn provider_response_times_in_paper_range() {
        let trace = mini_trace();
        let cdf = provider_response_times(&trace.days[0]);
        assert!(cdf.min().unwrap() >= 0.5);
        assert!(cdf.max().unwrap() <= 2.1 + 1e-9);
        assert!(cdf.fraction_at_most(1.5) > 0.8, "90% of requests resolve fast");
    }

    #[test]
    fn absences_detected_and_positive() {
        let trace = mini_trace();
        let absences = detect_absences(&trace.days[0], trace.poll_interval);
        assert!(!absences.is_empty(), "default absence config must produce gaps");
        for a in &absences {
            assert!(a.length_s > 0.0);
            assert!(a.returned > a.last_seen);
        }
    }

    #[test]
    fn absence_bins_shaped_sensibly() {
        let trace = mini_trace();
        let (bounds, means) = inconsistency_by_absence_length(&trace, 0);
        assert_eq!(bounds.len(), 9);
        assert_eq!(means.len(), 9);
        assert!(means[0] > 0.0, "baseline group must have data");
        // When an absence-linked group has data, its inconsistency is on the
        // order of the baseline or above (small samples can dip somewhat).
        let max_abs = means[1..].iter().copied().fold(0.0f64, f64::max);
        if max_abs > 0.0 {
            assert!(
                max_abs >= means[0] * 0.5,
                "absence-linked inconsistency implausibly low: baseline {} vs max {}",
                means[0],
                max_abs
            );
        }
    }

    #[test]
    fn around_absence_windows_have_right_shape() {
        let trace = mini_trace();
        let (before, after) = inconsistency_around_absences(&trace, 0, 60.0);
        assert_eq!(before.len(), 4);
        assert_eq!(after.len(), 4);
    }

    #[test]
    fn no_gap_no_absence() {
        let trace = mini_trace();
        let mut day = trace.days[0].clone();
        // Keep only one server's polls; they are contiguous unless that
        // server was absent — filter such gaps by reconstructing times.
        day.server_polls.retain(|p| p.server == 0);
        for (i, p) in day.server_polls.iter_mut().enumerate() {
            p.time = SimTime::from_secs(10 * i as u64);
        }
        assert!(detect_absences(&day, trace.poll_interval).is_empty());
    }
}
