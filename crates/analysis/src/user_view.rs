//! User-perspective consistency (paper §3.3, Fig. 4).
//!
//! A user observes *self-inconsistency* when a poll returns content older
//! than the newest content that user has already seen (e.g. a score going
//! backwards) — caused by DNS redirecting the user to a server that lags.

use cdnc_simcore::stats::Cdf;
use cdnc_simcore::SimTime;
use cdnc_trace::{DayTrace, SnapshotId, Trace, UserPoll};

/// Per-user summary over one or more days.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserSummary {
    /// Fraction of this user's polls served by a different server than the
    /// previous poll (Fig. 4(a)).
    pub redirect_fraction: f64,
    /// Fraction of polls that observed self-inconsistency.
    pub inconsistent_fraction: f64,
    /// Total polls.
    pub polls: u64,
}

/// Per-poll self-inconsistency flags of one user, time-ordered.
fn inconsistency_flags(polls: &[&UserPoll]) -> Vec<(SimTime, bool)> {
    let mut max_seen = SnapshotId(0);
    polls
        .iter()
        .map(|p| {
            let inconsistent = p.snapshot < max_seen;
            if p.snapshot > max_seen {
                max_seen = p.snapshot;
            }
            (p.time, inconsistent)
        })
        .collect()
}

/// Summarises one user's polls across the given days.
pub fn user_summary(trace: &Trace, user: u32, days: &[u16]) -> UserSummary {
    let mut redirected = 0u64;
    let mut inconsistent = 0u64;
    let mut transitions = 0u64;
    let mut polls = 0u64;
    for &d in days {
        let day = &trace.days[d as usize];
        let day_polls: Vec<&UserPoll> = day.polls_of_user(user).collect();
        for w in day_polls.windows(2) {
            transitions += 1;
            if w[0].server != w[1].server {
                redirected += 1;
            }
        }
        for (_, inc) in inconsistency_flags(&day_polls) {
            polls += 1;
            if inc {
                inconsistent += 1;
            }
        }
    }
    UserSummary {
        redirect_fraction: if transitions == 0 {
            0.0
        } else {
            redirected as f64 / transitions as f64
        },
        inconsistent_fraction: if polls == 0 { 0.0 } else { inconsistent as f64 / polls as f64 },
        polls,
    }
}

/// The CDF of per-user redirect fractions across all users and days
/// (Fig. 4(a)).
pub fn redirect_fraction_cdf(trace: &Trace) -> Cdf {
    let days: Vec<u16> = (0..trace.days.len() as u16).collect();
    Cdf::from_samples(
        (0..trace.users.len() as u32).map(|u| user_summary(trace, u, &days).redirect_fraction),
    )
}

/// Continuous consistency and inconsistency times of one user on one day
/// (Fig. 4(c)/(d)): lengths of maximal runs of consistent / inconsistent
/// observations, in seconds.
///
/// `stride` subsamples the polls (1 = every poll; 2 = every 2nd poll ≙ a
/// 20 s visit frequency, and so on — the Fig. 4(e) sweep).
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn continuous_times(day: &DayTrace, user: u32, stride: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(stride > 0, "stride must be positive");
    let polls: Vec<&UserPoll> = day.polls_of_user(user).step_by(stride).collect();
    let flags = inconsistency_flags(&polls);
    let mut consistent_runs = Vec::new();
    let mut inconsistent_runs = Vec::new();
    let mut run_start: Option<(SimTime, bool)> = None;
    for &(t, inc) in &flags {
        match run_start {
            None => run_start = Some((t, inc)),
            Some((start, state)) if state != inc => {
                let len = t.since(start).as_secs_f64();
                if state {
                    inconsistent_runs.push(len);
                } else {
                    consistent_runs.push(len);
                }
                run_start = Some((t, inc));
            }
            Some(_) => {}
        }
    }
    if let (Some((start, state)), Some(&(last, _))) = (run_start, flags.last()) {
        let len = last.since(start).as_secs_f64();
        if len > 0.0 {
            if state {
                inconsistent_runs.push(len);
            } else {
                consistent_runs.push(len);
            }
        }
    }
    (consistent_runs, inconsistent_runs)
}

/// All continuous (consistency, inconsistency) times across users and days.
pub fn all_continuous_times(trace: &Trace, stride: usize) -> (Cdf, Cdf) {
    let mut cons = Vec::new();
    let mut incons = Vec::new();
    for day in &trace.days {
        for u in 0..trace.users.len() as u32 {
            let (c, i) = continuous_times(day, u, stride);
            cons.extend(c);
            incons.extend(i);
        }
    }
    (Cdf::from_samples(cons), Cdf::from_samples(incons))
}

/// Average fraction of servers serving stale content at each poll instant
/// of one day (Fig. 4(b)): a server is stale at `t` when some snapshot
/// newer than the one it serves has already appeared globally.
pub fn stale_server_fraction(day: &DayTrace, servers: &[cdnc_trace::ServerMeta]) -> f64 {
    use crate::inconsistency::{corrected_polls_by_server, first_appearances_for};
    let polls = corrected_polls_by_server(day, servers);
    let alpha = first_appearances_for(&polls, None);
    let mut stale = 0u64;
    let mut total = 0u64;
    for server_polls in polls.values() {
        for &(t, snap) in server_polls {
            total += 1;
            if let Some((_, a)) = alpha.successor(snap) {
                if t > a {
                    stale += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        stale as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_trace::{crawl, CrawlConfig, UpdateSequence};

    fn mini_trace() -> Trace {
        crawl(&CrawlConfig { servers: 30, users: 15, days: 2, ..CrawlConfig::tiny() })
    }

    #[test]
    fn redirects_exist_and_are_moderate() {
        let trace = mini_trace();
        let cdf = redirect_fraction_cdf(&trace);
        let median = cdf.median().expect("mini trace has users");
        assert!(
            (0.05..0.30).contains(&median),
            "median redirect fraction {median} out of plausible range"
        );
    }

    #[test]
    fn users_observe_some_inconsistency() {
        let trace = mini_trace();
        let days: Vec<u16> = (0..trace.days.len() as u16).collect();
        let any = (0..trace.users.len() as u32)
            .map(|u| user_summary(&trace, u, &days))
            .any(|s| s.inconsistent_fraction > 0.0);
        assert!(any, "with redirection over a TTL-60 CDN someone must see a regression");
    }

    #[test]
    fn continuous_runs_partition_the_session() {
        let trace = mini_trace();
        let day = &trace.days[0];
        let (cons, incons) = continuous_times(day, 0, 1);
        // Total run time ≈ session length (within one poll interval per run
        // boundary truncation).
        let total: f64 = cons.iter().chain(incons.iter()).sum();
        let session = trace.session.as_secs_f64();
        assert!(total <= session + 1.0);
        assert!(total >= session * 0.5, "runs should cover most of the session");
    }

    #[test]
    fn inconsistency_runs_are_short() {
        // Paper Fig. 4(d): continuous inconsistency is dominated by one or
        // two visits (≤ 20 s for 10 s polls).
        let trace = mini_trace();
        let (_, incons) = all_continuous_times(&trace, 1);
        if !incons.is_empty() {
            assert!(
                incons.fraction_at_most(30.0) > 0.8,
                "most inconsistency runs must be short; P(≤30s) = {}",
                incons.fraction_at_most(30.0)
            );
        }
    }

    #[test]
    fn stride_scales_inconsistency_durations() {
        // Coarser visit frequency → longer continuous inconsistency times
        // (paper Fig. 4(e) grows with the visit period). Subsampling also
        // *drops* short runs entirely, so allow slack on small samples.
        let trace = mini_trace();
        let (_, fine) = all_continuous_times(&trace, 1);
        let (_, coarse) = all_continuous_times(&trace, 3);
        if fine.len() >= 20 && coarse.len() >= 20 {
            assert!(
                coarse.percentile(95.0).unwrap() >= fine.percentile(95.0).unwrap() * 0.7,
                "coarse p95 {:?} implausibly below fine p95 {:?}",
                coarse.percentile(95.0),
                fine.percentile(95.0)
            );
        }
    }

    #[test]
    fn stale_fraction_is_nontrivial_mid_game() {
        let trace = mini_trace();
        let f = stale_server_fraction(&trace.days[0], &trace.servers);
        assert!(
            (0.01..0.6).contains(&f),
            "stale-server fraction {f} should be visible but not dominant"
        );
    }

    #[test]
    fn silent_day_has_no_inconsistency() {
        // Build a degenerate trace day by hand: all users see one snapshot.
        let trace = mini_trace();
        let mut day = trace.days[0].clone();
        for p in &mut day.user_polls {
            p.snapshot = cdnc_trace::SnapshotId(0);
        }
        day.updates = UpdateSequence::silent();
        let (cons, incons) = continuous_times(&day, 0, 1);
        assert!(incons.is_empty());
        assert_eq!(cons.len(), 1, "one long consistent run");
    }
}
