//! The automated §3.6 verdict: given a crawl trace, reproduce the paper's
//! conclusions about the measured CDN — which update method and
//! infrastructure it runs, and how the inconsistency splits across causes
//! (the §3.4.6 summary and the Fig. 13 architecture deduction).

use crate::causes::{detect_absences, provider_inconsistency_lengths, provider_response_times};
use crate::inconsistency::day_episodes;
use crate::tree_test::{
    daily_ranks, fraction_below_ttl, group_daily_mean_inconsistency, rank_churn,
};
use crate::ttl_inference::{infer_ttl, refine_ttl, theory_rmse};
use cdnc_geo::cluster_by_location;
use cdnc_trace::Trace;
use std::fmt;

/// Everything the §3 pipeline concludes about a crawled CDN.
#[derive(Debug, Clone, PartialEq)]
pub struct CdnVerdict {
    /// The inferred content TTL, seconds (paper: 60 s).
    pub inferred_ttl_s: Option<f64>,
    /// RMSE of the uniform-staleness theory at the inferred TTL.
    pub theory_fit_rmse: Option<f64>,
    /// Mean inconsistency length across all requests, seconds.
    pub mean_inconsistency_s: f64,
    /// Estimated fraction of the inconsistency explained by the TTL alone
    /// (paper: ≈ 75 %).
    pub ttl_contribution: f64,
    /// Mean origin-replica inconsistency, seconds (paper: negligible).
    pub origin_inconsistency_s: f64,
    /// Provider response-time range, seconds (paper: [0.5, 2.1] — no
    /// congestion).
    pub provider_response_range_s: (f64, f64),
    /// Detected server absences across the trace.
    pub absences: usize,
    /// Day-to-day rank churn of geographic clusters (0 would indicate a
    /// static multicast tree).
    pub cluster_rank_churn: f64,
    /// Fraction of absence-free servers whose daily max inconsistency stays
    /// below the inferred TTL + delay slack (large ⇒ no multicast layering).
    pub max_inconsistency_bounded_fraction: f64,
    /// The architecture deduction (the paper's Fig. 13 conclusion).
    pub uses_unicast_ttl: bool,
}

impl fmt::Display for CdnVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CDN measurement verdict (paper §3.6):")?;
        match self.inferred_ttl_s {
            Some(ttl) => writeln!(
                f,
                "  content TTL ≈ {ttl:.0}s (theory fit RMSE {:.3})",
                self.theory_fit_rmse.unwrap_or(f64::NAN)
            )?,
            None => writeln!(f, "  content TTL could not be inferred")?,
        }
        writeln!(
            f,
            "  mean inconsistency {:.1}s — ≈{:.0}% attributable to the TTL",
            self.mean_inconsistency_s,
            100.0 * self.ttl_contribution
        )?;
        writeln!(
            f,
            "  origin: {:.1}s mean inconsistency; responses within [{:.2}, {:.2}]s",
            self.origin_inconsistency_s,
            self.provider_response_range_s.0,
            self.provider_response_range_s.1
        )?;
        writeln!(
            f,
            "  {} absences detected; cluster rank churn {:.2}; {:.0}% of maxima TTL-bounded",
            self.absences,
            self.cluster_rank_churn,
            100.0 * self.max_inconsistency_bounded_fraction
        )?;
        write!(
            f,
            "  architecture: {}",
            if self.uses_unicast_ttl {
                "servers poll the provider directly (unicast + TTL)"
            } else {
                "evidence of an update-distribution layer (NOT plain unicast TTL)"
            }
        )
    }
}

/// Runs the full §3 pipeline over a trace and renders its conclusions.
///
/// # Panics
///
/// Panics if the trace has no days.
pub fn analyze(trace: &Trace) -> CdnVerdict {
    assert!(!trace.days.is_empty(), "empty trace");
    // Inconsistency lengths and TTL inference (Figs. 3, 6).
    let lengths: Vec<f64> = trace
        .days
        .iter()
        .flat_map(|day| day_episodes(day, &trace.servers, None))
        .map(|e| e.length_s)
        .collect();
    let mean_inconsistency_s =
        if lengths.is_empty() { 0.0 } else { lengths.iter().sum::<f64>() / lengths.len() as f64 };
    // The paper anchors the candidate window with the recursive refinement
    // (TTL' = 2·E'[I]) and then grid-searches around it; a fully open grid
    // has spurious minima at small candidates (any small-T sub-sample looks
    // locally uniform).
    let inferred_ttl_s = refine_ttl(&lengths, 1e-4, 200).and_then(|anchor| {
        let lo = (anchor * 0.7).max(4.0) as u64;
        let hi = (anchor * 1.3) as u64;
        let candidates: Vec<f64> = (lo..=hi.max(lo + 2)).step_by(2).map(|c| c as f64).collect();
        infer_ttl(&lengths, &candidates)
    });
    let theory_fit_rmse = inferred_ttl_s.and_then(|ttl| theory_rmse(&lengths, ttl, 61));
    // The paper's §3.4.6 attribution: a pure-TTL CDN would average TTL/2;
    // everything above that is the other causes.
    let ttl_contribution = match inferred_ttl_s {
        Some(ttl) if mean_inconsistency_s > 0.0 => ((ttl / 2.0) / mean_inconsistency_s).min(1.0),
        _ => 0.0,
    };
    // Origin health (Figs. 7, 10(a)).
    let origin: Vec<f64> = trace.days.iter().flat_map(provider_inconsistency_lengths).collect();
    let origin_inconsistency_s =
        if origin.is_empty() { 0.0 } else { origin.iter().sum::<f64>() / origin.len() as f64 };
    let rt = provider_response_times(&trace.days[0]);
    let provider_response_range_s = (rt.min().unwrap_or(0.0), rt.max().unwrap_or(0.0));
    // Absences (Fig. 10(b)).
    let absences: usize =
        trace.days.iter().map(|d| detect_absences(d, trace.poll_interval).len()).sum();
    // Tree-existence tests (Figs. 11–12).
    let points: Vec<_> = trace.servers.iter().map(|s| s.location).collect();
    let groups: Vec<Vec<u32>> = cluster_by_location(&points, 0)
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|c| c.members.into_iter().map(|m| m as u32).collect())
        .collect();
    let cluster_rank_churn = if groups.len() >= 3 && trace.days.len() >= 2 {
        let means = group_daily_mean_inconsistency(trace, &groups);
        rank_churn(&daily_ranks(&means))
    } else {
        0.0
    };
    let slack_ttl = inferred_ttl_s.unwrap_or(60.0) * 1.5;
    let max_inconsistency_bounded_fraction = fraction_below_ttl(trace, 0, slack_ttl);
    // The deduction: a CDN is "unicast + TTL" when the theory fits, maxima
    // are TTL-bounded for most servers, and no stable layering shows up.
    let theory_fits = theory_fit_rmse.is_some_and(|r| r < 0.25);
    let churn_is_high = trace.days.len() < 2 || groups.len() < 3 || cluster_rank_churn > 0.05;
    let uses_unicast_ttl = theory_fits && max_inconsistency_bounded_fraction > 0.5 && churn_is_high;
    CdnVerdict {
        inferred_ttl_s,
        theory_fit_rmse,
        mean_inconsistency_s,
        ttl_contribution,
        origin_inconsistency_s,
        provider_response_range_s,
        absences,
        cluster_rank_churn,
        max_inconsistency_bounded_fraction,
        uses_unicast_ttl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_trace::{crawl, CrawlConfig};

    fn trace() -> Trace {
        crawl(&CrawlConfig { servers: 60, users: 25, days: 2, seed: 3, ..CrawlConfig::tiny() })
    }

    #[test]
    fn verdict_matches_ground_truth() {
        let v = analyze(&trace());
        let ttl = v.inferred_ttl_s.expect("TTL inferable");
        assert!((50.0..=76.0).contains(&ttl), "inferred {ttl}");
        assert!(v.uses_unicast_ttl, "the ground truth IS unicast + TTL: {v}");
        assert!((0.4..1.0).contains(&v.ttl_contribution), "TTL share {}", v.ttl_contribution);
        assert!(v.origin_inconsistency_s < v.mean_inconsistency_s / 2.0);
        assert!(v.provider_response_range_s.0 >= 0.5);
        assert!(v.provider_response_range_s.1 <= 2.1 + 1e-9);
        assert!(v.absences > 0);
    }

    #[test]
    fn verdict_renders_readably() {
        let v = analyze(&trace());
        let text = v.to_string();
        assert!(text.contains("content TTL"));
        assert!(text.contains("unicast + TTL"));
        assert!(text.contains('%'));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let mut t = trace();
        t.days.clear();
        analyze(&t);
    }
}
