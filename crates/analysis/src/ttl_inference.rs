//! TTL inference by recursive refinement (paper §3.4.1, Figs. 5–6).
//!
//! Under pure TTL polling, a server's staleness for an update is uniform on
//! `[0, TTL]`, so `E[I] = TTL/2`. The paper inverts this: starting from the
//! observed mean inconsistency, it repeatedly computes `TTL' = 2·E'[I]`
//! restricted to lengths ≤ the previous candidate, and picks the candidate
//! with the smallest deviation. It then validates the winner by comparing
//! the empirical CDF of lengths ≤ TTL against the uniform-theory CDF via
//! RMSE (0.0462 at the true 60 s vs 0.0955 at 80 s in the paper).

use cdnc_simcore::stats::{rmse, Cdf};

/// The deviation statistic for one candidate TTL: how far the candidate is
/// from twice the mean of the lengths it would explain,
/// `|2·mean(lengths ≤ T) − T| / T`.
///
/// Returns `None` when no lengths fall at or below `candidate`.
pub fn ttl_deviation(lengths_s: &[f64], candidate_s: f64) -> Option<f64> {
    assert!(candidate_s > 0.0, "candidate TTL must be positive");
    let below: Vec<f64> = lengths_s.iter().copied().filter(|&l| l <= candidate_s).collect();
    if below.is_empty() {
        return None;
    }
    let mean = below.iter().sum::<f64>() / below.len() as f64;
    Some((2.0 * mean - candidate_s).abs() / candidate_s)
}

/// Evaluates [`ttl_deviation`] across a candidate grid — the Fig. 6(a)
/// curve. Candidates with no explicable lengths are omitted.
pub fn deviation_curve(lengths_s: &[f64], candidates_s: &[f64]) -> Vec<(f64, f64)> {
    candidates_s.iter().filter_map(|&c| ttl_deviation(lengths_s, c).map(|d| (c, d))).collect()
}

/// Infers the TTL as the candidate with the smallest deviation.
///
/// Returns `None` when no candidate explains any data.
pub fn infer_ttl(lengths_s: &[f64], candidates_s: &[f64]) -> Option<f64> {
    deviation_curve(lengths_s, candidates_s)
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite deviations"))
        .map(|(c, _)| c)
}

/// The paper's §3.4.1 recursive refinement, starting from `TTL' = 2·E'[I]`
/// and iterating `TTL'' = 2·E[I | I ≤ TTL']` until the relative change drops
/// below `tol` (or `max_iters` is hit). Returns the fixed point.
///
/// Returns `None` when `lengths_s` is empty.
pub fn refine_ttl(lengths_s: &[f64], tol: f64, max_iters: usize) -> Option<f64> {
    if lengths_s.is_empty() {
        return None;
    }
    let mut candidate = 2.0 * lengths_s.iter().sum::<f64>() / lengths_s.len() as f64;
    for _ in 0..max_iters {
        let below: Vec<f64> = lengths_s.iter().copied().filter(|&l| l <= candidate).collect();
        if below.is_empty() {
            return Some(candidate);
        }
        let next = 2.0 * below.iter().sum::<f64>() / below.len() as f64;
        let deviation = (next - candidate).abs() / candidate;
        candidate = next;
        if deviation < tol {
            break;
        }
    }
    Some(candidate)
}

/// RMSE between the empirical CDF of lengths ≤ `ttl_s` and the uniform
/// `[0, TTL]` theory CDF, evaluated on `points` evenly spaced x values —
/// the Fig. 6(b) validation statistic.
///
/// Returns `None` when no lengths fall at or below `ttl_s`.
pub fn theory_rmse(lengths_s: &[f64], ttl_s: f64, points: usize) -> Option<f64> {
    assert!(ttl_s > 0.0 && points >= 2, "bad theory_rmse inputs");
    let below: Vec<f64> = lengths_s.iter().copied().filter(|&l| l <= ttl_s).collect();
    if below.is_empty() {
        return None;
    }
    let cdf = Cdf::from_samples(below);
    let mut empirical = Vec::with_capacity(points);
    let mut theory = Vec::with_capacity(points);
    for i in 0..points {
        let x = ttl_s * i as f64 / (points - 1) as f64;
        empirical.push(cdf.fraction_at_most(x));
        theory.push(x / ttl_s);
    }
    Some(rmse(&empirical, &theory))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_simcore::SimRng;

    /// Synthetic staleness sample: U[0, ttl] plus occasional extra delay.
    fn synthetic_lengths(ttl: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = rng.uniform_range(0.0, ttl);
                if rng.chance(0.15) {
                    base + rng.exponential(1.0 / 20.0) // non-TTL causes
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn deviation_minimised_near_true_ttl() {
        let lengths = synthetic_lengths(60.0, 50_000, 1);
        let candidates: Vec<f64> = (40..=80).map(|c| c as f64).collect();
        let inferred = infer_ttl(&lengths, &candidates).unwrap();
        assert!((55.0..=66.0).contains(&inferred), "inferred TTL {inferred} should be near 60");
    }

    #[test]
    fn refinement_converges_near_truth() {
        let lengths = synthetic_lengths(60.0, 50_000, 2);
        let ttl = refine_ttl(&lengths, 1e-4, 100).unwrap();
        assert!((50.0..=70.0).contains(&ttl), "refined TTL {ttl}");
    }

    #[test]
    fn true_ttl_has_lower_rmse_than_wrong_ttl() {
        let lengths = synthetic_lengths(60.0, 50_000, 3);
        let at_60 = theory_rmse(&lengths, 60.0, 61).unwrap();
        let at_80 = theory_rmse(&lengths, 80.0, 81).unwrap();
        assert!(at_60 < at_80, "RMSE at the true TTL ({at_60}) must beat the wrong one ({at_80})");
        assert!(at_60 < 0.08, "true-TTL RMSE should be small, got {at_60}");
    }

    #[test]
    fn pure_uniform_is_nearly_exact() {
        let mut rng = SimRng::seed_from_u64(4);
        let lengths: Vec<f64> = (0..100_000).map(|_| rng.uniform_range(0.0, 60.0)).collect();
        let dev = ttl_deviation(&lengths, 60.0).unwrap();
        assert!(dev < 0.01, "uniform sample deviation {dev}");
        let r = theory_rmse(&lengths, 60.0, 61).unwrap();
        assert!(r < 0.01, "uniform sample rmse {r}");
    }

    #[test]
    fn empty_and_unexplainable_inputs() {
        assert_eq!(refine_ttl(&[], 1e-3, 10), None);
        assert_eq!(ttl_deviation(&[100.0], 50.0), None);
        assert_eq!(theory_rmse(&[100.0], 50.0, 10), None);
        assert_eq!(infer_ttl(&[100.0], &[50.0]), None);
    }

    #[test]
    fn deviation_curve_matches_pointwise() {
        let lengths = synthetic_lengths(60.0, 1_000, 5);
        let curve = deviation_curve(&lengths, &[50.0, 60.0, 70.0]);
        assert_eq!(curve.len(), 3);
        for (c, d) in curve {
            assert_eq!(Some(d), ttl_deviation(&lengths, c));
        }
    }
}
