//! Multicast-tree existence tests (paper §3.5, Figs. 11–12).
//!
//! The paper rules out a multicast update infrastructure two ways:
//!
//! * **Static tree** (Fig. 11): if clusters/servers sat at fixed tree
//!   layers, their relative inconsistency ranking would be stable across
//!   days. Measured ranks churn heavily → no static tree.
//! * **Dynamic tree** (Fig. 12): under any tree, nodes below the second
//!   layer would show daily *maximum* inconsistency above one TTL. Most
//!   servers stay below the TTL → servers poll the provider directly.

use crate::inconsistency::{corrected_polls_by_server, episodes_of_server, first_appearances_for};
use cdnc_simcore::stats::Cdf;
use cdnc_trace::Trace;
use std::collections::HashMap;

/// Mean inconsistency per group per day.
///
/// `groups[g]` lists the server ids of group `g` (e.g. a geographic
/// cluster, or a single server). Returns `means[g][d]`.
pub fn group_daily_mean_inconsistency(trace: &Trace, groups: &[Vec<u32>]) -> Vec<Vec<f64>> {
    let mut means = vec![vec![0.0; trace.days.len()]; groups.len()];
    for (d, day) in trace.days.iter().enumerate() {
        let polls = corrected_polls_by_server(day, &trace.servers);
        let alpha = first_appearances_for(&polls, None);
        for (g, group) in groups.iter().enumerate() {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &s in group {
                if let Some(server_polls) = polls.get(&s) {
                    for e in episodes_of_server(s, server_polls, &alpha) {
                        sum += e.length_s;
                        n += 1;
                    }
                }
            }
            means[g][d] = if n == 0 { 0.0 } else { sum / n as f64 };
        }
    }
    means
}

/// Ranks per day: `ranks[g][d]` is the rank (1 = most consistent) of group
/// `g` on day `d` by mean inconsistency.
pub fn daily_ranks(means: &[Vec<f64>]) -> Vec<Vec<usize>> {
    if means.is_empty() {
        return Vec::new();
    }
    let days = means[0].len();
    let mut ranks = vec![vec![0usize; days]; means.len()];
    for d in 0..days {
        let mut order: Vec<usize> = (0..means.len()).collect();
        order.sort_by(|&a, &b| {
            means[a][d].partial_cmp(&means[b][d]).expect("finite").then(a.cmp(&b))
        });
        for (rank, &g) in order.iter().enumerate() {
            ranks[g][d] = rank + 1;
        }
    }
    ranks
}

/// Average absolute day-to-day rank movement, normalised by the group
/// count: 0 = perfectly stable ranking (tree-like), values approaching
/// ~0.33 = fully random re-ranking.
pub fn rank_churn(ranks: &[Vec<usize>]) -> f64 {
    if ranks.is_empty() || ranks[0].len() < 2 {
        return 0.0;
    }
    let n = ranks.len() as f64;
    let days = ranks[0].len();
    let mut total = 0.0;
    let mut moves = 0u64;
    for group in ranks {
        for d in 1..days {
            total += group[d].abs_diff(group[d - 1]) as f64;
            moves += 1;
        }
    }
    total / moves as f64 / n
}

/// The min and max of each group's daily means (the Fig. 11(a) whiskers).
pub fn min_max_daily_means(means: &[Vec<f64>]) -> Vec<(f64, f64)> {
    means
        .iter()
        .map(|days| {
            let mn = days.iter().copied().fold(f64::INFINITY, f64::min);
            let mx = days.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (mn, mx)
        })
        .collect()
}

/// Per-server daily **maximum** inconsistency for one day, excluding
/// servers with any detected absence that day (the paper removes them to
/// isolate tree effects). Returns a CDF of the maxima (Fig. 12).
pub fn max_inconsistency_cdf(trace: &Trace, day_index: usize) -> Cdf {
    let day = &trace.days[day_index];
    let polls = corrected_polls_by_server(day, &trace.servers);
    let alpha = first_appearances_for(&polls, None);
    // Servers with an absence: a gap over the poll interval.
    let absences = crate::causes::detect_absences(day, trace.poll_interval);
    let absent: Vec<u32> = absences.iter().map(|a| a.server).collect();
    let mut maxima = Vec::new();
    let mut by_server: HashMap<u32, f64> = HashMap::new();
    for (&server, server_polls) in &polls {
        if absent.contains(&server) {
            continue;
        }
        for e in episodes_of_server(server, server_polls, &alpha) {
            let entry = by_server.entry(server).or_insert(0.0);
            *entry = entry.max(e.length_s);
        }
    }
    let mut servers: Vec<u32> = by_server.keys().copied().collect();
    servers.sort_unstable();
    for s in servers {
        maxima.push(by_server[&s]);
    }
    Cdf::from_samples(maxima)
}

/// The dynamic-tree verdict for one day: the fraction of (absence-free)
/// servers whose daily maximum inconsistency stays below `ttl_s`. The paper
/// observes 76.7 % and 86.9 % on its two sampled days — large majorities,
/// contradicting a multicast tree (which would put most servers in deep
/// layers with maxima above one TTL).
pub fn fraction_below_ttl(trace: &Trace, day_index: usize, ttl_s: f64) -> f64 {
    let cdf = max_inconsistency_cdf(trace, day_index);
    if cdf.is_empty() {
        return 1.0;
    }
    cdf.fraction_at_most(ttl_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_geo::cluster_by_location;
    use cdnc_trace::{crawl, CrawlConfig};

    fn mini_trace() -> Trace {
        crawl(&CrawlConfig { servers: 50, users: 15, days: 3, ..CrawlConfig::tiny() })
    }

    fn geo_groups(trace: &Trace) -> Vec<Vec<u32>> {
        let points: Vec<_> = trace.servers.iter().map(|s| s.location).collect();
        cluster_by_location(&points, 0)
            .into_iter()
            .map(|c| c.members.into_iter().map(|m| m as u32).collect())
            .collect()
    }

    #[test]
    fn cluster_means_vary_across_days() {
        let trace = mini_trace();
        let groups = geo_groups(&trace);
        let means = group_daily_mean_inconsistency(&trace, &groups);
        let minmax = min_max_daily_means(&means);
        // At least half the clusters show meaningful day-to-day variation —
        // the Fig. 11(a) signature of a tree-free CDN.
        let varying = minmax.iter().filter(|&&(mn, mx)| mx > mn * 1.05 && mx > 0.0).count();
        assert!(
            varying * 2 >= minmax.len(),
            "expected most clusters to vary: {varying}/{}",
            minmax.len()
        );
    }

    #[test]
    fn ranks_churn_like_no_tree() {
        let trace = mini_trace();
        let groups = geo_groups(&trace);
        let means = group_daily_mean_inconsistency(&trace, &groups);
        let ranks = daily_ranks(&means);
        let churn = rank_churn(&ranks);
        assert!(churn > 0.02, "TTL-over-unicast ground truth must churn ranks, got {churn}");
    }

    #[test]
    fn stable_means_have_zero_churn() {
        // Identical means every day → ranks frozen → churn 0.
        let means = vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0], vec![3.0, 3.0, 3.0]];
        let ranks = daily_ranks(&means);
        assert_eq!(rank_churn(&ranks), 0.0);
        assert_eq!(ranks[0], vec![1, 1, 1]);
        assert_eq!(ranks[2], vec![3, 3, 3]);
    }

    #[test]
    fn majority_of_maxima_below_ttl() {
        // The Fig. 12 verdict: under the TTL-60 unicast ground truth, the
        // majority of absence-free servers peak below ~TTL.
        let trace = mini_trace();
        let frac = fraction_below_ttl(&trace, 0, 80.0);
        assert!(
            frac > 0.5,
            "unicast ground truth must keep most maxima below TTL + slack, got {frac}"
        );
    }

    #[test]
    fn rank_helpers_handle_empty() {
        assert!(daily_ranks(&[]).is_empty());
        assert_eq!(rank_churn(&[]), 0.0);
        assert!(min_max_daily_means(&[]).is_empty());
    }
}
