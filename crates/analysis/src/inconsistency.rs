//! The paper's core inconsistency methodology (§3.1).
//!
//! For each snapshot `C_i`, let `α(C_i)` be the first time `C_i` appears in
//! anyone's polls (a good proxy for its publish time, given many servers).
//! For a server `s`, let `β_s(C_i)` be the last time `s` served `C_i`. The
//! inconsistency length of that stale episode is `β_s(C_i) − α(C_next)`
//! where `C_next` is the next snapshot observed globally after `C_i`: the
//! time `s` kept serving expired content.
//!
//! All timestamps are the *corrected* server GMT times (skew removed via
//! the crawler's RTT/2 estimate), exactly as §3.1 prescribes.

use cdnc_simcore::SimTime;
use cdnc_trace::{DayTrace, ServerMeta, SnapshotId};
use std::collections::HashMap;

/// First global appearance time of each snapshot in a set of polls.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FirstAppearances {
    alpha: HashMap<SnapshotId, SimTime>,
    /// Observed snapshot ids, ascending.
    observed: Vec<SnapshotId>,
}

impl FirstAppearances {
    /// Builds the α table from `(snapshot, corrected time)` pairs.
    pub fn from_observations<I>(observations: I) -> Self
    where
        I: IntoIterator<Item = (SnapshotId, SimTime)>,
    {
        let mut alpha: HashMap<SnapshotId, SimTime> = HashMap::new();
        for (snap, t) in observations {
            alpha
                .entry(snap)
                .and_modify(|cur| {
                    if t < *cur {
                        *cur = t;
                    }
                })
                .or_insert(t);
        }
        let mut observed: Vec<SnapshotId> = alpha.keys().copied().collect();
        observed.sort_unstable();
        Self { alpha, observed }
    }

    /// α of one snapshot, if it ever appeared.
    pub fn alpha(&self, snap: SnapshotId) -> Option<SimTime> {
        self.alpha.get(&snap).copied()
    }

    /// The first snapshot observed after `snap` (by id) and its α.
    pub fn successor(&self, snap: SnapshotId) -> Option<(SnapshotId, SimTime)> {
        let idx = self.observed.partition_point(|&s| s <= snap);
        self.observed.get(idx).map(|&s| (s, self.alpha[&s]))
    }

    /// Number of distinct snapshots observed.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// `true` when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// Snapshot ids observed, ascending.
    pub fn observed(&self) -> &[SnapshotId] {
        &self.observed
    }
}

/// One stale episode on one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// The server.
    pub server: u32,
    /// The snapshot served while stale.
    pub snapshot: SnapshotId,
    /// `β_s(C_i) − α(C_next)`, seconds (> 0 by construction).
    pub length_s: f64,
    /// When the episode ended (β), corrected time.
    pub end: SimTime,
    /// Number of polls observed inside the stale window.
    pub stale_polls: u32,
}

/// A server's polls with corrected timestamps, time-ordered.
pub type CorrectedPolls = Vec<(SimTime, SnapshotId)>;

/// Extracts each server's corrected, time-ordered poll sequence for one day.
pub fn corrected_polls_by_server(
    day: &DayTrace,
    servers: &[ServerMeta],
) -> HashMap<u32, CorrectedPolls> {
    let mut map: HashMap<u32, CorrectedPolls> = HashMap::new();
    for p in &day.server_polls {
        let meta = &servers[p.server as usize];
        map.entry(p.server).or_default().push((p.corrected_time(meta), p.snapshot));
    }
    for polls in map.values_mut() {
        polls.sort_by_key(|&(t, _)| t);
    }
    map
}

/// Builds the α table over a subset of servers' corrected polls (or all
/// servers when `subset` is `None`).
pub fn first_appearances_for(
    polls_by_server: &HashMap<u32, CorrectedPolls>,
    subset: Option<&[u32]>,
) -> FirstAppearances {
    let iter: Box<dyn Iterator<Item = (SnapshotId, SimTime)> + '_> = match subset {
        Some(ids) => Box::new(
            ids.iter().filter_map(|id| polls_by_server.get(id)).flatten().map(|&(t, s)| (s, t)),
        ),
        None => Box::new(polls_by_server.values().flatten().map(|&(t, s)| (s, t))),
    };
    FirstAppearances::from_observations(iter)
}

/// Finds every stale episode of one server against a given α table.
pub fn episodes_of_server(
    server: u32,
    polls: &CorrectedPolls,
    alpha: &FirstAppearances,
) -> Vec<Episode> {
    let mut episodes = Vec::new();
    let mut run_start = 0usize;
    for i in 0..polls.len() {
        let is_run_end = i + 1 == polls.len() || polls[i + 1].1 != polls[i].1;
        if !is_run_end {
            continue;
        }
        let (beta, snap) = polls[i];
        if let Some((_, alpha_next)) = alpha.successor(snap) {
            if beta > alpha_next {
                let length_s = beta.since(alpha_next).as_secs_f64();
                let stale_polls =
                    polls[run_start..=i].iter().filter(|&&(t, _)| t >= alpha_next).count() as u32;
                episodes.push(Episode { server, snapshot: snap, length_s, end: beta, stale_polls });
            }
        }
        run_start = i + 1;
    }
    episodes
}

/// All stale episodes for one day across a server subset (or all servers).
pub fn day_episodes(
    day: &DayTrace,
    servers: &[ServerMeta],
    subset: Option<&[u32]>,
) -> Vec<Episode> {
    let polls = corrected_polls_by_server(day, servers);
    let alpha = first_appearances_for(&polls, subset);
    let mut ids: Vec<u32> = match subset {
        Some(ids) => ids.to_vec(),
        None => polls.keys().copied().collect(),
    };
    ids.sort_unstable();
    ids.iter()
        .filter_map(|id| polls.get(id).map(|p| episodes_of_server(*id, p, &alpha)))
        .flatten()
        .collect()
}

/// The consistency ratio of a server over a session:
/// `1 − Σ inconsistency lengths / session length` (paper §3.4.3).
pub fn consistency_ratio(episodes: &[Episode], session_s: f64) -> f64 {
    assert!(session_s > 0.0, "session length must be positive");
    let total: f64 = episodes.iter().map(|e| e.length_s).sum();
    (1.0 - total / session_s).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn c(i: u32) -> SnapshotId {
        SnapshotId(i)
    }

    #[test]
    fn alpha_is_earliest_observation() {
        let fa = FirstAppearances::from_observations(vec![
            (c(1), t(30)),
            (c(0), t(0)),
            (c(1), t(20)),
            (c(2), t(50)),
        ]);
        assert_eq!(fa.alpha(c(1)), Some(t(20)));
        assert_eq!(fa.alpha(c(3)), None);
        assert_eq!(fa.len(), 3);
        assert_eq!(fa.successor(c(0)), Some((c(1), t(20))));
        assert_eq!(fa.successor(c(2)), None);
    }

    #[test]
    fn successor_skips_unobserved_ids() {
        // C1 was never observed anywhere: C0's successor is C2.
        let fa = FirstAppearances::from_observations(vec![(c(0), t(0)), (c(2), t(40))]);
        assert_eq!(fa.successor(c(0)), Some((c(2), t(40))));
    }

    #[test]
    fn episode_extraction() {
        // Server keeps serving C0 until t=45 while C1 first appeared (on
        // some other server) at t=20: episode length 25.
        let alpha = FirstAppearances::from_observations(vec![(c(0), t(0)), (c(1), t(20))]);
        let polls: CorrectedPolls = vec![
            (t(5), c(0)),
            (t(15), c(0)),
            (t(25), c(0)),
            (t(35), c(0)),
            (t(45), c(0)),
            (t(55), c(1)),
        ];
        let eps = episodes_of_server(7, &polls, &alpha);
        assert_eq!(eps.len(), 1);
        let e = eps[0];
        assert_eq!(e.server, 7);
        assert_eq!(e.snapshot, c(0));
        assert!((e.length_s - 25.0).abs() < 1e-9);
        assert_eq!(e.end, t(45));
        assert_eq!(e.stale_polls, 3); // polls at 25, 35, 45
    }

    #[test]
    fn fresh_server_has_no_episodes() {
        let alpha = FirstAppearances::from_observations(vec![(c(0), t(0)), (c(1), t(20))]);
        // Server adopts C1 before any poll after α.
        let polls: CorrectedPolls = vec![(t(5), c(0)), (t(15), c(0)), (t(25), c(1))];
        assert!(episodes_of_server(0, &polls, &alpha).is_empty());
    }

    #[test]
    fn skipped_versions_form_one_episode() {
        // Server jumps C0 -> C3; α(C1)=20 bounds the staleness of the C0 run.
        let alpha = FirstAppearances::from_observations(vec![
            (c(0), t(0)),
            (c(1), t(20)),
            (c(2), t(30)),
            (c(3), t(40)),
        ]);
        let polls: CorrectedPolls = vec![(t(10), c(0)), (t(50), c(0)), (t(60), c(3))];
        let eps = episodes_of_server(0, &polls, &alpha);
        assert_eq!(eps.len(), 1);
        assert!((eps[0].length_s - 30.0).abs() < 1e-9); // 50 − α(C1)=20
    }

    #[test]
    fn consistency_ratio_bounds() {
        let eps = vec![
            Episode { server: 0, snapshot: c(0), length_s: 30.0, end: t(100), stale_polls: 3 },
            Episode { server: 0, snapshot: c(1), length_s: 20.0, end: t(200), stale_polls: 2 },
        ];
        assert!((consistency_ratio(&eps, 1_000.0) - 0.95).abs() < 1e-12);
        assert_eq!(consistency_ratio(&[], 1_000.0), 1.0);
        // Pathological overflow clamps at zero.
        assert_eq!(consistency_ratio(&eps, 10.0), 0.0);
    }

    #[test]
    fn empty_appearances() {
        let fa = FirstAppearances::default();
        assert!(fa.is_empty());
        assert_eq!(fa.successor(c(0)), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random monotone poll sequence: times increase, snapshots are
        /// non-decreasing (a server never serves older content than it just
        /// served).
        fn arb_polls() -> impl Strategy<Value = CorrectedPolls> {
            proptest::collection::vec((1u64..30, 0u32..3), 0..80).prop_map(|steps| {
                let mut t = 0u64;
                let mut snap = 0u32;
                let mut polls = Vec::with_capacity(steps.len());
                for (dt, ds) in steps {
                    t += dt;
                    snap += ds;
                    polls.push((SimTime::from_secs(t), SnapshotId(snap)));
                }
                polls
            })
        }

        proptest! {
            /// Episode invariants: positive lengths, time-ordered ends,
            /// snapshots strictly increasing across episodes, and every
            /// episode's β is actually after its successor's α.
            #[test]
            fn prop_episode_invariants(polls in arb_polls(),
                                       other in arb_polls()) {
                let alpha = FirstAppearances::from_observations(
                    polls.iter().chain(&other).map(|&(t, s)| (s, t)),
                );
                let eps = episodes_of_server(0, &polls, &alpha);
                for w in eps.windows(2) {
                    prop_assert!(w[0].end <= w[1].end);
                    prop_assert!(w[0].snapshot < w[1].snapshot);
                }
                for e in &eps {
                    prop_assert!(e.length_s > 0.0);
                    prop_assert!(e.stale_polls >= 1);
                    let (_, a) = alpha.successor(e.snapshot).expect("successor exists");
                    prop_assert!(e.end > a);
                    prop_assert!((e.end.since(a).as_secs_f64() - e.length_s).abs() < 1e-9);
                }
            }

            /// Consistency ratio stays in [0, 1] for any session at least
            /// as long as the observed staleness.
            #[test]
            fn prop_ratio_bounded(polls in arb_polls()) {
                let alpha = FirstAppearances::from_observations(
                    polls.iter().map(|&(t, s)| (s, t)),
                );
                let eps = episodes_of_server(0, &polls, &alpha);
                let ratio = consistency_ratio(&eps, 1e7);
                prop_assert!((0.0..=1.0).contains(&ratio));
            }
        }
    }
}
