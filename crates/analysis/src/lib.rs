//! # cdnc-analysis
//!
//! The paper's §3 measurement-analysis pipeline, operating on crawl traces
//! from [`cdnc_trace`]:
//!
//! * [`inconsistency`] — the α/β stale-episode methodology and consistency
//!   ratios (Figs. 3, 5);
//! * [`ttl_inference`] — recursive TTL refinement and the uniform-theory
//!   RMSE validation (Fig. 6);
//! * [`user_view`] — redirect fractions, self-inconsistency, continuous
//!   (in)consistency times (Fig. 4);
//! * [`causes`] — provider inconsistency, distance correlation, intra/inter
//!   ISP breakdown, provider response times, absence effects (Figs. 7–10);
//! * [`tree_test`] — static/dynamic multicast-tree existence tests
//!   (Figs. 11–12);
//! * [`verdict`] — the whole pipeline fused into the paper's §3.6
//!   conclusion: which method/infrastructure the measured CDN runs.
//!
//! Every analysis consumes only what a real crawler could record
//! (poll records and skew *estimates*), so the pipeline would run unchanged
//! on a real trace.
//!
//! # Examples
//!
//! ```
//! use cdnc_analysis::inconsistency::day_episodes;
//! use cdnc_trace::{crawl, CrawlConfig};
//!
//! let trace = crawl(&CrawlConfig { servers: 20, users: 5, days: 1, ..CrawlConfig::tiny() });
//! let episodes = day_episodes(&trace.days[0], &trace.servers, None);
//! assert!(!episodes.is_empty(), "a TTL-60 CDN shows stale episodes");
//! ```

pub mod causes;
pub mod inconsistency;
pub mod tree_test;
pub mod ttl_inference;
pub mod user_view;
pub mod verdict;

pub use inconsistency::{day_episodes, Episode, FirstAppearances};
pub use ttl_inference::{deviation_curve, infer_ttl, refine_ttl, theory_rmse};
pub use verdict::{analyze, CdnVerdict};
