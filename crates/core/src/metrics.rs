//! Simulation output metrics.
//!
//! The paper reports, per run: the average inconsistency of each content
//! server and each end-user (Figs. 14–15, 18–20), the traffic cost in km·KB
//! (Figs. 16–17), update-message counts overall and from the provider
//! (Fig. 22), network load in km split by message class (Fig. 23), and the
//! fraction of user observations that were inconsistent (Fig. 24).
//! [`SimReport`] carries all of them.

use cdnc_net::TrafficStats;
use cdnc_simcore::stats::Cdf;

/// Request-plane (workload) tallies and samples for one run.
///
/// All-zero/empty when the run had no workload plan, so `SimReport`
/// equality still captures the `workload: None` bit-identity contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadStats {
    /// User requests issued.
    pub requests: u64,
    /// Requests served straight from an edge cache.
    pub hits: u64,
    /// Requests coalesced behind an in-flight origin fetch.
    pub delayed_hits: u64,
    /// Requests that started an origin fetch (includes serve-time
    /// revalidations of copies the edge believed stale).
    pub misses: u64,
    /// Cache entries evicted by capacity pressure.
    pub evictions: u64,
    /// Origin fetches issued (= `misses`; kept separate for the keyval
    /// surface).
    pub origin_fetches: u64,
    /// Object bytes fetched from the origin, KB.
    pub origin_kb: f64,
    /// Catalog publish/perish churn events.
    pub churn_events: u64,
    /// Delayed-hit waiters released as unanswered misses because their edge
    /// departed (or crash-restarted) while the origin fetch was in flight
    /// (lifecycle-churn runs only).
    pub waiters_aborted: u64,
    /// Origin-fetch payloads that landed at an edge whose in-flight entry
    /// was gone — the edge departed mid-fetch; the payload is dropped but
    /// its wire cost still counts (lifecycle-churn runs only).
    pub orphan_fills: u64,
    /// Per-request user-perceived latency, seconds (hits are 0; delayed
    /// hits and misses wait for their fill). Requests whose fill was still
    /// in flight at the horizon are not sampled.
    pub latency_s: Vec<f64>,
    /// Staleness-served per live-object serve, seconds: how far behind the
    /// provider head the served copy was at serve time (0 = head).
    pub staleness_served_s: Vec<f64>,
}

impl WorkloadStats {
    /// Cache hit rate over all requests (plain + delayed hits), in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.hits + self.delayed_hits) as f64 / self.requests as f64
        }
    }

    /// Percentile of the user-perceived latency distribution, seconds.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        Cdf::from_samples(self.latency_s.iter().copied()).percentile(p)
    }

    /// Mean staleness-served over live-object serves, seconds.
    pub fn mean_staleness_served_s(&self) -> f64 {
        if self.staleness_served_s.is_empty() {
            0.0
        } else {
            self.staleness_served_s.iter().sum::<f64>() / self.staleness_served_s.len() as f64
        }
    }

    /// Percentile of the staleness-served distribution, seconds.
    pub fn staleness_percentile(&self, p: f64) -> Option<f64> {
        Cdf::from_samples(self.staleness_served_s.iter().copied()).percentile(p)
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The scheme's §5 label ("Push", "HAT", …).
    pub scheme_label: String,
    /// Per-server mean inconsistency (adoption lag behind the provider),
    /// seconds; index = server order.
    pub server_mean_lag_s: Vec<f64>,
    /// Per-user mean inconsistency (lag between a publish and the user first
    /// seeing content at least that new), seconds.
    pub user_mean_lag_s: Vec<f64>,
    /// All consistency-maintenance traffic.
    pub traffic: TrafficStats,
    /// Content-update messages sent by the provider (paper Fig. 22(b)).
    pub provider_update_messages: u64,
    /// Content-update messages delivered to content servers (paper
    /// Fig. 22(a)).
    pub server_update_messages: u64,
    /// User observations that saw content older than previously seen
    /// (paper Fig. 24 numerator).
    pub inconsistent_observations: u64,
    /// Total user observations (paper Fig. 24 denominator).
    pub total_observations: u64,
    /// Publishes still unadopted somewhere when the run ended (should be ~0
    /// with an adequate drain; reported for honesty).
    pub unresolved_lags: u64,
    /// Total simulation events processed.
    pub events: u64,
    /// Messages that arrived at a failed/overloaded node and were silently
    /// dropped (non-zero only under failure injection or a fault plan).
    pub msgs_lost_to_failed: u64,
    /// Tracked-message retransmissions sent (fault-plan runs only).
    pub retransmits: u64,
    /// Tracked deliveries abandoned after exhausting their retransmit
    /// budget (fault-plan runs only).
    pub abandoned_deliveries: u64,
    /// Duplicate tracked deliveries suppressed by the receiver — network
    /// duplicates plus retransmissions whose ack was lost (fault-plan runs
    /// only).
    pub duplicates_suppressed: u64,
    /// HAT supernode failovers performed (fault-plan runs with
    /// `hat_degradation` only).
    pub failovers: u64,
    /// Invalidation-mode members degraded to TTL polling by a failover
    /// (fault-plan runs with `hat_degradation` only).
    pub ttl_fallbacks: u64,
    /// Present replicas still behind the provider head at the horizon,
    /// despite the fault plan's pre-horizon settle fence (fault-plan runs
    /// only; should be 0 — reported for honesty).
    pub convergence_violations: u64,
    /// Servers re-admitted after a departure (lifecycle-churn runs only).
    pub node_joins: u64,
    /// Graceful server departures (lifecycle-churn runs only).
    pub node_leaves: u64,
    /// Server crashes whose restart came back cold (lifecycle-churn runs
    /// only).
    pub crash_restarts: u64,
    /// Tracked deliveries abandoned immediately because their destination
    /// had *departed* — left the system, not merely failed — so backing
    /// off against it would be wasted wire (subset of
    /// `abandoned_deliveries`; lifecycle-churn runs under a fault plan
    /// only).
    pub abandoned_to_departed: u64,
    /// Request-plane tallies (all-zero without a workload plan).
    pub workload: WorkloadStats,
}

impl SimReport {
    /// Mean of the per-server mean inconsistencies, seconds.
    pub fn mean_server_lag_s(&self) -> f64 {
        mean(&self.server_mean_lag_s)
    }

    /// Mean of the per-user mean inconsistencies, seconds.
    pub fn mean_user_lag_s(&self) -> f64 {
        mean(&self.user_mean_lag_s)
    }

    /// Percentile of the per-server means (the paper's 5th/median/95th in
    /// Fig. 18(a)). `p` is clamped into `[0, 100]`; `None` when the run had
    /// no servers.
    pub fn server_lag_percentile(&self, p: f64) -> Option<f64> {
        Cdf::from_samples(self.server_mean_lag_s.iter().copied()).percentile(p)
    }

    /// Fraction of user observations that were inconsistent (Fig. 24).
    pub fn inconsistency_observation_rate(&self) -> f64 {
        if self.total_observations == 0 {
            0.0
        } else {
            self.inconsistent_observations as f64 / self.total_observations as f64
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            scheme_label: "TTL".to_owned(),
            server_mean_lag_s: vec![1.0, 2.0, 3.0, 4.0],
            user_mean_lag_s: vec![2.0, 4.0],
            traffic: TrafficStats::new(),
            provider_update_messages: 10,
            server_update_messages: 20,
            inconsistent_observations: 5,
            total_observations: 100,
            unresolved_lags: 0,
            events: 1_000,
            msgs_lost_to_failed: 0,
            retransmits: 0,
            abandoned_deliveries: 0,
            duplicates_suppressed: 0,
            failovers: 0,
            ttl_fallbacks: 0,
            convergence_violations: 0,
            node_joins: 0,
            node_leaves: 0,
            crash_restarts: 0,
            abandoned_to_departed: 0,
            workload: WorkloadStats::default(),
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.mean_server_lag_s(), 2.5);
        assert_eq!(r.mean_user_lag_s(), 3.0);
        assert_eq!(r.server_lag_percentile(50.0), Some(2.5));
        assert_eq!(r.inconsistency_observation_rate(), 0.05);
    }

    #[test]
    fn workload_aggregates() {
        let w = WorkloadStats {
            requests: 10,
            hits: 6,
            delayed_hits: 2,
            misses: 2,
            latency_s: vec![0.0, 0.0, 0.5, 1.5],
            staleness_served_s: vec![0.0, 4.0],
            ..WorkloadStats::default()
        };
        assert_eq!(w.hit_rate(), 0.8);
        assert_eq!(w.latency_percentile(100.0), Some(1.5));
        assert_eq!(w.mean_staleness_served_s(), 2.0);
        assert_eq!(w.staleness_percentile(50.0), Some(2.0));
        let empty = WorkloadStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        assert_eq!(empty.latency_percentile(99.0), None);
        assert_eq!(empty.mean_staleness_served_s(), 0.0);
    }

    #[test]
    fn empty_safe() {
        let r = SimReport {
            server_mean_lag_s: vec![],
            user_mean_lag_s: vec![],
            total_observations: 0,
            inconsistent_observations: 0,
            ..report()
        };
        assert_eq!(r.mean_server_lag_s(), 0.0);
        assert_eq!(r.mean_user_lag_s(), 0.0);
        assert_eq!(r.server_lag_percentile(50.0), None);
        assert_eq!(r.inconsistency_observation_rate(), 0.0);
    }
}
