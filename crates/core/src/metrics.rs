//! Simulation output metrics.
//!
//! The paper reports, per run: the average inconsistency of each content
//! server and each end-user (Figs. 14–15, 18–20), the traffic cost in km·KB
//! (Figs. 16–17), update-message counts overall and from the provider
//! (Fig. 22), network load in km split by message class (Fig. 23), and the
//! fraction of user observations that were inconsistent (Fig. 24).
//! [`SimReport`] carries all of them.

use cdnc_net::TrafficStats;
use cdnc_simcore::stats::Cdf;

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The scheme's §5 label ("Push", "HAT", …).
    pub scheme_label: String,
    /// Per-server mean inconsistency (adoption lag behind the provider),
    /// seconds; index = server order.
    pub server_mean_lag_s: Vec<f64>,
    /// Per-user mean inconsistency (lag between a publish and the user first
    /// seeing content at least that new), seconds.
    pub user_mean_lag_s: Vec<f64>,
    /// All consistency-maintenance traffic.
    pub traffic: TrafficStats,
    /// Content-update messages sent by the provider (paper Fig. 22(b)).
    pub provider_update_messages: u64,
    /// Content-update messages delivered to content servers (paper
    /// Fig. 22(a)).
    pub server_update_messages: u64,
    /// User observations that saw content older than previously seen
    /// (paper Fig. 24 numerator).
    pub inconsistent_observations: u64,
    /// Total user observations (paper Fig. 24 denominator).
    pub total_observations: u64,
    /// Publishes still unadopted somewhere when the run ended (should be ~0
    /// with an adequate drain; reported for honesty).
    pub unresolved_lags: u64,
    /// Total simulation events processed.
    pub events: u64,
    /// Messages that arrived at a failed/overloaded node and were silently
    /// dropped (non-zero only under failure injection or a fault plan).
    pub msgs_lost_to_failed: u64,
    /// Tracked-message retransmissions sent (fault-plan runs only).
    pub retransmits: u64,
    /// Tracked deliveries abandoned after exhausting their retransmit
    /// budget (fault-plan runs only).
    pub abandoned_deliveries: u64,
    /// Duplicate tracked deliveries suppressed by the receiver — network
    /// duplicates plus retransmissions whose ack was lost (fault-plan runs
    /// only).
    pub duplicates_suppressed: u64,
    /// HAT supernode failovers performed (fault-plan runs with
    /// `hat_degradation` only).
    pub failovers: u64,
    /// Invalidation-mode members degraded to TTL polling by a failover
    /// (fault-plan runs with `hat_degradation` only).
    pub ttl_fallbacks: u64,
    /// Present replicas still behind the provider head at the horizon,
    /// despite the fault plan's pre-horizon settle fence (fault-plan runs
    /// only; should be 0 — reported for honesty).
    pub convergence_violations: u64,
}

impl SimReport {
    /// Mean of the per-server mean inconsistencies, seconds.
    pub fn mean_server_lag_s(&self) -> f64 {
        mean(&self.server_mean_lag_s)
    }

    /// Mean of the per-user mean inconsistencies, seconds.
    pub fn mean_user_lag_s(&self) -> f64 {
        mean(&self.user_mean_lag_s)
    }

    /// Percentile of the per-server means (the paper's 5th/median/95th in
    /// Fig. 18(a)). `p` is clamped into `[0, 100]`; `None` when the run had
    /// no servers.
    pub fn server_lag_percentile(&self, p: f64) -> Option<f64> {
        Cdf::from_samples(self.server_mean_lag_s.iter().copied()).percentile(p)
    }

    /// Fraction of user observations that were inconsistent (Fig. 24).
    pub fn inconsistency_observation_rate(&self) -> f64 {
        if self.total_observations == 0 {
            0.0
        } else {
            self.inconsistent_observations as f64 / self.total_observations as f64
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            scheme_label: "TTL".to_owned(),
            server_mean_lag_s: vec![1.0, 2.0, 3.0, 4.0],
            user_mean_lag_s: vec![2.0, 4.0],
            traffic: TrafficStats::new(),
            provider_update_messages: 10,
            server_update_messages: 20,
            inconsistent_observations: 5,
            total_observations: 100,
            unresolved_lags: 0,
            events: 1_000,
            msgs_lost_to_failed: 0,
            retransmits: 0,
            abandoned_deliveries: 0,
            duplicates_suppressed: 0,
            failovers: 0,
            ttl_fallbacks: 0,
            convergence_violations: 0,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.mean_server_lag_s(), 2.5);
        assert_eq!(r.mean_user_lag_s(), 3.0);
        assert_eq!(r.server_lag_percentile(50.0), Some(2.5));
        assert_eq!(r.inconsistency_observation_rate(), 0.05);
    }

    #[test]
    fn empty_safe() {
        let r = SimReport {
            server_mean_lag_s: vec![],
            user_mean_lag_s: vec![],
            total_observations: 0,
            inconsistent_observations: 0,
            ..report()
        };
        assert_eq!(r.mean_server_lag_s(), 0.0);
        assert_eq!(r.mean_user_lag_s(), 0.0);
        assert_eq!(r.server_lag_percentile(50.0), None);
        assert_eq!(r.inconsistency_observation_rate(), 0.0);
    }
}
