//! Proximity-aware d-ary distribution trees.
//!
//! Paper §4 builds a binary multicast tree of "geographically close nodes
//! (measured by inter-ping latency)"; §5.2 builds a 4-ary supernode tree
//! where "newly-joined supernodes or supernodes having lost parents choose
//! the nearest supernode that has fewer than k children as its parent".
//! [`DistributionTree::build_proximity`] implements exactly that greedy
//! join rule; [`DistributionTree::remove_and_reattach`] implements the
//! failure-repair rule and reports the maintenance traffic it would cost.

use cdnc_geo::GeoPoint;
use cdnc_net::NodeId;
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use std::collections::HashMap;

/// A rooted d-ary tree over a subset of network nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributionTree {
    root: NodeId,
    arity: usize,
    parent: HashMap<NodeId, NodeId>,
    children: HashMap<NodeId, Vec<NodeId>>,
}

impl DistributionTree {
    /// Builds a proximity-aware tree: members join in ascending distance
    /// from the root, each attaching to the nearest already-joined node
    /// (including the root) that still has fewer than `arity` children.
    ///
    /// `location` must yield the position of the root and every member.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0` or `members` contains the root or duplicates.
    pub fn build_proximity<F>(root: NodeId, members: &[NodeId], arity: usize, location: F) -> Self
    where
        F: Fn(NodeId) -> GeoPoint,
    {
        assert!(arity > 0, "tree arity must be positive");
        let mut tree =
            DistributionTree { root, arity, parent: HashMap::new(), children: HashMap::new() };
        let root_loc = location(root);
        // Closest-to-root first: near nodes occupy high layers, matching the
        // proximity-aware intent.
        let mut order: Vec<NodeId> = members.to_vec();
        order.sort_by(|&a, &b| {
            let da = location(a).distance_km(&root_loc);
            let db = location(b).distance_km(&root_loc);
            da.partial_cmp(&db).expect("finite distance").then(a.cmp(&b))
        });
        for node in order {
            assert!(node != root, "root cannot be a member");
            assert!(!tree.parent.contains_key(&node), "duplicate member {node}");
            tree.attach(node, &location);
        }
        tree
    }

    /// Attaches `node` to the nearest in-tree node with spare capacity.
    fn attach<F>(&mut self, node: NodeId, location: &F)
    where
        F: Fn(NodeId) -> GeoPoint,
    {
        self.attach_excluding(node, location, &[]);
    }

    /// Attaches `node`, never choosing a parent from `excluded` (used during
    /// repair so an orphan cannot attach inside its own subtree, which would
    /// create a cycle).
    fn attach_excluding<F>(&mut self, node: NodeId, location: &F, excluded: &[NodeId])
    where
        F: Fn(NodeId) -> GeoPoint,
    {
        let loc = location(node);
        let candidates = std::iter::once(self.root).chain(self.parent.keys().copied());
        let parent = candidates
            .filter(|&c| {
                c != node && !excluded.contains(&c) && self.children_of(c).len() < self.arity
            })
            .min_by(|&a, &b| {
                let da = location(a).distance_km(&loc);
                let db = location(b).distance_km(&loc);
                da.partial_cmp(&db).expect("finite distance").then(a.cmp(&b))
            })
            .expect("the root always has finite capacity or a descendant does");
        self.parent.insert(node, parent);
        self.children.entry(parent).or_default().push(node);
    }

    /// The tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The configured maximum children per node.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of member nodes (root excluded).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the tree has no members besides the root.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent of `node`, or `None` for the root / non-members.
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied()
    }

    /// The children of `node` (empty for leaves and non-members).
    pub fn children_of(&self, node: NodeId) -> &[NodeId] {
        self.children.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` if `node` is the root or a member.
    pub fn contains(&self, node: NodeId) -> bool {
        node == self.root || self.parent.contains_key(&node)
    }

    /// Depth of `node` (root = 0).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not in the tree.
    pub fn depth(&self, node: NodeId) -> usize {
        assert!(self.contains(node), "{node} not in tree");
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent_of(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum depth over all members (0 for an empty tree).
    pub fn max_depth(&self) -> usize {
        self.parent.keys().map(|&n| self.depth(n)).max().unwrap_or(0)
    }

    /// All members in breadth-first order from the root (root excluded).
    pub fn bfs_members(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut frontier = std::collections::VecDeque::from([self.root]);
        while let Some(n) = frontier.pop_front() {
            let mut kids = self.children_of(n).to_vec();
            kids.sort_unstable();
            for k in &kids {
                out.push(*k);
            }
            frontier.extend(kids);
        }
        out
    }

    /// Removes a failed member and re-attaches each orphaned child to the
    /// nearest remaining node with spare capacity (paper §5.2's repair rule).
    /// Returns the `(orphan, new_parent)` re-attachments performed — each
    /// corresponds to one structure-maintenance message.
    ///
    /// # Panics
    ///
    /// Panics if `failed` is the root or not a member.
    pub fn remove_and_reattach<F>(&mut self, failed: NodeId, location: F) -> Vec<(NodeId, NodeId)>
    where
        F: Fn(NodeId) -> GeoPoint,
    {
        assert!(failed != self.root, "cannot remove the root");
        let old_parent =
            self.parent.remove(&failed).unwrap_or_else(|| panic!("{failed} not in tree"));
        if let Some(siblings) = self.children.get_mut(&old_parent) {
            siblings.retain(|&c| c != failed);
        }
        let orphans = self.children.remove(&failed).unwrap_or_default();
        let mut moves = Vec::with_capacity(orphans.len());
        for orphan in orphans {
            // Detach before re-attach so capacity checks see current truth,
            // and forbid the orphan's own subtree as a parent (cycle!).
            self.parent.remove(&orphan);
            let subtree = self.subtree_of(orphan);
            self.attach_excluding(orphan, &location, &subtree);
            let new_parent = self.parent_of(orphan).expect("just attached");
            moves.push((orphan, new_parent));
        }
        moves
    }

    /// Joins a new member to the tree (the §5.2 "newly-joined" rule): the
    /// node attaches to the nearest in-tree node with spare capacity.
    /// Returns its parent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already in the tree.
    pub fn join<F>(&mut self, node: NodeId, location: F) -> NodeId
    where
        F: Fn(NodeId) -> GeoPoint,
    {
        assert!(!self.contains(node), "{node} already in tree");
        self.attach(node, &location);
        self.parent_of(node).expect("just attached")
    }

    /// Replaces member `old` with `new` *in place*: `new` takes `old`'s
    /// parent slot and adopts `old`'s children. This is the supernode
    /// failover move — a promoted cluster member steps into the failed
    /// supernode's tree position without any re-attachment churn. Returns
    /// `new`'s parent.
    ///
    /// # Panics
    ///
    /// Panics if `old` is the root or not a member, or if `new` is already
    /// in the tree.
    pub fn substitute(&mut self, old: NodeId, new: NodeId) -> NodeId {
        assert!(old != self.root, "cannot substitute the root");
        assert!(!self.contains(new), "{new} already in tree");
        let parent = self.parent.remove(&old).unwrap_or_else(|| panic!("{old} not in tree"));
        self.parent.insert(new, parent);
        if let Some(siblings) = self.children.get_mut(&parent) {
            for c in siblings.iter_mut() {
                if *c == old {
                    *c = new;
                }
            }
        }
        let kids = self.children.remove(&old).unwrap_or_default();
        for &k in &kids {
            self.parent.insert(k, new);
        }
        if !kids.is_empty() {
            self.children.insert(new, kids);
        }
        parent
    }

    /// Serializes the tree structure into a checkpoint artifact. Parent
    /// entries are written in ascending node order (the backing map is
    /// unordered); child lists keep their live order, which repair and
    /// substitution iterate, so a restored tree replays them identically.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.u64("tree_root", self.root.0 as u64);
        w.usize("tree_arity", self.arity);
        let mut members: Vec<NodeId> = self.parent.keys().copied().collect();
        members.sort_unstable();
        w.usize("tree_members", members.len());
        for m in &members {
            w.u64("tree_node", m.0 as u64);
            w.u64("tree_parent", self.parent[m].0 as u64);
        }
        let mut parents: Vec<NodeId> =
            self.children.iter().filter(|(_, kids)| !kids.is_empty()).map(|(&p, _)| p).collect();
        parents.sort_unstable();
        w.usize("tree_branches", parents.len());
        for p in &parents {
            w.u64("tree_branch", p.0 as u64);
            let kids = &self.children[p];
            w.usize("tree_kids", kids.len());
            for k in kids {
                w.u64("tree_kid", k.0 as u64);
            }
        }
    }

    /// Restores structure written by [`DistributionTree::ckpt_write`],
    /// replacing this tree's membership wholesale.
    ///
    /// Errors if the artifact's root or arity disagrees with this tree —
    /// those are construction parameters, not dynamic state.
    pub fn ckpt_read(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let root = NodeId(r.u64("tree_root")? as u32);
        let arity = r.usize("tree_arity")?;
        if root != self.root || arity != self.arity {
            return Err(CkptError(format!(
                "tree is root {} arity {}, checkpoint carries root {root} arity {arity}",
                self.root, self.arity
            )));
        }
        let members = r.usize("tree_members")?;
        let mut parent = HashMap::with_capacity(members);
        for _ in 0..members {
            let node = NodeId(r.u64("tree_node")? as u32);
            parent.insert(node, NodeId(r.u64("tree_parent")? as u32));
        }
        let branches = r.usize("tree_branches")?;
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::with_capacity(branches);
        for _ in 0..branches {
            let p = NodeId(r.u64("tree_branch")? as u32);
            let kids = r.usize("tree_kids")?;
            let mut list = Vec::with_capacity(kids);
            for _ in 0..kids {
                list.push(NodeId(r.u64("tree_kid")? as u32));
            }
            children.insert(p, list);
        }
        self.parent = parent;
        self.children = children;
        Ok(())
    }

    /// All nodes in the subtree rooted at `node` (excluding `node` itself).
    fn subtree_of(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = self.children_of(node).to_vec();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend_from_slice(self.children_of(n));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_geo::WorldBuilder;
    use proptest::prelude::*;

    /// A tree over a generated world; node 0 is the root (provider).
    fn world_tree(n: usize, arity: usize, seed: u64) -> (DistributionTree, Vec<GeoPoint>) {
        let world = WorldBuilder::new(n).seed(seed).build();
        let mut locations: Vec<GeoPoint> = vec![world.provider_location()];
        locations.extend(world.nodes().iter().map(|w| w.location));
        let members: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
        let locs = locations.clone();
        let tree = DistributionTree::build_proximity(NodeId(0), &members, arity, move |id| {
            locs[id.index()]
        });
        (tree, locations)
    }

    #[test]
    fn every_member_has_a_parent_path_to_root() {
        let (tree, _) = world_tree(100, 2, 1);
        assert_eq!(tree.len(), 100);
        for i in 1..=100u32 {
            let d = tree.depth(NodeId(i));
            assert!(d >= 1);
            assert!(d <= 100);
        }
    }

    #[test]
    fn arity_respected() {
        for arity in [2usize, 4, 8] {
            let (tree, _) = world_tree(150, arity, 2);
            assert!(tree.children_of(NodeId(0)).len() <= arity);
            for i in 1..=150u32 {
                assert!(
                    tree.children_of(NodeId(i)).len() <= arity,
                    "node {i} exceeds arity {arity}"
                );
            }
        }
    }

    #[test]
    fn depth_shrinks_with_arity() {
        let (binary, _) = world_tree(170, 2, 3);
        let (quad, _) = world_tree(170, 4, 3);
        assert!(
            quad.max_depth() <= binary.max_depth(),
            "4-ary depth {} vs binary {}",
            quad.max_depth(),
            binary.max_depth()
        );
        // A 170-node binary tree needs depth ≥ 7 (2^7 − 1 = 127 < 170).
        assert!(binary.max_depth() >= 7);
    }

    #[test]
    fn bfs_covers_all_members_once() {
        let (tree, _) = world_tree(60, 3, 4);
        let mut bfs = tree.bfs_members();
        assert_eq!(bfs.len(), 60);
        bfs.sort_unstable();
        bfs.dedup();
        assert_eq!(bfs.len(), 60);
    }

    #[test]
    fn proximity_matters() {
        // A member's parent should usually be closer than a random node:
        // compare mean parent distance against mean all-pairs distance.
        let (tree, locations) = world_tree(120, 2, 5);
        let mut parent_sum = 0.0;
        for i in 1..=120u32 {
            let p = tree.parent_of(NodeId(i)).unwrap();
            parent_sum += locations[i as usize].distance_km(&locations[p.index()]);
        }
        let parent_mean = parent_sum / 120.0;
        let mut all_sum = 0.0;
        let mut pairs = 0u64;
        for i in 1..=120usize {
            for j in (i + 1)..=120 {
                all_sum += locations[i].distance_km(&locations[j]);
                pairs += 1;
            }
        }
        let all_mean = all_sum / pairs as f64;
        assert!(
            parent_mean < all_mean * 0.5,
            "proximity tree should link nearby nodes: parent mean {parent_mean} vs all {all_mean}"
        );
    }

    #[test]
    fn removal_reattaches_orphans() {
        let (mut tree, locations) = world_tree(80, 2, 6);
        // Find an internal node with children.
        let internal = (1..=80u32)
            .map(NodeId)
            .find(|&n| !tree.children_of(n).is_empty())
            .expect("some internal node exists");
        let orphans: Vec<NodeId> = tree.children_of(internal).to_vec();
        let locs = locations.clone();
        let moves = tree.remove_and_reattach(internal, move |id| locs[id.index()]);
        assert_eq!(moves.len(), orphans.len());
        assert!(!tree.contains(internal));
        assert_eq!(tree.len(), 79);
        for &(orphan, new_parent) in &moves {
            assert_eq!(tree.parent_of(orphan), Some(new_parent));
            assert!(new_parent != internal);
            // Still a valid path to root.
            let _ = tree.depth(orphan);
        }
        // Arity still respected everywhere.
        for i in (0..=80u32).filter(|&i| NodeId(i) != internal) {
            assert!(tree.children_of(NodeId(i)).len() <= 2);
        }
    }

    #[test]
    fn leaf_removal_costs_nothing() {
        let (mut tree, locations) = world_tree(40, 2, 7);
        let leaf = (1..=40u32)
            .map(NodeId)
            .find(|&n| tree.children_of(n).is_empty())
            .expect("some leaf exists");
        let moves = tree.remove_and_reattach(leaf, move |id| locations[id.index()]);
        assert!(moves.is_empty());
        assert_eq!(tree.len(), 39);
    }

    #[test]
    fn repeated_removals_never_create_cycles() {
        // Regression: an orphan re-attaching inside its own subtree would
        // create a cycle and make depth() diverge.
        let (mut tree, locations) = world_tree(60, 2, 9);
        let locs = locations.clone();
        for victim in (1..=40u32).map(NodeId) {
            if !tree.contains(victim) {
                continue;
            }
            tree.remove_and_reattach(victim, |id| locs[id.index()]);
            // depth() terminates for every remaining member — no cycles.
            for i in (1..=60u32).map(NodeId).filter(|&n| tree.contains(n)) {
                assert!(tree.depth(i) <= 60);
            }
        }
    }

    #[test]
    fn substitute_preserves_structure() {
        let (mut tree, _) = world_tree(80, 2, 11);
        let internal = (1..=80u32)
            .map(NodeId)
            .find(|&n| !tree.children_of(n).is_empty())
            .expect("some internal node exists");
        let old_parent = tree.parent_of(internal).unwrap();
        let old_children: Vec<NodeId> = tree.children_of(internal).to_vec();
        let old_depth = tree.depth(internal);
        let promoted = NodeId(999);
        let parent = tree.substitute(internal, promoted);
        assert_eq!(parent, old_parent);
        assert!(!tree.contains(internal));
        assert!(tree.contains(promoted));
        assert_eq!(tree.parent_of(promoted), Some(old_parent));
        assert_eq!(tree.children_of(promoted), &old_children[..]);
        assert_eq!(tree.depth(promoted), old_depth);
        for &k in &old_children {
            assert_eq!(tree.parent_of(k), Some(promoted));
            let _ = tree.depth(k); // still rooted, no cycles
        }
        assert!(tree.children_of(old_parent).contains(&promoted));
        assert!(!tree.children_of(old_parent).contains(&internal));
        assert_eq!(tree.len(), 80, "substitution is size-preserving");
    }

    #[test]
    #[should_panic(expected = "already in tree")]
    fn substitute_rejects_existing_member() {
        let (mut tree, _) = world_tree(10, 2, 12);
        tree.substitute(NodeId(1), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "cannot substitute the root")]
    fn substitute_rejects_root() {
        let (mut tree, _) = world_tree(10, 2, 13);
        tree.substitute(NodeId(0), NodeId(99));
    }

    #[test]
    #[should_panic(expected = "cannot remove the root")]
    fn root_removal_rejected() {
        let (mut tree, locations) = world_tree(5, 2, 8);
        tree.remove_and_reattach(NodeId(0), move |id| locations[id.index()]);
    }

    #[test]
    fn checkpoint_round_trip_preserves_repaired_structure() {
        // Checkpoint after a repair, so the saved structure differs from
        // anything the builder would produce.
        let (mut tree, locations) = world_tree(60, 2, 14);
        let internal = (1..=60u32)
            .map(NodeId)
            .find(|&n| !tree.children_of(n).is_empty())
            .expect("some internal node exists");
        let locs = locations.clone();
        tree.remove_and_reattach(internal, move |id| locs[id.index()]);
        let mut w = CkptWriter::new("test");
        tree.ckpt_write(&mut w);
        let text = w.finish();
        let (mut restored, _) = world_tree(60, 2, 14);
        let mut r = CkptReader::new(&text, "test").unwrap();
        restored.ckpt_read(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(restored, tree, "restored tree is structurally identical");
        // Wrong construction parameters are rejected.
        let (mut quad, _) = world_tree(60, 4, 14);
        let mut r = CkptReader::new(&text, "test").unwrap();
        assert!(quad.ckpt_read(&mut r).is_err(), "arity mismatch rejected");
    }

    #[test]
    fn empty_tree() {
        let tree = DistributionTree::build_proximity(NodeId(0), &[], 2, |_| {
            GeoPoint::new(0.0, 0.0).unwrap()
        });
        assert!(tree.is_empty());
        assert_eq!(tree.max_depth(), 0);
        assert!(tree.contains(NodeId(0)));
        assert!(!tree.contains(NodeId(1)));
    }

    proptest! {
        /// The greedy builder always yields a connected tree with respected
        /// arity, whatever the geometry.
        #[test]
        fn prop_tree_invariants(
            coords in proptest::collection::vec((-80.0f64..80.0, -170.0f64..170.0), 1..60),
            arity in 1usize..5,
        ) {
            let locations: Vec<GeoPoint> = std::iter::once(GeoPoint::new(0.0, 0.0).unwrap())
                .chain(coords.iter().map(|&(la, lo)| GeoPoint::new(la, lo).unwrap()))
                .collect();
            let members: Vec<NodeId> = (1..locations.len() as u32).map(NodeId).collect();
            let locs = locations.clone();
            let tree = DistributionTree::build_proximity(
                NodeId(0), &members, arity, move |id| locs[id.index()],
            );
            prop_assert_eq!(tree.len(), members.len());
            for &m in &members {
                prop_assert!(tree.depth(m) >= 1); // reachable from root
                prop_assert!(tree.children_of(m).len() <= arity);
            }
            prop_assert!(tree.children_of(NodeId(0)).len() <= arity);
        }
    }
}
