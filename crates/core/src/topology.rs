//! Topology construction: who updates whom under each scheme.
//!
//! Produces, for every node, its *upstream* (where it polls / where its
//! content comes from) and its *downstream* (whom it pushes to / notifies),
//! plus each node's effective update method.

use crate::config::Scheme;
use crate::method::MethodKind;
use crate::tree::DistributionTree;
use cdnc_geo::{cluster_by_hilbert, GeoPoint};
use cdnc_net::{Network, NodeId};
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::SimRng;

/// The update topology of a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// The provider node.
    pub provider: NodeId,
    /// All content-server nodes.
    pub servers: Vec<NodeId>,
    /// `upstream[node.index()]`: where this node polls / receives from
    /// (`None` for the provider).
    pub upstream: Vec<Option<NodeId>>,
    /// `downstream[node.index()]`: nodes this one pushes to / invalidates.
    pub downstream: Vec<Vec<NodeId>>,
    /// `method[node.index()]`: the update method this node runs against its
    /// upstream (`None` for the provider).
    pub method: Vec<Option<MethodKind>>,
    /// Supernodes (non-empty only for hybrid schemes).
    pub supernodes: Vec<NodeId>,
}

impl Topology {
    /// Builds the topology for `scheme` over a network whose node 0 is the
    /// provider and nodes 1..=N are content servers.
    ///
    /// # Panics
    ///
    /// Panics if the network has fewer than 2 nodes, or if a hybrid scheme
    /// requests zero clusters / zero arity.
    pub fn build(scheme: &Scheme, net: &Network, rng: &mut SimRng) -> Self {
        Topology::build_with_tree(scheme, net, rng).0
    }

    /// Like [`Topology::build`], but also returns the distribution tree for
    /// tree-based schemes (the multicast server tree, or the hybrid
    /// supernode tree) so callers can repair it under node failures.
    pub fn build_with_tree(
        scheme: &Scheme,
        net: &Network,
        rng: &mut SimRng,
    ) -> (Self, Option<DistributionTree>) {
        assert!(net.len() >= 2, "need a provider and at least one server");
        let provider = NodeId(0);
        let servers: Vec<NodeId> = (1..net.len() as u32).map(NodeId).collect();
        let n = net.len();
        let mut upstream: Vec<Option<NodeId>> = vec![None; n];
        let mut downstream: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut method: Vec<Option<MethodKind>> = vec![None; n];
        let mut supernodes = Vec::new();

        let mut dist_tree = None;
        match *scheme {
            Scheme::Unicast(m) => {
                for &s in &servers {
                    upstream[s.index()] = Some(provider);
                    method[s.index()] = Some(m);
                }
                downstream[provider.index()] = servers.clone();
            }
            Scheme::Multicast { method: m, arity } => {
                let tree = DistributionTree::build_proximity(provider, &servers, arity, |id| {
                    net.node(id).location()
                });
                for &s in &servers {
                    let p = tree.parent_of(s).expect("member has a parent");
                    upstream[s.index()] = Some(p);
                    method[s.index()] = Some(m);
                    downstream[p.index()].push(s);
                }
                dist_tree = Some(tree);
            }
            Scheme::Hybrid { clusters, tree_arity, member_method } => {
                assert!(clusters > 0, "need at least one cluster");
                let locations: Vec<GeoPoint> =
                    servers.iter().map(|&s| net.node(s).location()).collect();
                let groups = cluster_by_hilbert(&locations, clusters);
                for group in &groups {
                    // Pick the supernode from the cluster's plurality ISP so
                    // the member links it serves stay inside that ISP — the
                    // point of proximity clusters is cheap intra-ISP delivery
                    // (the paper's transit-pricing concern). Ties, and the
                    // choice within the plurality ISP, are broken randomly.
                    let mut counts: Vec<(cdnc_geo::IspId, usize)> = Vec::new();
                    for &m in &group.members {
                        let isp = net.node(servers[m]).isp();
                        match counts.iter_mut().find(|(i, _)| *i == isp) {
                            Some((_, c)) => *c += 1,
                            None => counts.push((isp, 1)),
                        }
                    }
                    let best = counts.iter().map(|&(_, c)| c).max().expect("non-empty cluster");
                    let plurality =
                        counts[counts.iter().position(|&(_, c)| c == best).expect("max exists")].0;
                    let candidates: Vec<usize> = group
                        .members
                        .iter()
                        .copied()
                        .filter(|&m| net.node(servers[m]).isp() == plurality)
                        .collect();
                    let pick = candidates[rng.index(candidates.len())];
                    supernodes.push(servers[pick]);
                }
                let tree =
                    DistributionTree::build_proximity(provider, &supernodes, tree_arity, |id| {
                        net.node(id).location()
                    });
                for &sn in &supernodes {
                    let p = tree.parent_of(sn).expect("supernode has a parent");
                    upstream[sn.index()] = Some(p);
                    method[sn.index()] = Some(MethodKind::Push);
                    downstream[p.index()].push(sn);
                }
                for (group, &sn) in groups.iter().zip(&supernodes) {
                    for &m in &group.members {
                        let node = servers[m];
                        if node == sn {
                            continue;
                        }
                        upstream[node.index()] = Some(sn);
                        method[node.index()] = Some(member_method);
                        downstream[sn.index()].push(node);
                    }
                }
                dist_tree = Some(tree);
            }
        }

        (Topology { provider, servers, upstream, downstream, method, supernodes }, dist_tree)
    }

    /// Moves `child` under `new_parent`, keeping upstream/downstream
    /// consistent. Used when repairing a distribution tree after a failure.
    ///
    /// # Panics
    ///
    /// Panics if `child` is the provider.
    pub fn rewire(&mut self, child: NodeId, new_parent: NodeId) {
        assert!(child != self.provider, "cannot rewire the provider");
        if let Some(old) = self.upstream[child.index()] {
            self.downstream[old.index()].retain(|&c| c != child);
        }
        self.upstream[child.index()] = Some(new_parent);
        self.downstream[new_parent.index()].push(child);
    }

    /// Disconnects `node` from its upstream (a failed node no longer
    /// receives updates). Its own downstream edges are untouched — they are
    /// rewired individually by the repair logic.
    pub fn detach(&mut self, node: NodeId) {
        if let Some(old) = self.upstream[node.index()] {
            self.downstream[old.index()].retain(|&c| c != node);
        }
        self.upstream[node.index()] = None;
    }

    /// The update method `node` runs, if it is a server.
    pub fn method_of(&self, node: NodeId) -> Option<MethodKind> {
        self.method[node.index()]
    }

    /// The node `node` polls / receives content from.
    pub fn upstream_of(&self, node: NodeId) -> Option<NodeId> {
        self.upstream[node.index()]
    }

    /// The nodes `node` is responsible for notifying.
    pub fn downstream_of(&self, node: NodeId) -> &[NodeId] {
        &self.downstream[node.index()]
    }

    /// `true` if `node` is a hybrid supernode.
    pub fn is_supernode(&self, node: NodeId) -> bool {
        self.supernodes.contains(&node)
    }

    /// Serializes the mutable wiring (upstream, downstream in live order,
    /// methods, supernodes) into a checkpoint. Provider and server count
    /// are written for verification; they are reconstructed, not restored.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.u64("topo_provider", u64::from(self.provider.0));
        w.usize("topo_servers", self.servers.len());
        w.usize("topo_nodes", self.upstream.len());
        for up in &self.upstream {
            match up {
                Some(p) => w.u64("topo_up", u64::from(p.0) + 1),
                None => w.u64("topo_up", 0),
            }
        }
        for down in &self.downstream {
            w.usize("topo_down", down.len());
            for d in down {
                w.u64("topo_kid", u64::from(d.0));
            }
        }
        for m in &self.method {
            let tag = match m {
                None => 0,
                Some(k) => {
                    1 + MethodKind::ALL.iter().position(|&a| a == *k).expect("known method") as u64
                }
            };
            w.u64("topo_method", tag);
        }
        w.usize("topo_supernodes", self.supernodes.len());
        for sn in &self.supernodes {
            w.u64("topo_sn", u64::from(sn.0));
        }
    }

    /// Restores the wiring written by [`Topology::ckpt_write`]. Errors if
    /// the artifact disagrees with this topology's shape (provider id,
    /// server count, node count).
    pub fn ckpt_read(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        if r.u64("topo_provider")? != u64::from(self.provider.0) {
            return Err(CkptError("checkpoint provider mismatch".to_owned()));
        }
        if r.usize("topo_servers")? != self.servers.len() {
            return Err(CkptError("checkpoint server count mismatch".to_owned()));
        }
        if r.usize("topo_nodes")? != self.upstream.len() {
            return Err(CkptError("checkpoint node count mismatch".to_owned()));
        }
        let n = self.upstream.len();
        let mut upstream = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u64("topo_up")?;
            upstream.push(if tag == 0 { None } else { Some(NodeId((tag - 1) as u32)) });
        }
        let mut downstream = Vec::with_capacity(n);
        for _ in 0..n {
            let k = r.usize("topo_down")?;
            let mut kids = Vec::with_capacity(k);
            for _ in 0..k {
                kids.push(NodeId(r.u64("topo_kid")? as u32));
            }
            downstream.push(kids);
        }
        let mut method = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.u64("topo_method")?;
            method.push(match tag {
                0 => None,
                t => Some(
                    *MethodKind::ALL
                        .get(t as usize - 1)
                        .ok_or_else(|| CkptError(format!("unknown method tag {t}")))?,
                ),
            });
        }
        let k = r.usize("topo_supernodes")?;
        let mut supernodes = Vec::with_capacity(k);
        for _ in 0..k {
            supernodes.push(NodeId(r.u64("topo_sn")? as u32));
        }
        self.upstream = upstream;
        self.downstream = downstream;
        self.method = method;
        self.supernodes = supernodes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_geo::WorldBuilder;
    use cdnc_net::NetworkConfig;

    fn network(n: usize, seed: u64) -> Network {
        let world = WorldBuilder::new(n).seed(seed).build();
        let mut net = Network::new(NetworkConfig::default(), seed);
        net.add_node(world.provider_location(), cdnc_geo::IspId(0));
        for w in world.nodes() {
            net.add_node(w.location, w.isp);
        }
        net
    }

    #[test]
    fn unicast_wires_everyone_to_provider() {
        let net = network(50, 1);
        let mut rng = SimRng::seed_from_u64(0);
        let topo = Topology::build(&Scheme::Unicast(MethodKind::Push), &net, &mut rng);
        assert_eq!(topo.servers.len(), 50);
        assert_eq!(topo.downstream_of(NodeId(0)).len(), 50);
        for &s in &topo.servers {
            assert_eq!(topo.upstream_of(s), Some(NodeId(0)));
            assert_eq!(topo.method_of(s), Some(MethodKind::Push));
            assert!(topo.downstream_of(s).is_empty());
        }
        assert!(topo.supernodes.is_empty());
    }

    #[test]
    fn multicast_respects_arity_and_connectivity() {
        let net = network(170, 2);
        let mut rng = SimRng::seed_from_u64(0);
        let topo = Topology::build(
            &Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
            &net,
            &mut rng,
        );
        assert!(topo.downstream_of(NodeId(0)).len() <= 2);
        let mut reached = 0;
        // Follow upstream chains to the provider from every server.
        for &s in &topo.servers {
            let mut cur = s;
            let mut hops = 0;
            while let Some(up) = topo.upstream_of(cur) {
                cur = up;
                hops += 1;
                assert!(hops <= 200, "upstream cycle at {s}");
            }
            assert_eq!(cur, NodeId(0));
            reached += 1;
        }
        assert_eq!(reached, 170);
        for &s in &topo.servers {
            assert!(topo.downstream_of(s).len() <= 2);
        }
    }

    #[test]
    fn hybrid_structure() {
        let net = network(100, 3);
        let mut rng = SimRng::seed_from_u64(7);
        let topo = Topology::build(&Scheme::hat(), &net, &mut rng);
        assert_eq!(topo.supernodes.len(), 20);
        // Supernodes push; members self-adapt.
        let mut members = 0;
        for &s in &topo.servers {
            if topo.is_supernode(s) {
                assert_eq!(topo.method_of(s), Some(MethodKind::Push));
            } else {
                assert_eq!(topo.method_of(s), Some(MethodKind::SelfAdaptive));
                let up = topo.upstream_of(s).unwrap();
                assert!(topo.is_supernode(up), "member's upstream must be a supernode");
                members += 1;
            }
        }
        assert_eq!(members, 80);
        // Provider's direct children are supernodes only, ≤ arity.
        let provider_kids = topo.downstream_of(NodeId(0));
        assert!(provider_kids.len() <= 4);
        assert!(provider_kids.iter().all(|&k| topo.is_supernode(k)));
    }

    #[test]
    fn hybrid_supernode_choice_is_seeded() {
        let net = network(60, 4);
        let mut rng_a = SimRng::seed_from_u64(5);
        let mut rng_b = SimRng::seed_from_u64(5);
        let a = Topology::build(&Scheme::hat(), &net, &mut rng_a);
        let b = Topology::build(&Scheme::hat(), &net, &mut rng_b);
        assert_eq!(a, b);
        let mut rng_c = SimRng::seed_from_u64(6);
        let c = Topology::build(&Scheme::hat(), &net, &mut rng_c);
        assert_ne!(a.supernodes, c.supernodes);
    }

    #[test]
    fn more_clusters_than_servers_collapses() {
        let net = network(8, 5);
        let mut rng = SimRng::seed_from_u64(1);
        let topo = Topology::build(
            &Scheme::Hybrid { clusters: 20, tree_arity: 4, member_method: MethodKind::Ttl },
            &net,
            &mut rng,
        );
        assert_eq!(topo.supernodes.len(), 8, "every server becomes its own cluster");
    }
}
