//! Scheme selection from workload factors — the paper's §6 future work.
//!
//! §4.6 ends with guidance ("applications that require high consistency …
//! can use Push and unicast-tree … applications that can tolerate small
//! periods of inconsistency … can use Invalidation or TTL-based methods …
//! for further network traffic reduction, the proximity-aware multicast
//! tree … a self-adapting strategy could switch between update methods and
//! infrastructures"), and §6 proposes generalising HAT "by considering more
//! factors, such as varying visit frequencies and consistency requirements
//! from customers". This module encodes that guidance as an executable
//! advisor:
//!
//! * [`WorkloadProfile`] — the probe-able factors: update rate, visit rate,
//!   burstiness, deployment size, content size;
//! * [`Requirement`] — the customer's consistency bound and cost objective;
//! * [`recommend`] — the §4.6 decision rules, returning a [`Scheme`] plus
//!   the TTL to run it with and a human-readable rationale.

use crate::config::Scheme;
use crate::method::MethodKind;
use cdnc_simcore::{SimDuration, SimTime};
use cdnc_trace::UpdateSequence;
use std::fmt;

/// Observable workload factors (the "new APIs to probe visit and update
/// frequency" §4.6 calls for).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Mean content updates per second.
    pub update_rate_per_s: f64,
    /// Mean end-user visits per server per second.
    pub visit_rate_per_server_per_s: f64,
    /// Coefficient of variation of the inter-update gaps: ≈1 for Poisson,
    /// ≫1 for bursts-and-silences content like live games.
    pub update_gap_cv: f64,
    /// Number of replica servers.
    pub servers: usize,
    /// Update payload size, KB.
    pub update_packet_kb: f64,
}

impl WorkloadProfile {
    /// Profiles an update sequence plus deployment facts.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or rates are not finite/non-negative.
    pub fn from_updates(
        updates: &UpdateSequence,
        visit_rate_per_server_per_s: f64,
        servers: usize,
        update_packet_kb: f64,
    ) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(
            visit_rate_per_server_per_s.is_finite() && visit_rate_per_server_per_s >= 0.0,
            "bad visit rate"
        );
        let times = updates.times();
        let span = updates.last_update().since(SimTime::ZERO).as_secs_f64().max(1.0);
        let update_rate = (times.len().saturating_sub(1)) as f64 / span;
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1].since(w[0]).as_secs_f64()).collect();
        let cv = if gaps.len() < 2 {
            0.0
        } else {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            if mean > 0.0 {
                var.sqrt() / mean
            } else {
                0.0
            }
        };
        WorkloadProfile {
            update_rate_per_s: update_rate,
            visit_rate_per_server_per_s,
            update_gap_cv: cv,
            servers,
            update_packet_kb,
        }
    }

    /// Mean gap between updates, seconds (∞ for static content).
    pub fn mean_update_gap_s(&self) -> f64 {
        if self.update_rate_per_s <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.update_rate_per_s
        }
    }

    /// `true` when the content shows bursts-and-silences dynamics.
    pub fn is_bursty(&self) -> bool {
        self.update_gap_cv > 1.2
    }
}

/// What the customer wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Requirement {
    /// Largest tolerable staleness, seconds; `None` = best effort.
    pub max_staleness_s: Option<f64>,
    /// What to minimise subject to the staleness bound.
    pub objective: CostObjective,
}

impl Requirement {
    /// A strong-consistency requirement (sub-`bound` staleness).
    pub fn strong(bound_s: f64) -> Self {
        Requirement { max_staleness_s: Some(bound_s), objective: CostObjective::Traffic }
    }

    /// Best-effort freshness, minimum cost.
    pub fn best_effort() -> Self {
        Requirement { max_staleness_s: None, objective: CostObjective::Traffic }
    }
}

/// Cost dimension to optimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostObjective {
    /// Total network traffic (the km·KB / network-load figures).
    Traffic,
    /// The content provider's fan-out (the Fig. 22(b) axis).
    ProviderLoad,
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The scheme to deploy.
    pub scheme: Scheme,
    /// Content-server TTL to run polling methods with (`None` for pure
    /// push/invalidation schemes).
    pub server_ttl: Option<SimDuration>,
    /// Why.
    pub rationale: String,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.scheme.label())?;
        if let Some(ttl) = self.server_ttl {
            write!(f, " (TTL {ttl})")?;
        }
        write!(f, " — {}", self.rationale)
    }
}

/// Deployment-size threshold beyond which the provider's unicast fan-out
/// becomes the bottleneck (paper Figs. 19–20 territory).
const LARGE_DEPLOYMENT: usize = 200;
/// Payload threshold beyond which unicast push congests the provider uplink.
const LARGE_PACKET_KB: f64 = 64.0;

/// Applies the paper's §4.6/§5 guidance to a workload and requirement.
pub fn recommend(profile: &WorkloadProfile, req: &Requirement) -> Recommendation {
    let big = profile.servers > LARGE_DEPLOYMENT || profile.update_packet_kb > LARGE_PACKET_KB;
    match req.max_staleness_s {
        // --- consistency-critical: push, infrastructure per scale ---------
        Some(bound) if bound < 3.0 => {
            if big {
                Recommendation {
                    scheme: Scheme::Multicast { method: MethodKind::Push, arity: 4 },
                    server_ttl: None,
                    rationale: format!(
                        "sub-{bound:.0}s staleness needs push; {} servers / {:.0} KB updates \
                         would congest the provider uplink, so distribute over a proximity tree",
                        profile.servers, profile.update_packet_kb
                    ),
                }
            } else {
                Recommendation {
                    scheme: Scheme::Unicast(MethodKind::Push),
                    server_ttl: None,
                    rationale: format!(
                        "sub-{bound:.0}s staleness needs push; the deployment is small enough \
                         for direct unicast"
                    ),
                }
            }
        }
        // --- bounded staleness ---------------------------------------------
        Some(bound) => {
            // Rarely-visited, hot-updating content: invalidation aggregates
            // all updates between visits and still serves fresh on demand.
            if profile.visit_rate_per_server_per_s < profile.update_rate_per_s {
                return Recommendation {
                    scheme: Scheme::Unicast(MethodKind::Invalidation),
                    server_ttl: None,
                    rationale: format!(
                        "visits ({:.3}/s per server) are rarer than updates ({:.3}/s): \
                         invalidation skips unconsumed updates and serves fresh on demand",
                        profile.visit_rate_per_server_per_s, profile.update_rate_per_s
                    ),
                };
            }
            // Polling with TTL ≈ 80 % of the bound keeps worst staleness
            // under the bound including fetch delays.
            let ttl = SimDuration::from_secs_f64((bound * 0.8).max(2.0));
            if profile.is_bursty() {
                let scheme = if big || req.objective == CostObjective::ProviderLoad {
                    Scheme::hat()
                } else {
                    Scheme::Unicast(MethodKind::SelfAdaptive)
                };
                Recommendation {
                    scheme,
                    server_ttl: Some(ttl),
                    rationale: format!(
                        "bursty updates (gap CV {:.2}): the self-adaptive method polls \
                         through bursts and goes quiet through silences{}",
                        profile.update_gap_cv,
                        if matches!(scheme, Scheme::Hybrid { .. }) {
                            "; supernode clusters offload the provider"
                        } else {
                            ""
                        }
                    ),
                }
            } else if profile.update_gap_cv < 0.5 {
                Recommendation {
                    scheme: Scheme::Unicast(MethodKind::AdaptiveTtl),
                    server_ttl: Some(ttl),
                    rationale: format!(
                        "regular updates (gap CV {:.2}) are predictable: adaptive TTL \
                         tracks the update gap and beats a fixed TTL",
                        profile.update_gap_cv
                    ),
                }
            } else {
                Recommendation {
                    scheme: Scheme::Unicast(MethodKind::Ttl),
                    server_ttl: Some(ttl),
                    rationale: format!(
                        "a fixed TTL of {:.0}s keeps staleness within the {bound:.0}s bound \
                         at the lowest provider complexity",
                        ttl.as_secs_f64()
                    ),
                }
            }
        }
        // --- best effort: minimise the objective --------------------------
        None => {
            if profile.servers > LARGE_DEPLOYMENT / 2 {
                Recommendation {
                    scheme: if profile.is_bursty() { Scheme::hat() } else { Scheme::hybrid() },
                    server_ttl: Some(SimDuration::from_secs(60)),
                    rationale: "no staleness bound: the hybrid supernode infrastructure \
                                minimises network load and provider fan-out at scale"
                        .to_owned(),
                }
            } else {
                Recommendation {
                    scheme: Scheme::Unicast(MethodKind::Ttl),
                    server_ttl: Some(SimDuration::from_secs(60)),
                    rationale: "no staleness bound and a small deployment: plain TTL is the \
                                simplest adequate choice"
                        .to_owned(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_simcore::SimRng;

    fn live_game_profile(servers: usize, visit_rate: f64) -> WorkloadProfile {
        let updates = UpdateSequence::live_game(&mut SimRng::seed_from_u64(1));
        WorkloadProfile::from_updates(&updates, visit_rate, servers, 1.0)
    }

    #[test]
    fn profiling_live_game_detects_burstiness() {
        let p = live_game_profile(170, 0.5);
        assert!(p.is_bursty(), "live game gap CV {} should exceed 1.2", p.update_gap_cv);
        // ≈306 updates over 8760 s.
        assert!((0.02..0.06).contains(&p.update_rate_per_s), "rate {}", p.update_rate_per_s);
        assert!(p.mean_update_gap_s() > 15.0);
    }

    #[test]
    fn profiling_periodic_is_regular() {
        let updates =
            UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(3_000));
        let p = WorkloadProfile::from_updates(&updates, 0.5, 100, 1.0);
        assert!(p.update_gap_cv < 0.1, "periodic CV {}", p.update_gap_cv);
        assert!((p.update_rate_per_s - 1.0 / 30.0).abs() < 1e-6);
    }

    #[test]
    fn strict_bound_small_deployment_gets_unicast_push() {
        let p = live_game_profile(60, 0.5);
        let r = recommend(&p, &Requirement::strong(1.0));
        assert_eq!(r.scheme, Scheme::Unicast(MethodKind::Push));
        assert!(r.server_ttl.is_none());
    }

    #[test]
    fn strict_bound_large_deployment_gets_multicast_push() {
        let p = live_game_profile(850, 0.5);
        let r = recommend(&p, &Requirement::strong(1.0));
        assert!(matches!(r.scheme, Scheme::Multicast { method: MethodKind::Push, .. }));
    }

    #[test]
    fn big_payloads_push_through_the_tree() {
        let mut p = live_game_profile(60, 0.5);
        p.update_packet_kb = 500.0;
        let r = recommend(&p, &Requirement::strong(1.0));
        assert!(matches!(r.scheme, Scheme::Multicast { .. }));
    }

    #[test]
    fn rare_visits_get_invalidation() {
        let p = live_game_profile(60, 0.001); // visits far rarer than updates
        let r = recommend(&p, &Requirement::strong(30.0));
        assert_eq!(r.scheme, Scheme::Unicast(MethodKind::Invalidation));
    }

    #[test]
    fn bursty_bounded_gets_self_adaptive_or_hat() {
        let small = recommend(&live_game_profile(60, 0.5), &Requirement::strong(60.0));
        assert_eq!(small.scheme, Scheme::Unicast(MethodKind::SelfAdaptive));
        let large = recommend(&live_game_profile(850, 0.5), &Requirement::strong(60.0));
        assert_eq!(large.scheme, Scheme::hat());
        // Provider-load objective prefers the supernode tree even when small.
        let req =
            Requirement { max_staleness_s: Some(60.0), objective: CostObjective::ProviderLoad };
        assert_eq!(recommend(&live_game_profile(60, 0.5), &req).scheme, Scheme::hat());
    }

    #[test]
    fn regular_bounded_gets_adaptive_ttl() {
        let updates =
            UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(3_000));
        let p = WorkloadProfile::from_updates(&updates, 0.5, 100, 1.0);
        let r = recommend(&p, &Requirement::strong(45.0));
        assert_eq!(r.scheme, Scheme::Unicast(MethodKind::AdaptiveTtl));
        let ttl = r.server_ttl.unwrap().as_secs_f64();
        assert!((30.0..=40.0).contains(&ttl), "TTL {ttl} ≈ 80% of the 45 s bound");
    }

    #[test]
    fn best_effort_prefers_hybrid_at_scale() {
        let r = recommend(&live_game_profile(850, 0.5), &Requirement::best_effort());
        assert!(matches!(r.scheme, Scheme::Hybrid { .. }));
        let r2 = recommend(&live_game_profile(40, 0.5), &Requirement::best_effort());
        assert_eq!(r2.scheme, Scheme::Unicast(MethodKind::Ttl));
    }

    #[test]
    fn recommendation_displays_with_rationale() {
        let r = recommend(&live_game_profile(60, 0.5), &Requirement::strong(60.0));
        let text = r.to_string();
        assert!(text.contains("Self"));
        assert!(text.contains("bursty"), "rationale should explain itself: {text}");
    }
}
