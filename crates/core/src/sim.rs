//! The event-driven CDN consistency simulator.
//!
//! Replays an update sequence through a deployment [`Scheme`](crate::Scheme) and measures
//! the paper's §4/§5 quantities: per-server and per-user inconsistency,
//! traffic cost, message counts, and user-observed inconsistency.
//!
//! ## Protocol semantics (matching the paper)
//!
//! * **TTL** polls are *unconditional* GETs: the upstream always returns the
//!   full content, even when unchanged — this is exactly why the paper finds
//!   TTL "wastes traffic in probing unchanged content" (§4.3).
//! * **Self-adaptive** polls are *conditional* (version-carrying): an
//!   unchanged response is a light message and triggers the Algorithm 1
//!   switch to Invalidation.
//! * **Push** forwards content down the distribution topology immediately.
//! * **Invalidation** notices propagate down immediately; a stale replica
//!   fetches on the next user visit, chaining polls up through stale
//!   ancestors (the user's response waits for the fetch, which is why
//!   Invalidation matches Push from the user's perspective, Fig. 14(b)).

use crate::config::{ChurnKind, ChurnTarget, FaultPlan, Scheme, SimConfig, WorkloadPlan};
use crate::method::{AdaptiveMode, MethodKind};
use crate::metrics::{SimReport, WorkloadStats};
use crate::topology::Topology;
use cdnc_geo::{IspId, WorldBuilder};
use cdnc_net::{FaultPlane, Network, NodeId, Packet, PacketKind, PACKET_KINDS};
use cdnc_obs::profile::{self, Subsystem};
use cdnc_obs::{
    Checkpoint, Counter, Digest, Gauge, HandlerTimer, Histogram, Level, Registry, SpanKind,
    TraceCtx, Tracer,
};
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::stats::OnlineStats;
use cdnc_simcore::{stream_tag, Scheduler, SimDuration, SimRng, SimTime};
use cdnc_trace::SnapshotId;
use cdnc_workload::{Catalog, Lookup, LruCache, ObjectId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Runs one simulation and returns its report.
///
/// Deterministic in the configuration (including its seed).
///
/// # Panics
///
/// Panics if `config.servers == 0`.
///
/// # Examples
///
/// ```
/// use cdnc_core::{run, MethodKind, Scheme, SimConfig};
/// use cdnc_simcore::{SimDuration, SimTime};
/// use cdnc_trace::UpdateSequence;
///
/// let updates = UpdateSequence::periodic(
///     SimDuration::from_secs(30),
///     SimTime::from_secs(300),
/// );
/// let mut cfg = SimConfig::section4(Scheme::Unicast(MethodKind::Push), updates);
/// cfg.servers = 20;
/// let report = run(&cfg);
/// assert!(report.mean_server_lag_s() < 1.0, "push keeps servers fresh");
/// ```
pub fn run(config: &SimConfig) -> SimReport {
    run_with_obs(config, &Registry::disabled())
}

/// Runs one simulation with instrumentation recording into `obs`.
///
/// Instrumentation is observation-only: for a fixed configuration the
/// returned [`SimReport`] is bit-identical whether `obs` is enabled or
/// disabled (the paired-run test in `cdnc-experiments` enforces this).
/// With [`Registry::disabled`] every hook costs one branch.
pub fn run_with_obs(config: &SimConfig, obs: &Registry) -> SimReport {
    // Allocation attribution: everything the simulation allocates that is
    // not claimed by a nested scope (scheduler, network, tracer, series)
    // lands in the `sim_core` bucket.
    let _prof = profile::scope(Subsystem::SimCore);
    let sim = {
        let _build = obs.span("sim_build");
        CdnSimulation::new(config, obs)
    };
    let _run = obs.span("sim_events");
    sim.run()
}

/// Runs `config` until simulation time `at` (inclusive) and serializes the
/// paused simulation into a versioned checkpoint artifact.
///
/// The artifact captures the complete dynamic state — scheduler queue, RNG
/// streams, node/tree/cache state, and the determinism-digest segment — so
/// [`resume`] on the same configuration continues the run exactly where it
/// stopped: the resumed report (and, with an armed digest, the audit chain)
/// is bit-identical to an uninterrupted [`run`].
pub fn checkpoint(config: &SimConfig, at: SimTime) -> String {
    checkpoint_with_obs(config, &Registry::disabled(), at)
}

/// [`checkpoint`] with instrumentation recording into `obs`.
pub fn checkpoint_with_obs(config: &SimConfig, obs: &Registry, at: SimTime) -> String {
    let _prof = profile::scope(Subsystem::SimCore);
    let mut sim = {
        let _build = obs.span("sim_build");
        CdnSimulation::new(config, obs)
    };
    let _run = obs.span("sim_events");
    sim.run_until(at);
    sim.ckpt_write()
}

/// Restores a [`checkpoint`] artifact on `config` and runs it to completion.
///
/// Errors when the artifact is malformed or was taken under a structurally
/// different configuration (node/user counts, subsystem presence).
pub fn resume(config: &SimConfig, artifact: &str) -> Result<SimReport, CkptError> {
    resume_with_obs(config, &Registry::disabled(), artifact)
}

/// [`resume`] with instrumentation recording into `obs`. When `obs` has a
/// determinism digest armed, the restored run continues the saved chain.
pub fn resume_with_obs(
    config: &SimConfig,
    obs: &Registry,
    artifact: &str,
) -> Result<SimReport, CkptError> {
    let _prof = profile::scope(Subsystem::SimCore);
    let mut sim = {
        let _build = obs.span("sim_build");
        CdnSimulation::new(config, obs)
    };
    sim.ckpt_read(artifact)?;
    let _run = obs.span("sim_events");
    Ok(sim.run())
}

/// Restores a [`checkpoint`] artifact on `config`, continues the run until
/// simulation time `until` (inclusive), and re-serializes the paused state
/// into a fresh checkpoint artifact.
///
/// This is the anomaly-replay primitive: restore just before a suspect
/// window, step through it, and capture the state on the far side. The
/// returned artifact is bit-identical to [`checkpoint`] taken at `until`
/// on an uninterrupted run.
pub fn resume_until(
    config: &SimConfig,
    artifact: &str,
    until: SimTime,
) -> Result<String, CkptError> {
    resume_until_with_obs(config, &Registry::disabled(), artifact, until)
}

/// [`resume_until`] with instrumentation recording into `obs`. When `obs`
/// has a determinism digest armed, the restored run continues the saved
/// chain.
pub fn resume_until_with_obs(
    config: &SimConfig,
    obs: &Registry,
    artifact: &str,
    until: SimTime,
) -> Result<String, CkptError> {
    let _prof = profile::scope(Subsystem::SimCore);
    let mut sim = {
        let _build = obs.span("sim_build");
        CdnSimulation::new(config, obs)
    };
    sim.ckpt_read(artifact)?;
    let _run = obs.span("sim_events");
    sim.run_until(until);
    Ok(sim.ckpt_write())
}

#[derive(Debug, Clone)]
enum Event {
    /// The provider publishes update `idx` of the sequence.
    Publish(u32),
    /// A polling server's TTL timer fires (with its generation).
    PollTimer(NodeId, u64),
    /// A message is delivered to a node.
    Arrive(NodeId, Msg),
    /// An end-user visits a server.
    UserVisit(u32),
    /// A server fails / becomes overloaded (failure injection).
    Fail(NodeId),
    /// A failed server recovers.
    Recover(NodeId),
    /// An on-demand fetch has waited too long for a response.
    FetchTimeout(NodeId, u64),
    /// Under failure injection: an invalidation-mode node periodically
    /// re-registers with its upstream in case the switch notice was lost.
    Heartbeat(NodeId, u64),
    /// Under a [`FaultPlan`]: a tracked delivery's retransmit timer fires.
    /// The second field is the attempt count at arming; a mismatch with the
    /// pending entry means the timer is stale.
    Retransmit(u64, u32),
    /// Under a [`FaultPlan`]: the failure detector checks `node`'s upstream
    /// (with a generation, like poll timers, so re-wiring kills old chains).
    Probe(NodeId, u64),
    /// Under a [`WorkloadPlan`]: user `.0` requests an object from their
    /// current server.
    Request(u32),
    /// Under a [`WorkloadPlan`]: an origin fetch lands at an edge — cache
    /// the object (filled at provider snapshot `.2`) and release its
    /// waiters.
    Fill(NodeId, ObjectId, u32),
    /// Under a [`WorkloadPlan`]: one catalog publish/perish churn event.
    Churn,
    /// Under a [`ChurnPlan`](crate::ChurnPlan): a server departs gracefully —
    /// it hands off its waiters and drains its protocol state before going
    /// dark.
    NodeLeave(NodeId),
    /// Under a [`ChurnPlan`](crate::ChurnPlan): a server crashes — it goes
    /// dark instantly and loses its consistency state and cache.
    NodeCrash(NodeId),
    /// Under a [`ChurnPlan`](crate::ChurnPlan): a departed server comes
    /// back and bootstraps — tree admission, uplink registration, and a
    /// resync from its parent.
    NodeJoin(NodeId),
}

/// Dispatch-timer labels, one per [`Event`] kind, indexed by
/// [`Event::obs_idx`].
const EVENT_TIMER_LABELS: [&str; 16] = [
    "ev_publish",
    "ev_poll_timer",
    "ev_arrive",
    "ev_user_visit",
    "ev_fail",
    "ev_recover",
    "ev_fetch_timeout",
    "ev_heartbeat",
    "ev_retransmit",
    "ev_probe",
    "ev_request",
    "ev_fill",
    "ev_churn",
    "ev_node_leave",
    "ev_node_crash",
    "ev_node_join",
];

impl Event {
    /// This event's slot in [`EVENT_TIMER_LABELS`].
    fn obs_idx(&self) -> usize {
        match self {
            Event::Publish(..) => 0,
            Event::PollTimer(..) => 1,
            Event::Arrive(..) => 2,
            Event::UserVisit(..) => 3,
            Event::Fail(..) => 4,
            Event::Recover(..) => 5,
            Event::FetchTimeout(..) => 6,
            Event::Heartbeat(..) => 7,
            Event::Retransmit(..) => 8,
            Event::Probe(..) => 9,
            Event::Request(..) => 10,
            Event::Fill(..) => 11,
            Event::Churn => 12,
            Event::NodeLeave(..) => 13,
            Event::NodeCrash(..) => 14,
            Event::NodeJoin(..) => 15,
        }
    }
}

#[derive(Debug, Clone)]
enum Msg {
    /// Content (push, or poll/fetch response). `modified_at` is the
    /// provider-side publish instant of the carried snapshot (the HTTP
    /// Last-Modified analogue adaptive TTL keys off). `ctx` is the causal
    /// trace context of the carried content ([`TraceCtx::NONE`] unless
    /// tracing is on — observation-only, never read by handlers).
    Update { snap: SnapshotId, modified_at: SimTime, ctx: TraceCtx },
    /// Invalidation notice for version `.0`, carrying the causal context of
    /// the update that triggered it.
    Invalidate(SnapshotId, TraceCtx),
    /// A downstream node asks for content. `conditional` polls get a light
    /// `Unchanged` when nothing is new; unconditional polls always get the
    /// full content back.
    Poll { from: NodeId, have: SnapshotId, conditional: bool },
    /// Light "nothing new" reply to a conditional poll.
    Unchanged,
    /// Algorithm 1 mode notification: the sender is now in invalidation
    /// mode (`true`) or back to TTL (`false`).
    SwitchMode { from: NodeId, to_invalidation: bool },
    /// Structure maintenance: the sender attaches below the receiver after
    /// a failure repair or re-join, declaring whether it currently expects
    /// invalidations.
    TreeJoin { from: NodeId, invalidation_mode: bool },
    /// Reliable-delivery envelope (only minted under a [`FaultPlan`]): the
    /// receiver acks `id` back to `from` and suppresses duplicate ids
    /// before handling `inner`. Travels as `inner`'s wire class.
    Tracked { id: u64, from: NodeId, inner: Box<Msg> },
    /// Acknowledgement of a tracked delivery; cancels its retransmit timer.
    Ack { id: u64 },
}

impl Msg {
    /// The wire class this message travels as (must mirror the packet
    /// construction in [`CdnSimulation::send`]).
    fn kind(&self) -> PacketKind {
        match self {
            Msg::Update { .. } => PacketKind::Update,
            Msg::Invalidate(..) => PacketKind::Invalidation,
            Msg::Poll { .. } => PacketKind::Poll,
            Msg::Unchanged => PacketKind::PollUnchanged,
            Msg::SwitchMode { .. } => PacketKind::MethodSwitch,
            Msg::TreeJoin { .. } => PacketKind::TreeMaintenance,
            Msg::Tracked { inner, .. } => inner.kind(),
            Msg::Ack { .. } => PacketKind::Ack,
        }
    }

    /// The causal context this message propagates ([`TraceCtx::NONE`] for
    /// message classes outside any update's journey).
    fn trace_ctx(&self) -> TraceCtx {
        match self {
            Msg::Update { ctx, .. } | Msg::Invalidate(_, ctx) => *ctx,
            Msg::Tracked { inner, .. } => inner.trace_ctx(),
            _ => TraceCtx::NONE,
        }
    }

    /// A structural payload tag for the determinism digest: the version or
    /// identifier the message carries, independent of trace contexts (which
    /// vary with observation settings) and of heap addresses.
    fn digest_tag(&self) -> u64 {
        match self {
            Msg::Update { snap, .. } => u64::from(snap.0),
            Msg::Invalidate(snap, _) => u64::from(snap.0),
            Msg::Poll { from, have, .. } => (u64::from(from.0) << 32) | u64::from(have.0),
            Msg::Unchanged => 0,
            Msg::SwitchMode { from, to_invalidation } => {
                (u64::from(from.0) << 1) | u64::from(*to_invalidation)
            }
            Msg::TreeJoin { from, invalidation_mode } => {
                (u64::from(from.0) << 1) | u64::from(*invalidation_mode)
            }
            Msg::Tracked { id, inner, .. } => id.wrapping_mul(31).wrapping_add(inner.digest_tag()),
            Msg::Ack { id } => *id,
        }
    }

    /// Replaces the carried context (with the hop span the network minted).
    fn set_ctx(&mut self, new: TraceCtx) {
        match self {
            Msg::Update { ctx, .. } | Msg::Invalidate(_, ctx) => *ctx = new,
            Msg::Tracked { inner, .. } => inner.set_ctx(new),
            _ => {}
        }
    }

    /// Serializes this message (variant tag + payload). Trace contexts are
    /// observation-only and are not stored — a restored message carries
    /// [`TraceCtx::NONE`], which never affects handlers or the determinism
    /// digest (whose tags are context-independent).
    fn ckpt_write(&self, w: &mut CkptWriter) {
        match self {
            Msg::Update { snap, modified_at, .. } => {
                w.u64("msg", 0);
                w.u64("a", u64::from(snap.0));
                w.time("b", *modified_at);
            }
            Msg::Invalidate(snap, _) => {
                w.u64("msg", 1);
                w.u64("a", u64::from(snap.0));
            }
            Msg::Poll { from, have, conditional } => {
                w.u64("msg", 2);
                w.u64("a", u64::from(from.0));
                w.u64("b", u64::from(have.0));
                w.bool("c", *conditional);
            }
            Msg::Unchanged => w.u64("msg", 3),
            Msg::SwitchMode { from, to_invalidation } => {
                w.u64("msg", 4);
                w.u64("a", u64::from(from.0));
                w.bool("b", *to_invalidation);
            }
            Msg::TreeJoin { from, invalidation_mode } => {
                w.u64("msg", 5);
                w.u64("a", u64::from(from.0));
                w.bool("b", *invalidation_mode);
            }
            Msg::Tracked { id, from, inner } => {
                w.u64("msg", 6);
                w.u64("a", *id);
                w.u64("b", u64::from(from.0));
                inner.ckpt_write(w);
            }
            Msg::Ack { id } => {
                w.u64("msg", 7);
                w.u64("a", *id);
            }
        }
    }

    /// Restores a message written by [`Msg::ckpt_write`].
    fn ckpt_read(r: &mut CkptReader) -> Result<Msg, CkptError> {
        Ok(match r.u64("msg")? {
            0 => Msg::Update {
                snap: SnapshotId(r.u64("a")? as u32),
                modified_at: r.time("b")?,
                ctx: TraceCtx::NONE,
            },
            1 => Msg::Invalidate(SnapshotId(r.u64("a")? as u32), TraceCtx::NONE),
            2 => Msg::Poll {
                from: NodeId(r.u64("a")? as u32),
                have: SnapshotId(r.u64("b")? as u32),
                conditional: r.bool("c")?,
            },
            3 => Msg::Unchanged,
            4 => {
                Msg::SwitchMode { from: NodeId(r.u64("a")? as u32), to_invalidation: r.bool("b")? }
            }
            5 => {
                Msg::TreeJoin { from: NodeId(r.u64("a")? as u32), invalidation_mode: r.bool("b")? }
            }
            6 => Msg::Tracked {
                id: r.u64("a")?,
                from: NodeId(r.u64("b")? as u32),
                inner: Box::new(Msg::ckpt_read(r)?),
            },
            7 => Msg::Ack { id: r.u64("a")? },
            t => return Err(CkptError(format!("unknown message tag {t}"))),
        })
    }
}

impl Event {
    /// Serializes this event (its [`Event::obs_idx`] as the variant tag,
    /// then the payload).
    fn ckpt_write(&self, w: &mut CkptWriter) {
        w.usize("ev", self.obs_idx());
        match self {
            Event::Publish(idx) => w.u64("a", u64::from(*idx)),
            Event::PollTimer(node, gen)
            | Event::FetchTimeout(node, gen)
            | Event::Heartbeat(node, gen)
            | Event::Probe(node, gen) => {
                w.u64("a", u64::from(node.0));
                w.u64("b", *gen);
            }
            Event::Arrive(node, msg) => {
                w.u64("a", u64::from(node.0));
                msg.ckpt_write(w);
            }
            Event::UserVisit(u) | Event::Request(u) => w.u64("a", u64::from(*u)),
            Event::Fail(node)
            | Event::Recover(node)
            | Event::NodeLeave(node)
            | Event::NodeCrash(node)
            | Event::NodeJoin(node) => w.u64("a", u64::from(node.0)),
            Event::Retransmit(id, attempt) => {
                w.u64("a", *id);
                w.u64("b", u64::from(*attempt));
            }
            Event::Fill(edge, id, snap) => {
                w.u64("a", u64::from(edge.0));
                w.u64("b", u64::from(id.slot));
                w.u64("c", u64::from(id.gen));
                w.u64("d", u64::from(*snap));
            }
            Event::Churn => {}
        }
    }

    /// Restores an event written by [`Event::ckpt_write`].
    fn ckpt_read(r: &mut CkptReader) -> Result<Event, CkptError> {
        Ok(match r.usize("ev")? {
            0 => Event::Publish(r.u64("a")? as u32),
            1 => Event::PollTimer(NodeId(r.u64("a")? as u32), r.u64("b")?),
            2 => Event::Arrive(NodeId(r.u64("a")? as u32), Msg::ckpt_read(r)?),
            3 => Event::UserVisit(r.u64("a")? as u32),
            4 => Event::Fail(NodeId(r.u64("a")? as u32)),
            5 => Event::Recover(NodeId(r.u64("a")? as u32)),
            6 => Event::FetchTimeout(NodeId(r.u64("a")? as u32), r.u64("b")?),
            7 => Event::Heartbeat(NodeId(r.u64("a")? as u32), r.u64("b")?),
            8 => Event::Retransmit(r.u64("a")?, r.u64("b")? as u32),
            9 => Event::Probe(NodeId(r.u64("a")? as u32), r.u64("b")?),
            10 => Event::Request(r.u64("a")? as u32),
            11 => {
                let edge = NodeId(r.u64("a")? as u32);
                let id = ObjectId { slot: r.u64("b")? as u32, gen: r.u64("c")? as u32 };
                Event::Fill(edge, id, r.u64("d")? as u32)
            }
            12 => Event::Churn,
            13 => Event::NodeLeave(NodeId(r.u64("a")? as u32)),
            14 => Event::NodeCrash(NodeId(r.u64("a")? as u32)),
            15 => Event::NodeJoin(NodeId(r.u64("a")? as u32)),
            t => return Err(CkptError(format!("unknown event tag {t}"))),
        })
    }
}

#[derive(Debug)]
struct NodeState {
    content: SnapshotId,
    /// Highest version this node has been told is newer than its content.
    known_stale: Option<SnapshotId>,
    /// Algorithm 1 state (self-adaptive nodes only).
    mode: AdaptiveMode,
    /// An on-demand fetch to the upstream is in flight.
    fetch_pending: bool,
    /// Poll-timer generation; stale timer events are ignored.
    timer_gen: u64,
    /// On-demand fetch identifier; stale fetch timeouts are ignored.
    fetch_token: u64,
    /// Whether the node is currently failed/overloaded.
    absent: bool,
    /// Provider-side publish instant of the current content (carried on
    /// update messages — the Last-Modified analogue).
    content_modified_at: SimTime,
    /// Adaptive-TTL state: the current poll interval estimate, seconds.
    adaptive_interval_s: f64,
    /// Downstream nodes whose on-demand polls wait on our fetch.
    waiting_children: Vec<NodeId>,
    /// Users whose visits wait on our fetch.
    waiting_users: Vec<u32>,
    /// Downstream self-adaptive nodes currently in invalidation mode.
    inval_registry: Vec<NodeId>,
    /// Highest version we already invalidated our children for.
    last_invalidated: SnapshotId,
    /// Publishes not yet adopted, for lag accounting.
    pending_pubs: VecDeque<(SnapshotId, SimTime)>,
    lag: OnlineStats,
    /// Causal trace context of the current content (terminal adopt span, or
    /// the publish root on the provider). Observation-only.
    content_ctx: TraceCtx,
    /// When the failure detector's outstanding probe was sent (`None` when
    /// no probe is in flight). Only used under a [`FaultPlan`].
    awaiting_probe: Option<SimTime>,
    /// Probe-chain generation; stale probe events are ignored.
    probe_gen: u64,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            content: SnapshotId(0),
            known_stale: None,
            mode: AdaptiveMode::Ttl,
            fetch_pending: false,
            timer_gen: 0,
            fetch_token: 0,
            absent: false,
            content_modified_at: SimTime::ZERO,
            adaptive_interval_s: 0.0,
            waiting_children: Vec::new(),
            waiting_users: Vec::new(),
            inval_registry: Vec::new(),
            last_invalidated: SnapshotId(0),
            pending_pubs: VecDeque::new(),
            lag: OnlineStats::new(),
            content_ctx: TraceCtx::NONE,
            awaiting_probe: None,
            probe_gen: 0,
        }
    }

    fn is_stale(&self) -> bool {
        self.known_stale.is_some_and(|s| s > self.content)
    }

    /// Estimated resident size of this node's state: the struct itself plus
    /// the heap blocks behind its collections (capacity, not length — what
    /// the allocator actually holds).
    fn estimated_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>()
            + self.waiting_children.capacity() * std::mem::size_of::<NodeId>()
            + self.waiting_users.capacity() * std::mem::size_of::<u32>()
            + self.inval_registry.capacity() * std::mem::size_of::<NodeId>()
            + self.pending_pubs.capacity() * std::mem::size_of::<(SnapshotId, SimTime)>())
            as u64
    }
}

#[derive(Debug)]
struct UserState {
    home: NodeId,
    last_server: NodeId,
    /// This user's visit interval (heterogeneous when
    /// `SimConfig::visit_spread > 0`).
    visit_interval: SimDuration,
    seen_max: SnapshotId,
    pending_pubs: VecDeque<(SnapshotId, SimTime)>,
    lag: OnlineStats,
    inconsistent_obs: u64,
    total_obs: u64,
}

impl UserState {
    /// Estimated resident size, like [`NodeState::estimated_bytes`].
    fn estimated_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>()
            + self.pending_pubs.capacity() * std::mem::size_of::<(SnapshotId, SimTime)>())
            as u64
    }
}

/// Pre-grabbed instrumentation handles for the simulator's hot paths.
///
/// Handles are resolved once at construction so the per-event cost with a
/// disabled registry is a single branch, and label lookup never happens
/// inside the event loop. Everything here is observation-only: no handler
/// ever reads a metric back.
struct SimObs {
    registry: Registry,
    /// Messages sent, by class — indexed by `PacketKind as usize`.
    msgs: [Counter; PACKET_KINDS],
    /// Event-loop dispatches, by event kind.
    ev_publish: Counter,
    ev_poll_timer: Counter,
    ev_arrive: Counter,
    ev_user_visit: Counter,
    ev_fail: Counter,
    ev_recover: Counter,
    ev_fetch_timeout: Counter,
    ev_heartbeat: Counter,
    ev_retransmit: Counter,
    ev_probe: Counter,
    ev_request: Counter,
    ev_fill: Counter,
    ev_churn: Counter,
    ev_node_leave: Counter,
    ev_node_crash: Counter,
    ev_node_join: Counter,
    /// Algorithm 1 transitions (paper lines 7–8 and 12–13).
    switch_to_invalidation: Counter,
    switch_to_ttl: Counter,
    /// §5.2 failure repair: orphans re-parented after a member failed, and
    /// recovered members re-joining the tree.
    orphan_reattach: Counter,
    tree_rejoin: Counter,
    /// Publish→adopt latency per update method, indexed like
    /// [`MethodKind::ALL`]; the last slot catches method-less nodes.
    adopt_lag: [Histogram; 6],
    /// Messages sent but not yet arrived, by class — indexed like `msgs`.
    inflight: [Gauge; PACKET_KINDS],
    /// Server replicas currently holding content they know is stale
    /// (invalidation received, refresh not yet adopted).
    stale_replicas: Gauge,
    /// Published-but-unadopted updates across servers, per method —
    /// indexed like `adopt_lag` — plus one gauge for end users.
    pending_updates: [Gauge; 6],
    pending_user_updates: Gauge,
    /// Self-adaptive nodes currently in invalidation mode (Algorithm 1
    /// mode occupancy).
    inval_mode_nodes: Gauge,
    /// Fault-plane protocol instruments (all zero when no plan is attached,
    /// except `msgs_lost_to_failed` which also counts under plain failure
    /// injection).
    rtx_sent: Counter,
    rtx_abandoned: Counter,
    dup_suppressed: Counter,
    upstream_suspects: Counter,
    failovers: Counter,
    ttl_fallbacks: Counter,
    msgs_lost_to_failed: Counter,
    convergence_violations: Counter,
    /// Tracked deliveries abandoned immediately because their destination
    /// departed (lifecycle churn; subset of `rtx_abandoned`).
    abandoned_to_departed: Counter,
    /// Tracked deliveries currently awaiting an ack.
    pending_retransmits: Gauge,
    /// Request-plane (workload) instruments — all dark without a
    /// [`WorkloadPlan`].
    wl_requests: Counter,
    wl_hits: Counter,
    wl_delayed_hits: Counter,
    wl_misses: Counter,
    wl_evictions: Counter,
    wl_origin_fetches: Counter,
    wl_churn_events: Counter,
    /// Delayed-hit waiters released as misses because their edge departed
    /// mid-fetch, and origin-fetch payloads dropped at a departed edge
    /// (lifecycle-churn runs only).
    wl_waiters_aborted: Counter,
    wl_orphan_fills: Counter,
    /// User-perceived request latency and staleness-served distributions,
    /// seconds (request-plane runs only).
    wl_latency_s: Histogram,
    wl_staleness_served_s: Histogram,
    /// Structural profiling probes, armed only when the registry has
    /// profiling enabled: per-node / per-user resident state-size estimates,
    /// one sample each at the end of the run.
    node_state_bytes: Histogram,
    user_state_bytes: Histogram,
    /// Causal update tracer (inert unless enabled on the registry).
    tracer: Tracer,
    /// Per-event-kind dispatch timers, indexed by [`Event::obs_idx`] —
    /// wall-clock handler cost where the scheduler hands events to the
    /// run loop (timeprof gate; inert unless armed).
    ev_timers: [HandlerTimer; 16],
    /// Per-message-kind dispatch timers for `on_arrive`, indexed by
    /// [`SimObs::msg_timer_idx`] (same gate).
    msg_timers: [HandlerTimer; 10],
    /// Determinism audit chain (inert unless the registry armed it): one
    /// fold per dispatched event, keyed on structural identity only.
    digest: Digest,
}

impl SimObs {
    fn new(registry: &Registry) -> Self {
        let msg_names = [
            "sim_msgs_update",
            "sim_msgs_poll",
            "sim_msgs_poll_unchanged",
            "sim_msgs_invalidation",
            "sim_msgs_method_switch",
            "sim_msgs_tree_maintenance",
            "sim_msgs_user_request",
            "sim_msgs_user_response",
            "sim_msgs_ack",
            "sim_msgs_origin_fetch",
        ];
        let adopt_names = [
            "sim_adopt_lag_s_push",
            "sim_adopt_lag_s_invalidation",
            "sim_adopt_lag_s_ttl",
            "sim_adopt_lag_s_self_adaptive",
            "sim_adopt_lag_s_adaptive_ttl",
            "sim_adopt_lag_s_other",
        ];
        let inflight_names = [
            "sim_inflight_update",
            "sim_inflight_poll",
            "sim_inflight_poll_unchanged",
            "sim_inflight_invalidation",
            "sim_inflight_method_switch",
            "sim_inflight_tree_maintenance",
            "sim_inflight_user_request",
            "sim_inflight_user_response",
            "sim_inflight_ack",
            "sim_inflight_origin_fetch",
        ];
        let pending_names = [
            "sim_pending_updates_push",
            "sim_pending_updates_invalidation",
            "sim_pending_updates_ttl",
            "sim_pending_updates_self_adaptive",
            "sim_pending_updates_adaptive_ttl",
            "sim_pending_updates_other",
        ];
        // Series sources (no-ops unless series sampling is enabled): the
        // per-class message counters become traffic-rate series; the
        // consistency gauges are sampled directly.
        for name in msg_names {
            registry.series_rate(name);
        }
        for name in inflight_names {
            registry.series_gauge(name);
        }
        for name in pending_names {
            registry.series_gauge(name);
        }
        registry.series_gauge("sim_stale_replicas");
        registry.series_gauge("sim_pending_updates_users");
        registry.series_gauge("sim_mode_invalidation_nodes");
        registry.series_gauge("sim_pending_retransmits");
        registry.series_rate("wl_requests");
        registry.series_rate("wl_misses");
        SimObs {
            registry: registry.clone(),
            msgs: msg_names.map(|n| registry.counter(n)),
            ev_publish: registry.counter("sim_ev_publish"),
            ev_poll_timer: registry.counter("sim_ev_poll_timer"),
            ev_arrive: registry.counter("sim_ev_arrive"),
            ev_user_visit: registry.counter("sim_ev_user_visit"),
            ev_fail: registry.counter("sim_ev_fail"),
            ev_recover: registry.counter("sim_ev_recover"),
            ev_fetch_timeout: registry.counter("sim_ev_fetch_timeout"),
            ev_heartbeat: registry.counter("sim_ev_heartbeat"),
            ev_retransmit: registry.counter("sim_ev_retransmit"),
            ev_probe: registry.counter("sim_ev_probe"),
            ev_request: registry.counter("sim_ev_request"),
            ev_fill: registry.counter("sim_ev_fill"),
            ev_churn: registry.counter("sim_ev_churn"),
            ev_node_leave: registry.counter("sim_ev_node_leave"),
            ev_node_crash: registry.counter("sim_ev_node_crash"),
            ev_node_join: registry.counter("sim_ev_node_join"),
            switch_to_invalidation: registry.counter("sim_switch_to_invalidation"),
            switch_to_ttl: registry.counter("sim_switch_to_ttl"),
            orphan_reattach: registry.counter("sim_orphan_reattach"),
            tree_rejoin: registry.counter("sim_tree_rejoin"),
            adopt_lag: adopt_names.map(|n| registry.histogram(n)),
            inflight: inflight_names.map(|n| registry.gauge(n)),
            stale_replicas: registry.gauge("sim_stale_replicas"),
            pending_updates: pending_names.map(|n| registry.gauge(n)),
            pending_user_updates: registry.gauge("sim_pending_updates_users"),
            inval_mode_nodes: registry.gauge("sim_mode_invalidation_nodes"),
            rtx_sent: registry.counter("sim_rtx_sent"),
            rtx_abandoned: registry.counter("sim_rtx_abandoned"),
            dup_suppressed: registry.counter("sim_dup_suppressed"),
            upstream_suspects: registry.counter("sim_upstream_suspects"),
            failovers: registry.counter("sim_failovers"),
            ttl_fallbacks: registry.counter("sim_ttl_fallbacks"),
            msgs_lost_to_failed: registry.counter("sim_msgs_lost_to_failed"),
            convergence_violations: registry.counter("sim_convergence_violations"),
            abandoned_to_departed: registry.counter("sim_abandoned_to_departed"),
            pending_retransmits: registry.gauge("sim_pending_retransmits"),
            wl_requests: registry.counter("wl_requests"),
            wl_hits: registry.counter("wl_hits"),
            wl_delayed_hits: registry.counter("wl_delayed_hits"),
            wl_misses: registry.counter("wl_misses"),
            wl_evictions: registry.counter("wl_evictions"),
            wl_origin_fetches: registry.counter("wl_origin_fetches"),
            wl_churn_events: registry.counter("wl_churn_events"),
            wl_waiters_aborted: registry.counter("wl_waiters_aborted"),
            wl_orphan_fills: registry.counter("wl_orphan_fills"),
            wl_latency_s: registry.histogram("wl_latency_s"),
            wl_staleness_served_s: registry.histogram("wl_staleness_served_s"),
            node_state_bytes: if registry.profiling_enabled() {
                registry.histogram("sim_node_state_bytes")
            } else {
                Histogram::default()
            },
            user_state_bytes: if registry.profiling_enabled() {
                registry.histogram("sim_user_state_bytes")
            } else {
                Histogram::default()
            },
            tracer: registry.tracer(),
            ev_timers: EVENT_TIMER_LABELS.map(|n| registry.handler_timer(n)),
            msg_timers: [
                "msg_update",
                "msg_poll",
                "msg_poll_unchanged",
                "msg_invalidation",
                "msg_method_switch",
                "msg_tree_maintenance",
                "msg_user_request",
                "msg_user_response",
                "msg_ack",
                "msg_tracked",
            ]
            .map(|n| registry.handler_timer(n)),
            digest: registry.digest(),
        }
    }

    /// Folds one dispatched event's structural identity into the
    /// determinism digest: per-kind label, acting node, simulated time, and
    /// the variant's payload tags. Only values that are themselves
    /// deterministic functions of the configuration enter the chain —
    /// never wall-clock readings or addresses — so for a fixed config the
    /// chain is bit-identical across runs and job counts.
    fn fold_event(&self, now: SimTime, ev: &Event) {
        if !self.digest.is_enabled() {
            return;
        }
        let t = now.as_micros();
        let d = &self.digest;
        match ev {
            Event::Publish(idx) => d.fold("ev_publish", 0, t, &[u64::from(*idx)]),
            Event::PollTimer(node, gen) => d.fold("ev_poll_timer", node.0, t, &[*gen]),
            Event::Arrive(node, msg) => {
                d.fold("ev_arrive", node.0, t, &[msg.kind() as u64, msg.digest_tag()]);
            }
            Event::UserVisit(u) => d.fold("ev_user_visit", *u, t, &[]),
            Event::Fail(node) => d.fold("ev_fail", node.0, t, &[]),
            Event::Recover(node) => d.fold("ev_recover", node.0, t, &[]),
            Event::FetchTimeout(node, token) => d.fold("ev_fetch_timeout", node.0, t, &[*token]),
            Event::Heartbeat(node, gen) => d.fold("ev_heartbeat", node.0, t, &[*gen]),
            Event::Retransmit(id, attempt) => {
                d.fold("ev_retransmit", 0, t, &[*id, u64::from(*attempt)]);
            }
            Event::Probe(node, gen) => d.fold("ev_probe", node.0, t, &[*gen]),
            Event::Request(u) => d.fold("ev_request", *u, t, &[]),
            Event::Fill(edge, id, snap) => {
                let obj = (u64::from(id.slot) << 32) | u64::from(id.gen);
                d.fold("ev_fill", edge.0, t, &[obj, u64::from(*snap)]);
            }
            Event::Churn => d.fold("ev_churn", 0, t, &[]),
            Event::NodeLeave(node) => d.fold("ev_node_leave", node.0, t, &[]),
            Event::NodeCrash(node) => d.fold("ev_node_crash", node.0, t, &[]),
            Event::NodeJoin(node) => d.fold("ev_node_join", node.0, t, &[]),
        }
    }

    fn msg(&self, kind: PacketKind) -> &Counter {
        &self.msgs[kind as usize]
    }

    /// The dispatch-timer slot for an arriving message: its wire class,
    /// except tracked envelopes get their own slot (their payload recurses
    /// through `on_arrive` and is timed under its own kind).
    fn msg_timer_idx(msg: &Msg) -> usize {
        match msg {
            Msg::Tracked { .. } => 9,
            m => m.kind() as usize,
        }
    }

    /// The instrument slot for `method`: its [`MethodKind::ALL`] position,
    /// or the catch-all last slot for method-less nodes.
    fn method_slot(method: Option<MethodKind>) -> usize {
        match method {
            Some(m) => MethodKind::ALL.iter().position(|&k| k == m).unwrap_or(5),
            None => 5,
        }
    }

    /// The publish→adopt histogram for a node running `method`.
    fn adopt_lag(&self, method: Option<MethodKind>) -> &Histogram {
        &self.adopt_lag[Self::method_slot(method)]
    }

    /// The pending-update gauge for a node running `method`.
    fn pending(&self, method: Option<MethodKind>) -> &Gauge {
        &self.pending_updates[Self::method_slot(method)]
    }
}

/// One tracked delivery awaiting an ack.
#[derive(Debug, Clone)]
struct PendingDelivery {
    src: NodeId,
    dst: NodeId,
    /// The unwrapped payload, re-enveloped on each retransmission.
    msg: Msg,
    /// Retransmissions sent so far (the original send is attempt 0).
    attempts: u32,
    /// Current (backed-off) retransmit timeout.
    rto: SimDuration,
}

/// Reliable-delivery state, allocated only when a [`FaultPlan`] is
/// attached. `BTreeMap`/`BTreeSet` keep every walk deterministic.
#[derive(Debug)]
struct ReliableState {
    plan: FaultPlan,
    next_id: u64,
    pending: BTreeMap<u64, PendingDelivery>,
    /// Per-node set of tracked ids already handled (duplicate suppression).
    seen: Vec<BTreeSet<u64>>,
    /// Dedicated stream for backoff jitter (forked only in fault mode, so
    /// `faults: None` runs keep their pre-existing stream layout).
    jitter_rng: SimRng,
}

/// HAT cluster bookkeeping for graceful degradation (hybrid schemes under
/// a [`FaultPlan`] with `hat_degradation` on).
#[derive(Debug)]
struct ClusterState {
    /// `cluster_of[node.index()]`: the cluster a server belongs to.
    cluster_of: Vec<Option<usize>>,
    /// The current supernode of each cluster (updated on failover).
    supernode: Vec<NodeId>,
    /// The method demoted supernodes fall back to.
    member_method: MethodKind,
}

impl ClusterState {
    fn from_topology(topo: &Topology, n: usize, member_method: MethodKind) -> Self {
        let mut cluster_of = vec![None; n];
        let supernode = topo.supernodes.clone();
        for (k, &sn) in supernode.iter().enumerate() {
            cluster_of[sn.index()] = Some(k);
            // A supernode's downstream mixes its cluster members with its
            // child supernodes in the distribution tree — only the former
            // belong to the cluster.
            for &m in topo.downstream_of(sn) {
                if !supernode.contains(&m) {
                    cluster_of[m.index()] = Some(k);
                }
            }
        }
        ClusterState { cluster_of, supernode, member_method }
    }
}

/// Request-plane state, allocated only when a [`WorkloadPlan`] is
/// attached. Its RNG is a dedicated stream (`seed ^ stream_tag::WORKLOAD`)
/// and every event it schedules is gated on the plan, so `workload: None`
/// runs stay bit-identical to the pre-workload simulator.
#[derive(Debug)]
struct WorkloadState {
    plan: WorkloadPlan,
    catalog: Catalog,
    /// Per-node caches indexed like the network (the provider's slot is
    /// never requested from; full-width indexing keeps lookups branch-free
    /// and allocation deterministic).
    caches: Vec<LruCache>,
    rng: SimRng,
    /// Provider-side publish instant per snapshot id (index =
    /// `SnapshotId.0`; snapshot 0 pre-exists at t = 0).
    pub_times: Vec<SimTime>,
    stats: WorkloadStats,
}

impl WorkloadState {
    /// Omniscient staleness-served, seconds, of a copy filled at provider
    /// snapshot `snap` and served at `now` against provider head `head`:
    /// zero when the copy is current, otherwise the time since the first
    /// publish the copy misses.
    fn staleness_served_s(&self, head: SnapshotId, snap: u32, now: SimTime) -> f64 {
        if SnapshotId(snap) >= head {
            0.0
        } else {
            now.since(self.pub_times[snap as usize + 1]).as_secs_f64()
        }
    }
}

/// Plain counters mirrored into the [`SimReport`] (the obs counters are
/// observation-only and cannot feed results).
#[derive(Debug, Default)]
struct ChaosStats {
    lost_to_failed: u64,
    retransmits: u64,
    abandoned: u64,
    abandoned_to_departed: u64,
    dup_suppressed: u64,
    failovers: u64,
    ttl_fallbacks: u64,
    convergence_violations: u64,
}

/// Node-lifecycle bookkeeping, allocated only when a
/// [`ChurnPlan`](crate::ChurnPlan) is attached.
#[derive(Debug)]
struct LifecycleState {
    /// Why each node is currently down (`None` = up). A `NodeJoin` for a
    /// node with no recorded departure is stale and ignored.
    down_kind: Vec<Option<ChurnKind>>,
    joins: u64,
    leaves: u64,
    crashes: u64,
}

struct CdnSimulation<'a> {
    config: &'a SimConfig,
    net: Network,
    topo: Topology,
    /// The distribution tree for tree-based schemes, kept live so it can be
    /// repaired when members fail.
    tree: Option<crate::tree::DistributionTree>,
    sched: Scheduler<Event>,
    nodes: Vec<NodeState>,
    users: Vec<UserState>,
    rng: SimRng,
    provider_update_messages: u64,
    server_update_messages: u64,
    /// Ack/retransmit machinery (`Some` iff `config.faults` is).
    reliable: Option<ReliableState>,
    /// HAT failover bookkeeping (`Some` only for hybrid runs with
    /// `hat_degradation`).
    clusters: Option<ClusterState>,
    /// Request-plane machinery (`Some` iff `config.workload` is).
    workload: Option<WorkloadState>,
    /// Node-lifecycle machinery (`Some` iff `config.churn` is).
    lifecycle: Option<LifecycleState>,
    chaos: ChaosStats,
    obs: SimObs,
}

impl<'a> CdnSimulation<'a> {
    fn new(config: &'a SimConfig, registry: &Registry) -> Self {
        assert!(config.servers > 0, "need at least one content server");
        let world = WorldBuilder::new(config.servers).seed(config.seed ^ stream_tag::WORLD).build();
        let mut net = Network::new(config.network, config.seed ^ stream_tag::NET);
        net.set_obs(registry);
        // Node 0 is the provider; its ISP is shared with the nearest server's
        // ISP so the Atlanta metro is intra-ISP, like the measured CDN.
        let provider_isp = world
            .nodes()
            .iter()
            .min_by(|a, b| {
                a.location
                    .distance_km(&world.provider_location())
                    .partial_cmp(&b.location.distance_km(&world.provider_location()))
                    .expect("finite")
            })
            .map(|n| n.isp)
            .unwrap_or(IspId(0));
        net.add_node(world.provider_location(), provider_isp);
        for n in world.nodes() {
            net.add_node(n.location, n.isp);
        }
        let mut rng = SimRng::seed_from_u64(config.seed ^ stream_tag::SIM);
        let (topo, tree) = Topology::build_with_tree(&config.scheme, &net, &mut rng.fork());

        let nodes: Vec<NodeState> = (0..net.len()).map(|_| NodeState::new()).collect();
        let mut user_rng = rng.fork();
        let users: Vec<UserState> = (0..config.users())
            .map(|u| {
                let home = topo.servers[u / config.users_per_server.max(1)];
                let visit_interval = if config.visit_spread > 0.0 {
                    let hi = 1.0 + config.visit_spread;
                    // Log-uniform factor in [1/hi, hi].
                    let factor = hi.powf(user_rng.uniform_range(-1.0, 1.0));
                    config.user_ttl.mul_f64(factor)
                } else {
                    config.user_ttl
                };
                UserState {
                    home,
                    last_server: home,
                    visit_interval,
                    seen_max: SnapshotId(0),
                    pending_pubs: VecDeque::new(),
                    lag: OnlineStats::new(),
                    inconsistent_obs: 0,
                    total_obs: 0,
                }
            })
            .collect();

        let mut sched = Scheduler::with_horizon(config.horizon());
        sched.set_obs(registry);
        // Publishes: snapshot 0 pre-exists everywhere; 1.. are events.
        for (id, t) in config.updates.iter().skip(1) {
            sched.schedule_at(
                SimTime::ZERO + config.update_start + t.since(SimTime::ZERO),
                Event::Publish(id.0),
            );
        }
        // Poll timers for polling servers, at random phases.
        for &s in &topo.servers {
            if topo.method_of(s).is_some_and(MethodKind::polls) {
                let phase = SimDuration::from_secs_f64(
                    rng.uniform_range(0.0, config.server_ttl.as_secs_f64().max(1e-6)),
                );
                sched.schedule_at(SimTime::ZERO + phase, Event::PollTimer(s, 0));
            }
        }
        // User visit starts.
        for u in 0..users.len() as u32 {
            let start = SimDuration::from_secs_f64(
                rng.uniform_range(0.0, config.user_start_window.as_secs_f64().max(1e-6)),
            );
            sched.schedule_at(SimTime::ZERO + start, Event::UserVisit(u));
        }
        // Failure injection: pre-schedule fail/recover pairs per server.
        // Failures stop early enough that every server recovers and
        // re-synchronises before the horizon — otherwise "still failed at
        // the end" would masquerade as undelivered updates.
        if let Some(failures) = &config.failures {
            let settle =
                SimDuration::from_secs_f64(failures.absence.max_len_s) + SimDuration::from_secs(60);
            let failure_horizon = SimTime::from_micros(
                config.horizon().as_micros().saturating_sub(settle.as_micros()),
            );
            let schedule = cdnc_net::AbsenceSchedule::generate(
                topo.servers.len(),
                failure_horizon,
                &failures.absence,
                &mut rng.fork(),
            );
            for (i, &s) in topo.servers.iter().enumerate() {
                for &(start, end) in schedule.intervals(i) {
                    sched.schedule_at(start, Event::Fail(s));
                    sched.schedule_at(end, Event::Recover(s));
                }
            }
        }
        // Chaos plan: the forks below extend — never reorder — the stream
        // layout above, so `faults: None` runs stay bit-identical to the
        // pre-fault-plane simulator.
        let mut reliable = None;
        let mut clusters = None;
        if let Some(plan) = &config.faults {
            plan.faults.validate();
            let mut plane =
                FaultPlane::new(plan.faults.clone(), config.seed ^ stream_tag::FAULT, net.len());
            // Fence every fault `settle` before the horizon so the
            // convergence invariant has a quiet tail to settle in.
            plane.set_active_until(SimTime::from_micros(
                config.horizon().as_micros().saturating_sub(plan.settle.as_micros()),
            ));
            net.set_fault_plane(plane);
            let mut fault_rng = rng.fork();
            // Failure-detector probe chains, one per server, at random
            // phases (like poll timers) to avoid synchronised probe bursts.
            for &s in &topo.servers {
                let phase = SimDuration::from_secs_f64(
                    fault_rng.uniform_range(0.0, plan.probe_interval.as_secs_f64().max(1e-6)),
                );
                sched.schedule_at(SimTime::ZERO + phase, Event::Probe(s, 0));
            }
            reliable = Some(ReliableState {
                plan: plan.clone(),
                next_id: 0,
                pending: BTreeMap::new(),
                seen: vec![BTreeSet::new(); net.len()],
                jitter_rng: fault_rng.fork(),
            });
            if plan.hat_degradation {
                if let Scheme::Hybrid { member_method, .. } = config.scheme {
                    clusters = Some(ClusterState::from_topology(&topo, net.len(), member_method));
                }
            }
        }
        // Request plane: a dedicated stream (`seed ^ WORKLOAD`) and
        // plan-gated scheduling, so `workload: None` runs keep the exact
        // stream layout and event sequence of the pre-workload simulator.
        let mut workload = None;
        if let Some(plan) = &config.workload {
            let mut wl_rng = SimRng::seed_from_u64(config.seed ^ stream_tag::WORKLOAD);
            let catalog = Catalog::new(plan.catalog_size, plan.zipf_s, plan.live_slots());
            let caches: Vec<LruCache> = (0..net.len())
                .map(|_| LruCache::new(plan.cache_capacity, plan.mad_eviction))
                .collect();
            // Poisson arrivals: each user's first request, then the chain
            // re-arms itself; ditto the catalog churn process.
            if plan.request_rate_hz > 0.0 {
                for u in 0..users.len() as u32 {
                    let start =
                        SimDuration::from_secs_f64(wl_rng.exponential(plan.request_rate_hz));
                    sched.schedule_at(SimTime::ZERO + start, Event::Request(u));
                }
            }
            if plan.churn_rate_hz > 0.0 {
                let first = SimDuration::from_secs_f64(wl_rng.exponential(plan.churn_rate_hz));
                sched.schedule_at(SimTime::ZERO + first, Event::Churn);
            }
            // The provider-side publish schedule, for omniscient staleness
            // accounting (mirrors the Publish events armed above).
            let mut pub_times = vec![SimTime::ZERO; config.updates.len()];
            for (id, t) in config.updates.iter().skip(1) {
                pub_times[id.0 as usize] =
                    SimTime::ZERO + config.update_start + t.since(SimTime::ZERO);
            }
            workload = Some(WorkloadState {
                plan: plan.clone(),
                catalog,
                caches,
                rng: wl_rng,
                pub_times,
                stats: WorkloadStats::default(),
            });
        }
        // Node-lifecycle churn: a dedicated stream (`seed ^ CHURN`) and
        // plan-gated scheduling, so `churn: None` runs stay bit-identical
        // to the pre-lifecycle simulator. All departures are pre-expanded
        // here (like failure injection) so the event sequence is a pure
        // function of the configuration.
        let mut lifecycle = None;
        if let Some(plan) = &config.churn {
            let mut churn_rng = SimRng::seed_from_u64(config.seed ^ stream_tag::CHURN);
            // Fence every cycle `settle` before the horizon so the run has
            // a quiet tail to reconverge in (mirrors the fault-plan fence).
            let fence = SimTime::from_micros(
                config.horizon().as_micros().saturating_sub(plan.settle.as_micros()),
            );
            let span_s = fence.since(SimTime::ZERO).as_secs_f64();
            for &s in &topo.servers {
                // Fork unconditionally so each server's sub-stream is
                // independent of other servers' draws (stream-stable under
                // plan parameter changes).
                let mut r = churn_rng.fork();
                if span_s <= 0.0 || r.uniform_f64() >= plan.churn_fraction {
                    continue;
                }
                let expected = plan.cycles_per_server.max(0.0);
                let mut cycles = expected.floor() as u64;
                if r.uniform_f64() < expected.fract() {
                    cycles += 1;
                }
                if cycles == 0 {
                    continue;
                }
                let window_s = span_s / cycles as f64;
                for c in 0..cycles {
                    // Depart in the first half of the cycle's window so even
                    // a long downtime draw fits before the next cycle.
                    let offset_s = r.uniform_range(0.0, window_s * 0.5);
                    let down_s = c as f64 * window_s + offset_s;
                    let downtime_s = r
                        .exponential(1.0 / plan.mean_downtime_s.max(1e-9))
                        .clamp(1.0, (window_s - offset_s - 1.0).max(1.0));
                    let graceful = r.uniform_f64() < plan.graceful_fraction;
                    let down_at = SimTime::ZERO + SimDuration::from_secs_f64(down_s);
                    let up_at = down_at + SimDuration::from_secs_f64(downtime_s);
                    let depart = if graceful { Event::NodeLeave(s) } else { Event::NodeCrash(s) };
                    sched.schedule_at(down_at, depart);
                    sched.schedule_at(up_at, Event::NodeJoin(s));
                }
            }
            // Deterministic scheduled events (e.g. a supernode kill) ride on
            // top of the stochastic plan.
            for ev in &plan.scheduled {
                let node = match ev.target {
                    ChurnTarget::Server(k) => topo.servers[k % topo.servers.len()],
                    ChurnTarget::Supernode(k) => {
                        if topo.supernodes.is_empty() {
                            topo.servers[k % topo.servers.len()]
                        } else {
                            topo.supernodes[k % topo.supernodes.len()]
                        }
                    }
                };
                let down_at = SimTime::ZERO + ev.at;
                let depart = match ev.kind {
                    ChurnKind::Leave => Event::NodeLeave(node),
                    ChurnKind::Crash => Event::NodeCrash(node),
                };
                sched.schedule_at(down_at, depart);
                sched.schedule_at(down_at + ev.downtime, Event::NodeJoin(node));
            }
            lifecycle = Some(LifecycleState {
                down_kind: vec![None; net.len()],
                joins: 0,
                leaves: 0,
                crashes: 0,
            });
        }

        CdnSimulation {
            config,
            net,
            topo,
            tree,
            sched,
            nodes,
            users,
            rng,
            provider_update_messages: 0,
            server_update_messages: 0,
            reliable,
            clusters,
            workload,
            lifecycle,
            chaos: ChaosStats::default(),
            obs: SimObs::new(registry),
        }
    }

    fn run(mut self) -> SimReport {
        while self.step() {}
        self.finish()
    }

    /// Runs scheduled events with time ≤ `at` (used by checkpointing to
    /// stop mid-run without consuming the remaining queue).
    fn run_until(&mut self, at: SimTime) {
        while self.sched.peek_time().is_some_and(|t| t <= at) {
            if !self.step() {
                break;
            }
        }
    }

    /// Dispatches one scheduled event; `false` when the queue is drained
    /// (or the horizon gate closed).
    fn step(&mut self) -> bool {
        let Some((now, ev)) = self.sched.next() else { return false };
        {
            // Per-event-kind handler timing (observation-only wall clock;
            // one branch when timeprof is off). The guard owns its cell,
            // so the handlers below can borrow `self` mutably.
            let _dispatch = self.obs.ev_timers[ev.obs_idx()].start();
            self.obs.fold_event(now, &ev);
            match ev {
                Event::Publish(idx) => {
                    self.obs.ev_publish.inc();
                    self.on_publish(now, SnapshotId(idx));
                }
                Event::PollTimer(node, gen) => {
                    self.obs.ev_poll_timer.inc();
                    self.on_poll_timer(now, node, gen);
                }
                Event::UserVisit(u) => {
                    self.obs.ev_user_visit.inc();
                    self.on_user_visit(now, u);
                }
                Event::Arrive(node, msg) => {
                    self.obs.ev_arrive.inc();
                    // Delivered or lost, the message leaves the wire.
                    self.obs.inflight[msg.kind() as usize].sub(1);
                    self.net.mark_delivered(msg.kind(), self.packet_kb(msg.kind()));
                    // Messages to a failed node are lost (the silent-loss
                    // class the fault plane's retransmits exist to cover).
                    if self.nodes[node.index()].absent {
                        self.chaos.lost_to_failed += 1;
                        self.obs.msgs_lost_to_failed.inc();
                        self.obs.tracer.lost(msg.trace_ctx(), node.index() as u32, now.as_micros());
                    } else {
                        self.on_arrive(now, node, msg);
                    }
                }
                Event::Fail(node) => {
                    self.obs.ev_fail.inc();
                    self.on_fail(now, node);
                }
                Event::Recover(node) => {
                    self.obs.ev_recover.inc();
                    self.on_recover(now, node);
                }
                Event::FetchTimeout(node, token) => {
                    self.obs.ev_fetch_timeout.inc();
                    let state = &mut self.nodes[node.index()];
                    if state.fetch_pending && state.fetch_token == token {
                        // The upstream died mid-request; give up so the next
                        // visit or poll can retry.
                        state.fetch_pending = false;
                    }
                }
                Event::Heartbeat(node, gen) => {
                    self.obs.ev_heartbeat.inc();
                    self.on_heartbeat(now, node, gen);
                }
                Event::Retransmit(id, attempt) => {
                    self.obs.ev_retransmit.inc();
                    self.on_retransmit(now, id, attempt);
                }
                Event::Probe(node, gen) => {
                    self.obs.ev_probe.inc();
                    self.on_probe(now, node, gen);
                }
                Event::Request(u) => {
                    self.obs.ev_request.inc();
                    self.on_request(now, u);
                }
                Event::Fill(edge, id, snap) => {
                    self.obs.ev_fill.inc();
                    self.on_fill(now, edge, id, snap);
                }
                Event::Churn => {
                    self.obs.ev_churn.inc();
                    self.on_churn(now);
                }
                Event::NodeLeave(node) => {
                    self.obs.ev_node_leave.inc();
                    self.on_node_leave(now, node);
                }
                Event::NodeCrash(node) => {
                    self.obs.ev_node_crash.inc();
                    self.on_node_crash(now, node);
                }
                Event::NodeJoin(node) => {
                    self.obs.ev_node_join.inc();
                    self.on_node_join(now, node);
                }
            }
        }
        true
    }

    /// End-of-run accounting once the queue has drained.
    fn finish(mut self) -> SimReport {
        // Structural profiling probe: per-node / per-user resident state
        // size at quiesce. The handles are dark unless the registry has
        // profiling enabled, so this is one branch per node otherwise.
        for n in &self.nodes {
            self.obs.node_state_bytes.record(n.estimated_bytes() as f64);
        }
        for u in &self.users {
            self.obs.user_state_bytes.record(u.estimated_bytes() as f64);
        }
        self.check_convergence();
        self.into_report()
    }

    /// The convergence invariant, checked once the event queue drains: with
    /// a fault plan attached (all faults fenced `settle` before the
    /// horizon), every present replica must have caught up with the
    /// provider's head version. Violations are counted and, when tracing,
    /// dumped as `Lost` spans labelled `convergence` so the flight recorder
    /// classifies them separately from in-flight losses.
    fn check_convergence(&mut self) {
        if self.reliable.is_none() {
            return;
        }
        let head = self.nodes[self.topo.provider.index()].content;
        let head_ctx = self.nodes[self.topo.provider.index()].content_ctx;
        let horizon_us = self.config.horizon().as_micros();
        let mut violations = 0u64;
        for &s in &self.topo.servers {
            let state = &self.nodes[s.index()];
            if state.absent || self.net.is_departed(s) || state.content >= head {
                continue;
            }
            violations += 1;
            self.obs.convergence_violations.inc();
            self.obs.tracer.child(
                head_ctx,
                SpanKind::Lost,
                s.index() as u32,
                horizon_us,
                "convergence",
            );
            self.obs.registry.event(Level::Warn, "convergence_violation", || {
                cdnc_obs::Json::obj()
                    .field("node", s.index())
                    .field("have", state.content.0)
                    .field("head", head.0)
            });
        }
        self.chaos.convergence_violations = violations;
    }

    // --- message transport -------------------------------------------------

    /// Wire size of a packet of `kind`, KB (updates carry content; every
    /// other message is light).
    fn packet_kb(&self, kind: PacketKind) -> f64 {
        match kind {
            PacketKind::Update => self.config.update_packet_kb,
            _ => 1.0,
        }
    }

    fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, msg: Msg) {
        // A failed node sends nothing.
        if self.nodes[src.index()].absent {
            return;
        }
        let kind = msg.kind();
        let size = self.packet_kb(kind);
        if kind == PacketKind::Update {
            self.server_update_messages += 1;
            if src == self.topo.provider {
                self.provider_update_messages += 1;
            }
        }
        self.obs.msg(kind).inc();
        let packet = Packet::new(kind, size, src, dst);
        if self.net.fault_plane().is_some() {
            // Fault mode: the plane may drop, duplicate, delay, or deliver —
            // one Arrive per surviving copy. Traffic is still charged once
            // per send (drops waste the wire like real packets do).
            let deliveries = self.net.send_faulted(now, &packet, msg.trace_ctx());
            self.obs.inflight[kind as usize].add(deliveries.len() as u64);
            for (arrival, hop) in deliveries {
                let mut copy = msg.clone();
                copy.set_ctx(hop);
                self.sched.schedule_at(arrival, Event::Arrive(dst, copy));
            }
        } else {
            self.obs.inflight[kind as usize].add(1);
            // Content-carrying and invalidation messages extend their
            // update's causal trace with a hop span; the receiver continues
            // from it.
            let (arrival, hop) = self.net.send_traced(now, &packet, msg.trace_ctx());
            let mut msg = msg;
            msg.set_ctx(hop);
            self.sched.schedule_at(arrival, Event::Arrive(dst, msg));
        }
    }

    /// Sends `msg` under ack/retransmit protection when a fault plan is
    /// attached (a plain [`CdnSimulation::send`] otherwise): the payload is
    /// wrapped in a [`Msg::Tracked`] envelope, a pending entry is recorded,
    /// and a retransmit timer armed with jittered exponential backoff.
    fn send_reliable(&mut self, now: SimTime, src: NodeId, dst: NodeId, msg: Msg) {
        if self.reliable.is_none() {
            self.send(now, src, dst, msg);
            return;
        }
        if self.nodes[src.index()].absent {
            return; // mirror send(): a failed node sends nothing
        }
        let (id, rto) = {
            let rel = self.reliable.as_mut().expect("checked above");
            rel.next_id += 1;
            let id = rel.next_id;
            let rto = rel.plan.rto;
            rel.pending
                .insert(id, PendingDelivery { src, dst, msg: msg.clone(), attempts: 0, rto });
            (id, rto)
        };
        self.obs.pending_retransmits.add(1);
        self.send(now, src, dst, Msg::Tracked { id, from: src, inner: Box::new(msg) });
        let wait = self.jittered(rto);
        self.sched.schedule_at(now + wait, Event::Retransmit(id, 0));
    }

    /// `base` scaled by a factor drawn uniformly from
    /// `[1 - jitter, 1 + jitter]` (deterministic: the factor comes from the
    /// fault plan's dedicated stream).
    fn jittered(&mut self, base: SimDuration) -> SimDuration {
        let rel = self.reliable.as_mut().expect("fault mode only");
        let j = rel.plan.jitter;
        if j <= 0.0 {
            return base;
        }
        base.mul_f64(rel.jitter_rng.uniform_range(1.0 - j, 1.0 + j).max(0.0))
    }

    fn on_retransmit(&mut self, now: SimTime, id: u64, attempt: u32) {
        let Some(rel) = self.reliable.as_mut() else { return };
        let Some(p) = rel.pending.get_mut(&id) else {
            return; // acked in the meantime
        };
        if p.attempts != attempt {
            return; // a newer timer owns this delivery
        }
        if self.net.is_departed(p.dst) {
            // The destination *departed* (left the system, not a transient
            // failure window): backing off against it is wasted wire, so
            // the delivery is abandoned immediately. A later rejoin
            // reconverges through its bootstrap resync.
            let p = rel.pending.remove(&id).expect("present");
            self.obs.pending_retransmits.sub(1);
            self.chaos.abandoned += 1;
            self.chaos.abandoned_to_departed += 1;
            self.obs.rtx_abandoned.inc();
            self.obs.abandoned_to_departed.inc();
            self.obs.tracer.child(
                p.msg.trace_ctx(),
                SpanKind::Lost,
                p.dst.index() as u32,
                now.as_micros(),
                "departed",
            );
            return;
        }
        if p.attempts >= rel.plan.max_retransmits {
            // Give up: the delivery is abandoned (it may still converge
            // later through polls, probes, or a recovery resync).
            let p = rel.pending.remove(&id).expect("present");
            self.obs.pending_retransmits.sub(1);
            self.chaos.abandoned += 1;
            self.obs.rtx_abandoned.inc();
            self.obs.tracer.child(
                p.msg.trace_ctx(),
                SpanKind::Lost,
                p.dst.index() as u32,
                now.as_micros(),
                "abandoned",
            );
            return;
        }
        p.attempts += 1;
        p.rto = SimDuration::from_micros(p.rto.as_micros().saturating_mul(2)).min(rel.plan.rto_max);
        let (src, dst, msg, attempts, rto) = (p.src, p.dst, p.msg.clone(), p.attempts, p.rto);
        if self.nodes[src.index()].absent {
            // The sender died with the delivery open; its protocol state
            // dies with it.
            self.reliable.as_mut().expect("fault mode").pending.remove(&id);
            self.obs.pending_retransmits.sub(1);
            return;
        }
        self.chaos.retransmits += 1;
        self.obs.rtx_sent.inc();
        self.send(now, src, dst, Msg::Tracked { id, from: src, inner: Box::new(msg) });
        let wait = self.jittered(rto);
        self.sched.schedule_at(now + wait, Event::Retransmit(id, attempts));
    }

    // --- event handlers ----------------------------------------------------

    fn on_publish(&mut self, now: SimTime, snap: SnapshotId) {
        let provider = self.topo.provider;
        let ctx = self.obs.tracer.publish(
            snap.0,
            provider.index() as u32,
            now.as_micros(),
            self.config.scheme.label(),
        );
        self.nodes[provider.index()].content = snap;
        self.nodes[provider.index()].content_modified_at = now;
        self.nodes[provider.index()].content_ctx = ctx;
        // Lag accounting starts for every server and user.
        for &s in &self.topo.servers {
            self.nodes[s.index()].pending_pubs.push_back((snap, now));
            self.obs.pending(self.topo.method_of(s)).add(1);
        }
        for u in &mut self.users {
            u.pending_pubs.push_back((snap, now));
        }
        self.obs.pending_user_updates.add(self.users.len() as u64);
        self.notify_downstream(now, provider);
    }

    /// After `node`'s content changed (publish or adoption): push to push
    /// children, invalidate invalidation-expecting children.
    fn notify_downstream(&mut self, now: SimTime, node: NodeId) {
        let content = self.nodes[node.index()].content;
        let ctx = self.nodes[node.index()].content_ctx;
        let children: Vec<NodeId> = self.topo.downstream_of(node).to_vec();
        let mut invalidated_any = false;
        for child in children {
            match self.topo.method_of(child) {
                Some(MethodKind::Push) => {
                    let modified_at = self.nodes[node.index()].content_modified_at;
                    self.send_reliable(
                        now,
                        node,
                        child,
                        Msg::Update { snap: content, modified_at, ctx },
                    );
                }
                Some(MethodKind::Invalidation) => {
                    if content > self.nodes[node.index()].last_invalidated {
                        self.send_reliable(now, node, child, Msg::Invalidate(content, ctx));
                        invalidated_any = true;
                    }
                }
                Some(MethodKind::SelfAdaptive) => {
                    if content > self.nodes[node.index()].last_invalidated
                        && self.nodes[node.index()].inval_registry.contains(&child)
                    {
                        self.send_reliable(now, node, child, Msg::Invalidate(content, ctx));
                        invalidated_any = true;
                    }
                }
                Some(MethodKind::Ttl | MethodKind::AdaptiveTtl) | None => {}
            }
        }
        if invalidated_any {
            self.nodes[node.index()].last_invalidated = content;
        }
    }

    fn on_poll_timer(&mut self, now: SimTime, node: NodeId, gen: u64) {
        let method = self.topo.method_of(node);
        let state = &self.nodes[node.index()];
        if gen != state.timer_gen {
            return; // a stale chain
        }
        if method == Some(MethodKind::SelfAdaptive) && state.mode == AdaptiveMode::Invalidation {
            return; // Algorithm 1: no polling in invalidation mode
        }
        if state.absent {
            // Overloaded/failed: skip this poll but keep the chain alive.
            self.sched.schedule_at(now + self.config.server_ttl, Event::PollTimer(node, gen));
            return;
        }
        let Some(up) = self.topo.upstream_of(node) else {
            // Detached by a failure upstream; retry after a TTL (repair or
            // recovery will re-wire us).
            self.sched.schedule_at(now + self.config.server_ttl, Event::PollTimer(node, gen));
            return;
        };
        let have = state.content;
        let conditional =
            matches!(method, Some(MethodKind::SelfAdaptive | MethodKind::AdaptiveTtl));
        self.send(now, node, up, Msg::Poll { from: node, have, conditional });
        let next = if method == Some(MethodKind::AdaptiveTtl) {
            SimDuration::from_secs_f64(self.adaptive_interval_s(node))
        } else {
            self.config.server_ttl
        };
        self.sched.schedule_at(now + next, Event::PollTimer(node, gen));
    }

    /// The adaptive-TTL poll interval of `node`: half the predicted update
    /// gap, clamped to `[2 s, 8 × server_ttl]`; the configured TTL until a
    /// first prediction exists.
    fn adaptive_interval_s(&self, node: NodeId) -> f64 {
        let state = &self.nodes[node.index()];
        if state.adaptive_interval_s <= 0.0 {
            self.config.server_ttl.as_secs_f64()
        } else {
            state.adaptive_interval_s
        }
    }

    fn on_user_visit(&mut self, now: SimTime, u: u32) {
        let target = if self.config.users_roam {
            // Fig. 24 scenario: every successive visit goes to a different
            // random server.
            let last = self.users[u as usize].last_server;
            let mut pick = self.topo.servers[self.rng.index(self.topo.servers.len())];
            if pick == last && self.topo.servers.len() > 1 {
                let idx = self.topo.servers.iter().position(|&s| s == pick).expect("present");
                pick = self.topo.servers[(idx + 1) % self.topo.servers.len()];
            }
            pick
        } else {
            self.users[u as usize].home
        };
        self.users[u as usize].last_server = target;

        if self.nodes[target.index()].absent {
            // Failed servers still answer from cache, slowly (paper §3.4.5:
            // users acquire cached IPs of failed servers and observe
            // inconsistent content); they cannot fetch on demand.
            let snap = self.nodes[target.index()].content;
            self.observe(u, target, snap, now);
            let interval = self.users[u as usize].visit_interval;
            self.sched.schedule_at(now + interval, Event::UserVisit(u));
            return;
        }

        let method = self.topo.method_of(target);
        let fetch_on_demand = matches!(method, Some(MethodKind::Invalidation))
            || (method == Some(MethodKind::SelfAdaptive)
                && self.nodes[target.index()].mode == AdaptiveMode::Invalidation);
        if fetch_on_demand && self.nodes[target.index()].is_stale() {
            // Algorithm 1 lines 10–12 / plain invalidation: the visit
            // triggers the fetch; the user's response waits for it.
            self.nodes[target.index()].waiting_users.push(u);
            self.trigger_fetch(now, target);
        } else {
            let snap = self.nodes[target.index()].content;
            self.observe(u, target, snap, now);
        }
        let interval = self.users[u as usize].visit_interval;
        self.sched.schedule_at(now + interval, Event::UserVisit(u));
    }

    /// Starts an on-demand fetch from `node` to its upstream, unless one is
    /// already in flight.
    fn trigger_fetch(&mut self, now: SimTime, node: NodeId) {
        if self.nodes[node.index()].fetch_pending {
            return;
        }
        let Some(up) = self.topo.upstream_of(node) else { return };
        self.nodes[node.index()].fetch_pending = true;
        let have = self.nodes[node.index()].content;
        self.send(now, node, up, Msg::Poll { from: node, have, conditional: true });
        // Under failure injection the upstream may never answer.
        if let Some(failures) = &self.config.failures {
            self.nodes[node.index()].fetch_token += 1;
            let token = self.nodes[node.index()].fetch_token;
            self.sched.schedule_at(now + failures.fetch_timeout, Event::FetchTimeout(node, token));
        }
    }

    // --- request plane (workload) ------------------------------------------

    /// One workload request from user `u`, routed to their current server
    /// (their home, or the last server a roaming visit landed on). A cache
    /// hit serves at zero latency; a request for an object already being
    /// fetched coalesces behind the in-flight fetch (a delayed hit); a miss
    /// starts an origin fetch. A cached *live* object the edge believes
    /// stale — its own consistency state moved past the copy's fill
    /// snapshot, or an invalidation told it newer content exists — is
    /// revalidated: dropped and refetched, counted as a miss.
    fn on_request(&mut self, now: SimTime, u: u32) {
        let Some(mut wl) = self.workload.take() else { return };
        let edge = self.users[u as usize].last_server;
        let id = wl.catalog.sample(&mut wl.rng);
        wl.stats.requests += 1;
        self.obs.wl_requests.inc();
        let live = wl.catalog.is_live(id.slot);
        let mut lookup = wl.caches[edge.index()].request(id, u, now);
        if let Lookup::Hit { snap } = lookup {
            let state = &self.nodes[edge.index()];
            if live && (SnapshotId(snap) < state.content || state.is_stale()) {
                wl.caches[edge.index()].invalidate(id);
                lookup = wl.caches[edge.index()].request(id, u, now);
                debug_assert_eq!(lookup, Lookup::Miss, "revalidation must refetch");
            }
        }
        match lookup {
            Lookup::Hit { snap } => {
                wl.stats.hits += 1;
                self.obs.wl_hits.inc();
                wl.stats.latency_s.push(0.0);
                self.obs.wl_latency_s.record(0.0);
                if live {
                    let head = self.nodes[self.topo.provider.index()].content;
                    let staleness = wl.staleness_served_s(head, snap, now);
                    wl.stats.staleness_served_s.push(staleness);
                    self.obs.wl_staleness_served_s.record(staleness);
                }
            }
            Lookup::Delayed => {
                wl.stats.delayed_hits += 1;
                self.obs.wl_delayed_hits.inc();
            }
            Lookup::Miss => {
                wl.stats.misses += 1;
                wl.stats.origin_fetches += 1;
                self.obs.wl_misses.inc();
                // The origin serves its head version as of fetch issue.
                let snap = self.nodes[self.topo.provider.index()].content.0;
                self.send_origin_fetch(now, edge, id, snap, wl.plan.object_kb);
            }
        }
        let next = SimDuration::from_secs_f64(wl.rng.exponential(wl.plan.request_rate_hz));
        self.sched.schedule_at(now + next, Event::Request(u));
        self.workload = Some(wl);
    }

    /// Issues one origin fetch: an [`PacketKind::OriginFetch`] content
    /// packet from the provider to `edge`, delivered as an [`Event::Fill`].
    /// Origin fetches ride the plain network path even under a fault plane —
    /// the request plane models delivery latency, not loss — so every
    /// waiter queue is guaranteed a releasing fill (or the horizon).
    fn send_origin_fetch(&mut self, now: SimTime, edge: NodeId, id: ObjectId, snap: u32, kb: f64) {
        self.obs.wl_origin_fetches.inc();
        self.obs.msg(PacketKind::OriginFetch).inc();
        self.obs.inflight[PacketKind::OriginFetch as usize].add(1);
        let packet = Packet::origin_fetch(self.topo.provider, edge, kb);
        let (arrival, _hop) = self.net.send_traced(now, &packet, TraceCtx::NONE);
        self.sched.schedule_at(arrival, Event::Fill(edge, id, snap));
    }

    /// An origin fetch lands at `edge`: cache the object and release every
    /// waiter queued behind the fetch — the miss initiator plus its delayed
    /// hits — exactly once, each sampling the user-perceived latency (and,
    /// for live objects, the staleness of the copy they were served).
    fn on_fill(&mut self, now: SimTime, edge: NodeId, id: ObjectId, snap: u32) {
        let Some(mut wl) = self.workload.take() else { return };
        // The fetch leaves the wire here (its delivery event is the fill).
        self.obs.inflight[PacketKind::OriginFetch as usize].sub(1);
        self.net.mark_delivered(PacketKind::OriginFetch, wl.plan.object_kb);
        wl.stats.origin_kb += wl.plan.object_kb;
        if !wl.caches[edge.index()].is_fetching(id) {
            // The edge departed (or crash-restarted cold) while this fetch
            // was in flight; its waiters were already released as aborted
            // misses, so the payload is dropped — but it still crossed the
            // wire, hence the accounting above stays.
            wl.stats.orphan_fills += 1;
            self.obs.wl_orphan_fills.inc();
            self.workload = Some(wl);
            return;
        }
        let (waiters, evicted) = wl.caches[edge.index()].fill(id, snap, now);
        if evicted.is_some() {
            wl.stats.evictions += 1;
            self.obs.wl_evictions.inc();
        }
        let head = self.nodes[self.topo.provider.index()].content;
        let live = wl.catalog.is_live(id.slot);
        for w in waiters {
            let latency = now.since(w.requested_at).as_secs_f64();
            wl.stats.latency_s.push(latency);
            self.obs.wl_latency_s.record(latency);
            if live {
                let staleness = wl.staleness_served_s(head, snap, now);
                wl.stats.staleness_served_s.push(staleness);
                self.obs.wl_staleness_served_s.record(staleness);
            }
        }
        self.workload = Some(wl);
    }

    /// One catalog publish/perish churn event; the process re-arms itself.
    fn on_churn(&mut self, now: SimTime) {
        let Some(mut wl) = self.workload.take() else { return };
        wl.catalog.churn(&mut wl.rng, now);
        wl.stats.churn_events += 1;
        self.obs.wl_churn_events.inc();
        let next = SimDuration::from_secs_f64(wl.rng.exponential(wl.plan.churn_rate_hz));
        self.sched.schedule_at(now + next, Event::Churn);
        self.workload = Some(wl);
    }

    fn on_arrive(&mut self, now: SimTime, node: NodeId, msg: Msg) {
        let _dispatch = self.obs.msg_timers[SimObs::msg_timer_idx(&msg)].start();
        match msg {
            Msg::Update { snap, modified_at, ctx } => {
                self.on_update(now, node, snap, modified_at, ctx)
            }
            Msg::Invalidate(snap, ctx) => self.on_invalidate(now, node, snap, ctx),
            Msg::Poll { from, have, conditional } => {
                self.on_poll(now, node, from, have, conditional)
            }
            Msg::Unchanged => self.on_unchanged(now, node),
            Msg::SwitchMode { from, to_invalidation }
            | Msg::TreeJoin { from, invalidation_mode: to_invalidation } => {
                let reg = &mut self.nodes[node.index()].inval_registry;
                if to_invalidation {
                    if !reg.contains(&from) {
                        reg.push(from);
                    }
                } else {
                    reg.retain(|&c| c != from);
                }
            }
            Msg::Tracked { id, from, inner } => {
                // Always ack — the ack itself may be lost, in which case the
                // sender retransmits and we suppress the duplicate here.
                self.send(now, node, from, Msg::Ack { id });
                let fresh =
                    self.reliable.as_mut().is_none_or(|rel| rel.seen[node.index()].insert(id));
                if fresh {
                    self.on_arrive(now, node, *inner);
                } else {
                    self.chaos.dup_suppressed += 1;
                    self.obs.dup_suppressed.inc();
                    // Terminal for this delivery's hop span.
                    self.obs.tracer.skip(inner.trace_ctx(), node.index() as u32, now.as_micros());
                }
            }
            Msg::Ack { id } => {
                if let Some(rel) = self.reliable.as_mut() {
                    if rel.pending.remove(&id).is_some() {
                        self.obs.pending_retransmits.sub(1);
                    }
                }
            }
        }
    }

    fn on_update(
        &mut self,
        now: SimTime,
        node: NodeId,
        snap: SnapshotId,
        modified_at: SimTime,
        ctx: TraceCtx,
    ) {
        let was_fetching = std::mem::take(&mut self.nodes[node.index()].fetch_pending);
        // Any content response proves the upstream is alive.
        self.nodes[node.index()].awaiting_probe = None;
        let adopted = snap > self.nodes[node.index()].content;
        if adopted {
            let adopt_ctx = self.obs.tracer.adopt(ctx, node.index() as u32, now.as_micros());
            let method = self.topo.method_of(node);
            let adopt_lag = self.obs.adopt_lag(method);
            let pending = self.obs.pending(method);
            let state = &mut self.nodes[node.index()];
            state.content = snap;
            state.content_modified_at = modified_at;
            state.content_ctx = adopt_ctx;
            if state.known_stale.is_some_and(|s| s <= snap) {
                state.known_stale = None;
                self.obs.stale_replicas.sub(1);
            }
            while let Some(&(p, t)) = state.pending_pubs.front() {
                if p > snap {
                    break;
                }
                let lag_s = now.since(t).as_secs_f64();
                state.lag.push(lag_s);
                adopt_lag.record(lag_s);
                pending.sub(1);
                state.pending_pubs.pop_front();
            }
            // Adaptive TTL (Alex protocol): the next poll interval is a
            // fraction of the content's observed age — young content is
            // polled quickly, old content slowly.
            if self.topo.method_of(node) == Some(MethodKind::AdaptiveTtl) {
                let max_s = 8.0 * self.config.server_ttl.as_secs_f64();
                let age_s = now.saturating_since(modified_at).as_secs_f64();
                self.nodes[node.index()].adaptive_interval_s = (0.3 * age_s).clamp(2.0, max_s);
            }
            self.notify_downstream(now, node);
        } else {
            // Superseded or duplicate delivery: terminal, not anomalous.
            self.obs.tracer.skip(ctx, node.index() as u32, now.as_micros());
        }
        // Serve anyone who was waiting on our fetch.
        let waiting_children = std::mem::take(&mut self.nodes[node.index()].waiting_children);
        let content = self.nodes[node.index()].content;
        let modified_at = self.nodes[node.index()].content_modified_at;
        let content_ctx = self.nodes[node.index()].content_ctx;
        for child in waiting_children {
            self.send(
                now,
                node,
                child,
                Msg::Update { snap: content, modified_at, ctx: content_ctx },
            );
        }
        let waiting_users = std::mem::take(&mut self.nodes[node.index()].waiting_users);
        for u in waiting_users {
            self.observe(u, node, content, now);
        }
        // Algorithm 1 line 12–13: the first fetched update after an
        // invalidation switches the node back to TTL.
        if self.topo.method_of(node) == Some(MethodKind::SelfAdaptive)
            && self.nodes[node.index()].mode == AdaptiveMode::Invalidation
            && was_fetching
        {
            self.obs.switch_to_ttl.inc();
            self.obs.tracer.control(
                SpanKind::ModeSwitch,
                node.index() as u32,
                now.as_micros(),
                "to_ttl",
            );
            self.obs.registry.event(Level::Info, "algo1_switch", || {
                cdnc_obs::Json::obj()
                    .field("node", node.index())
                    .field("to", "ttl")
                    .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
            });
            self.obs.inval_mode_nodes.sub(1);
            self.nodes[node.index()].mode = AdaptiveMode::Ttl;
            self.nodes[node.index()].timer_gen += 1;
            let gen = self.nodes[node.index()].timer_gen;
            if let Some(up) = self.topo.upstream_of(node) {
                self.send(now, node, up, Msg::SwitchMode { from: node, to_invalidation: false });
            }
            self.sched.schedule_at(now + self.config.server_ttl, Event::PollTimer(node, gen));
        }
    }

    fn on_invalidate(&mut self, now: SimTime, node: NodeId, snap: SnapshotId, ctx: TraceCtx) {
        let fwd_ctx = {
            let newly_stale = snap > self.nodes[node.index()].content;
            if newly_stale {
                // Terminal for this delivery; forwarded notices chain from it.
                self.obs.tracer.stale(ctx, node.index() as u32, now.as_micros())
            } else {
                self.obs.tracer.skip(ctx, node.index() as u32, now.as_micros());
                ctx
            }
        };
        {
            let state = &mut self.nodes[node.index()];
            if snap > state.content {
                if state.known_stale.is_none() {
                    self.obs.stale_replicas.add(1);
                }
                state.known_stale = Some(state.known_stale.map_or(snap, |s| s.max(snap)));
            }
        }
        // Forward immediately to children that expect invalidations.
        let children: Vec<NodeId> = self.topo.downstream_of(node).to_vec();
        let mut forwarded = false;
        for child in children {
            let expects = match self.topo.method_of(child) {
                Some(MethodKind::Invalidation) => true,
                Some(MethodKind::SelfAdaptive) => {
                    self.nodes[node.index()].inval_registry.contains(&child)
                }
                _ => false,
            };
            if expects && snap > self.nodes[node.index()].last_invalidated {
                self.send_reliable(now, node, child, Msg::Invalidate(snap, fwd_ctx));
                forwarded = true;
            }
        }
        if forwarded {
            self.nodes[node.index()].last_invalidated = snap;
        }
    }

    fn on_poll(
        &mut self,
        now: SimTime,
        node: NodeId,
        from: NodeId,
        have: SnapshotId,
        conditional: bool,
    ) {
        let content = self.nodes[node.index()].content;
        let modified_at = self.nodes[node.index()].content_modified_at;
        let ctx = self.nodes[node.index()].content_ctx;
        if content > have {
            self.send(now, node, from, Msg::Update { snap: content, modified_at, ctx });
        } else if self.nodes[node.index()].is_stale() {
            // We know we are stale too: chain the fetch upward and answer
            // the child when our own fetch completes.
            self.nodes[node.index()].waiting_children.push(from);
            self.trigger_fetch(now, node);
        } else if conditional {
            self.send(now, node, from, Msg::Unchanged);
        } else {
            // Unconditional GET: full content goes back even when unchanged —
            // the TTL method's wasted traffic.
            self.send(now, node, from, Msg::Update { snap: content, modified_at, ctx });
        }
    }

    fn on_unchanged(&mut self, now: SimTime, node: NodeId) {
        self.nodes[node.index()].fetch_pending = false;
        // An unchanged response proves the upstream is alive.
        self.nodes[node.index()].awaiting_probe = None;
        // Adaptive TTL: nothing new — back off the poll interval.
        if self.topo.method_of(node) == Some(MethodKind::AdaptiveTtl) {
            let max_s = 8.0 * self.config.server_ttl.as_secs_f64();
            let state = &mut self.nodes[node.index()];
            let current = if state.adaptive_interval_s <= 0.0 {
                self.config.server_ttl.as_secs_f64()
            } else {
                state.adaptive_interval_s
            };
            state.adaptive_interval_s = (current * 1.5).min(max_s);
        }
        // Serve waiters with what we have (rare race: our upstream answered
        // "unchanged" while an invalidation was still in flight to it).
        let waiting_children = std::mem::take(&mut self.nodes[node.index()].waiting_children);
        let content = self.nodes[node.index()].content;
        let modified_at = self.nodes[node.index()].content_modified_at;
        let content_ctx = self.nodes[node.index()].content_ctx;
        for child in waiting_children {
            self.send(
                now,
                node,
                child,
                Msg::Update { snap: content, modified_at, ctx: content_ctx },
            );
        }
        let waiting_users = std::mem::take(&mut self.nodes[node.index()].waiting_users);
        for u in waiting_users {
            self.observe(u, node, content, now);
        }
        // Algorithm 1 line 7–8: a poll that found no update switches the
        // node to invalidation mode.
        if self.topo.method_of(node) == Some(MethodKind::SelfAdaptive)
            && self.nodes[node.index()].mode == AdaptiveMode::Ttl
        {
            self.obs.switch_to_invalidation.inc();
            self.obs.tracer.control(
                SpanKind::ModeSwitch,
                node.index() as u32,
                now.as_micros(),
                "to_invalidation",
            );
            self.obs.registry.event(Level::Info, "algo1_switch", || {
                cdnc_obs::Json::obj()
                    .field("node", node.index())
                    .field("to", "invalidation")
                    .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
            });
            self.obs.inval_mode_nodes.add(1);
            self.nodes[node.index()].mode = AdaptiveMode::Invalidation;
            self.nodes[node.index()].timer_gen += 1; // kill the poll chain
            if let Some(up) = self.topo.upstream_of(node) {
                self.send(now, node, up, Msg::SwitchMode { from: node, to_invalidation: true });
            }
            // Under failure injection or a fault plan the switch notice can
            // be lost; keep re-registering until we leave invalidation mode.
            if self.config.failures.is_some() || self.config.faults.is_some() {
                let gen = self.nodes[node.index()].timer_gen;
                self.sched
                    .schedule_at(now + self.config.server_ttl * 5, Event::Heartbeat(node, gen));
            }
        }
    }

    /// Failure-injection safety net: while in invalidation mode, repeat the
    /// registration with the (possibly changed, possibly previously failed)
    /// upstream.
    fn on_heartbeat(&mut self, now: SimTime, node: NodeId, gen: u64) {
        let state = &self.nodes[node.index()];
        if gen != state.timer_gen || state.mode != AdaptiveMode::Invalidation {
            return;
        }
        if !state.absent {
            if let Some(up) = self.topo.upstream_of(node) {
                self.send(now, node, up, Msg::SwitchMode { from: node, to_invalidation: true });
            }
        }
        self.sched.schedule_at(now + self.config.server_ttl * 5, Event::Heartbeat(node, gen));
    }

    /// The fault-plane failure detector (a generalisation of the
    /// invalidation-mode heartbeat to every upstream link): each probe is a
    /// conditional poll, so a successful probe also delivers any content
    /// the node missed; an unanswered probe older than `probe_timeout`
    /// marks the upstream suspect.
    fn on_probe(&mut self, now: SimTime, node: NodeId, gen: u64) {
        let Some(rel) = self.reliable.as_ref() else { return };
        let (interval, timeout) = (rel.plan.probe_interval, rel.plan.probe_timeout);
        if gen != self.nodes[node.index()].probe_gen {
            return; // a stale chain (killed by a failover re-wiring)
        }
        // Keep the chain alive unconditionally; the checks below only
        // decide what this tick does.
        self.sched.schedule_at(now + interval, Event::Probe(node, gen));
        if self.nodes[node.index()].absent {
            return;
        }
        let Some(up) = self.topo.upstream_of(node) else { return };
        match self.nodes[node.index()].awaiting_probe {
            Some(sent) if now.since(sent) >= timeout => {
                self.nodes[node.index()].awaiting_probe = None;
                self.obs.upstream_suspects.inc();
                self.obs.registry.event(Level::Warn, "upstream_suspect", || {
                    cdnc_obs::Json::obj()
                        .field("node", node.index())
                        .field("upstream", up.index())
                        .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
                });
                self.on_upstream_suspect(now, node, up);
            }
            Some(_) => {} // still within the timeout; wait
            None => {
                self.nodes[node.index()].awaiting_probe = Some(now);
                let have = self.nodes[node.index()].content;
                self.send(now, node, up, Msg::Poll { from: node, have, conditional: true });
            }
        }
    }

    /// `node` has declared its upstream `up` suspect. For a HAT cluster
    /// whose supernode is the suspect this triggers failover; otherwise the
    /// node simply re-synchronises (the suspect may be transient loss, and
    /// the probe chain keeps watching).
    fn on_upstream_suspect(&mut self, now: SimTime, node: NodeId, up: NodeId) {
        if let Some(cl) = &self.clusters {
            if let Some(c) = cl.cluster_of[node.index()] {
                if cl.supernode[c] == up && up != self.topo.provider {
                    self.failover(now, c);
                    return;
                }
            }
        }
        self.resync(now, node);
    }

    /// HAT graceful degradation: the cluster's supernode is unreachable, so
    /// the nearest present member is promoted into its distribution-tree
    /// slot, every other member (including the demoted supernode) re-wires
    /// to the promotee, and invalidation-mode members fall back to TTL
    /// polling until Algorithm 1 switches them again.
    fn failover(&mut self, now: SimTime, cluster: usize) {
        let (old, member_method) = {
            let cl = self.clusters.as_ref().expect("failover needs clusters");
            (cl.supernode[cluster], cl.member_method)
        };
        let members: Vec<NodeId> = {
            let cl = self.clusters.as_ref().expect("checked");
            self.topo
                .servers
                .iter()
                .copied()
                .filter(|&s| s != old && cl.cluster_of[s.index()] == Some(cluster))
                .collect()
        };
        // Promote the present member nearest the old supernode (its cluster
        // was built on proximity, so this preserves locality); ties break
        // on node id for determinism.
        let Some(promoted) =
            members.iter().copied().filter(|&m| !self.nodes[m.index()].absent).min_by(|&a, &b| {
                self.net
                    .distance_km(old, a)
                    .partial_cmp(&self.net.distance_km(old, b))
                    .expect("finite distances")
                    .then(a.0.cmp(&b.0))
            })
        else {
            return; // the whole cluster is down; probes will retry
        };
        self.chaos.failovers += 1;
        self.obs.failovers.inc();
        self.obs.tracer.control(
            SpanKind::TreeRepair,
            promoted.index() as u32,
            now.as_micros(),
            "failover",
        );
        self.obs.registry.event(Level::Warn, "hat_failover", || {
            cdnc_obs::Json::obj()
                .field("cluster", cluster)
                .field("old", old.index())
                .field("promoted", promoted.index())
                .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
        });
        // Tree surgery: the promotee takes the old supernode's slot, or
        // joins fresh if a node failure already removed the old one. Child
        // supernodes under the old one in the tree follow it (when a node
        // failure removed it, the tree repair already re-homed them).
        let child_supernodes: Vec<NodeId> = self
            .topo
            .downstream_of(old)
            .iter()
            .copied()
            .filter(|c| self.topo.supernodes.contains(c))
            .collect();
        let tree = self.tree.as_mut().expect("hybrid schemes have a tree");
        let parent = if tree.contains(old) {
            tree.substitute(old, promoted)
        } else {
            let locations: Vec<cdnc_geo::GeoPoint> =
                self.net.nodes().iter().map(|n| n.location()).collect();
            tree.join(promoted, |id| locations[id.index()])
        };
        // Topology re-wiring: promotee under its tree parent as a pusher...
        self.topo.rewire(promoted, parent);
        self.topo.method[promoted.index()] = Some(MethodKind::Push);
        if self.nodes[promoted.index()].mode == AdaptiveMode::Invalidation {
            self.obs.inval_mode_nodes.sub(1);
            self.nodes[promoted.index()].mode = AdaptiveMode::Ttl;
        }
        self.nodes[promoted.index()].timer_gen += 1; // pushers do not poll
        self.nodes[promoted.index()].awaiting_probe = None;
        self.nodes[promoted.index()].probe_gen += 1;
        let gen = self.nodes[promoted.index()].probe_gen;
        self.sched.schedule_at(
            now + self.reliable.as_ref().expect("fault mode").plan.probe_interval,
            Event::Probe(promoted, gen),
        );
        for &c in &child_supernodes {
            self.topo.rewire(c, promoted);
        }
        // ...every other member under the promotee...
        for &m in &members {
            if m == promoted {
                continue;
            }
            self.topo.rewire(m, promoted);
            self.nodes[m.index()].awaiting_probe = None;
        }
        // ...and the demoted supernode becomes an ordinary member (it polls
        // the promotee when it returns).
        self.topo.rewire(old, promoted);
        self.topo.method[old.index()] = Some(member_method);
        self.nodes[old.index()].awaiting_probe = None;
        self.nodes[old.index()].timer_gen += 1;
        let old_gen = self.nodes[old.index()].timer_gen;
        if member_method.polls() {
            self.sched.schedule_at(now + self.config.server_ttl, Event::PollTimer(old, old_gen));
        }
        let pos = self
            .topo
            .supernodes
            .iter()
            .position(|&s| s == old)
            .expect("old supernode is registered");
        self.topo.supernodes[pos] = promoted;
        self.clusters.as_mut().expect("checked").supernode[cluster] = promoted;
        // The promotee announces itself upstream and re-synchronises.
        self.send(
            now,
            promoted,
            parent,
            Msg::TreeJoin { from: promoted, invalidation_mode: false },
        );
        self.resync(now, promoted);
        // Graceful degradation: members that were waiting for invalidations
        // from the dead supernode fall back to TTL polling (Algorithm 1
        // reverts them once the first poll finds silence again).
        for &m in &members {
            if m == promoted || self.nodes[m.index()].absent {
                continue;
            }
            if self.topo.method_of(m) == Some(MethodKind::SelfAdaptive)
                && self.nodes[m.index()].mode == AdaptiveMode::Invalidation
            {
                self.chaos.ttl_fallbacks += 1;
                self.obs.ttl_fallbacks.inc();
                self.obs.tracer.control(
                    SpanKind::ModeSwitch,
                    m.index() as u32,
                    now.as_micros(),
                    "degrade",
                );
                self.obs.inval_mode_nodes.sub(1);
                self.nodes[m.index()].mode = AdaptiveMode::Ttl;
                self.nodes[m.index()].timer_gen += 1;
                let gen = self.nodes[m.index()].timer_gen;
                self.sched.schedule_at(now + self.config.server_ttl, Event::PollTimer(m, gen));
            }
        }
    }

    /// A server fails: it stops sending/receiving; if it is a distribution-
    /// tree member, its orphaned children re-attach immediately (the paper's
    /// §5.2 repair rule), each re-attachment costing one structure-
    /// maintenance message and a re-synchronising conditional poll.
    fn on_fail(&mut self, now: SimTime, node: NodeId) {
        if self.nodes[node.index()].absent {
            return;
        }
        self.nodes[node.index()].absent = true;
        // Everything queued on this node is lost.
        self.nodes[node.index()].waiting_children.clear();
        let orphaned_users = std::mem::take(&mut self.nodes[node.index()].waiting_users);
        for u in orphaned_users {
            // The user's request eventually times out against the cached copy.
            let snap = self.nodes[node.index()].content;
            self.observe(u, node, snap, now);
        }
        self.nodes[node.index()].fetch_pending = false;
        self.nodes[node.index()].awaiting_probe = None;
        // Open tracked deliveries FROM the failed node die with its
        // protocol state (deliveries TO it stay pending: retransmits keep
        // trying, and may land after it recovers).
        self.drain_reliable_from(node);
        self.repair_tree_around(now, node);
    }

    /// Drops every open tracked delivery originated by `node` (its
    /// protocol state is gone with it).
    fn drain_reliable_from(&mut self, node: NodeId) {
        if let Some(rel) = &mut self.reliable {
            let mut dropped = 0u64;
            rel.pending.retain(|_, p| {
                if p.src == node {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
            self.obs.pending_retransmits.sub(dropped);
        }
    }

    /// Removes `node` from the distribution tree (if it is a member) and
    /// re-attaches its orphans, each re-attachment costing one structure-
    /// maintenance message and a re-synchronising conditional poll.
    fn repair_tree_around(&mut self, now: SimTime, node: NodeId) {
        let in_tree = self.tree.as_ref().is_some_and(|t| t.contains(node));
        if in_tree {
            let locations: Vec<cdnc_geo::GeoPoint> =
                self.net.nodes().iter().map(|n| n.location()).collect();
            let moves = self
                .tree
                .as_mut()
                .expect("checked above")
                .remove_and_reattach(node, |id| locations[id.index()]);
            self.topo.detach(node);
            self.obs.registry.event(Level::Warn, "tree_repair", || {
                cdnc_obs::Json::obj()
                    .field("failed", node.index())
                    .field("orphans", moves.len())
                    .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
            });
            for (orphan, new_parent) in moves {
                self.obs.orphan_reattach.inc();
                self.obs.tracer.control(
                    SpanKind::TreeRepair,
                    orphan.index() as u32,
                    now.as_micros(),
                    "reattach",
                );
                self.topo.rewire(orphan, new_parent);
                let invalidation_mode = self.expects_invalidations(orphan);
                self.send(
                    now,
                    orphan,
                    new_parent,
                    Msg::TreeJoin { from: orphan, invalidation_mode },
                );
                self.resync(now, orphan);
            }
        }
    }

    /// A failed server recovers: it re-joins the distribution tree (if any)
    /// and re-synchronises its content with a conditional poll.
    fn on_recover(&mut self, now: SimTime, node: NodeId) {
        if !self.nodes[node.index()].absent {
            return;
        }
        if self.lifecycle.as_ref().is_some_and(|lc| lc.down_kind[node.index()].is_some()) {
            // The node *departed* under the lifecycle plan while this
            // failure-injection recovery was pending; only its NodeJoin
            // brings it back.
            return;
        }
        self.nodes[node.index()].absent = false;
        self.net.reset_uplink(node, now);
        self.nodes[node.index()].awaiting_probe = None;
        self.readmit(now, node);
    }

    /// Re-admits a returning server into the consistency structure: HAT
    /// cluster re-attachment (leadership may have moved while it was away),
    /// or a distribution-tree rejoin, followed by a resync poll.
    fn readmit(&mut self, now: SimTime, node: NodeId) {
        // Under HAT degradation, recovering cluster members (including a
        // demoted ex-supernode) re-attach to the cluster's *current*
        // supernode instead of joining the supernode tree — failover may
        // have moved leadership while they were away.
        if let Some(cl) = &self.clusters {
            if let Some(c) = cl.cluster_of[node.index()] {
                let sn = cl.supernode[c];
                if sn != node {
                    if self.topo.upstream_of(node) != Some(sn) {
                        self.topo.rewire(node, sn);
                    }
                    if self.expects_invalidations(node) {
                        self.send(
                            now,
                            node,
                            sn,
                            Msg::SwitchMode { from: node, to_invalidation: true },
                        );
                    }
                    self.resync(now, node);
                    return;
                }
            }
        }
        if let Some(tree) = self.tree.as_mut() {
            if !tree.contains(node) {
                let locations: Vec<cdnc_geo::GeoPoint> =
                    self.net.nodes().iter().map(|n| n.location()).collect();
                let parent = tree.join(node, |id| locations[id.index()]);
                self.obs.tree_rejoin.inc();
                self.obs.tracer.control(
                    SpanKind::TreeRepair,
                    node.index() as u32,
                    now.as_micros(),
                    "rejoin",
                );
                self.topo.rewire(node, parent);
                let invalidation_mode = self.expects_invalidations(node);
                self.send(now, node, parent, Msg::TreeJoin { from: node, invalidation_mode });
            }
        }
        self.resync(now, node);
    }

    /// `true` if `node` currently needs invalidation notices from its
    /// upstream (plain invalidation, or a self-adaptive node in
    /// invalidation mode).
    fn expects_invalidations(&self, node: NodeId) -> bool {
        match self.topo.method_of(node) {
            Some(MethodKind::Invalidation) => true,
            Some(MethodKind::SelfAdaptive) => {
                self.nodes[node.index()].mode == AdaptiveMode::Invalidation
            }
            _ => false,
        }
    }

    /// Sends a conditional poll to catch any updates missed while detached.
    fn resync(&mut self, now: SimTime, node: NodeId) {
        if let Some(up) = self.topo.upstream_of(node) {
            let have = self.nodes[node.index()].content;
            self.send(now, node, up, Msg::Poll { from: node, have, conditional: true });
        }
    }

    // --- node lifecycle (churn plan) ---------------------------------------

    /// A server departs gracefully: it first hands its waiters off (children
    /// get its current content, queued users observe it), then goes dark,
    /// drains its protocol state, and is removed from the update structure —
    /// via supernode failover when it led a HAT cluster.
    fn on_node_leave(&mut self, now: SimTime, node: NodeId) {
        if self.nodes[node.index()].absent || self.net.is_departed(node) {
            return;
        }
        let lc = self.lifecycle.as_mut().expect("churn events need a plan");
        lc.leaves += 1;
        lc.down_kind[node.index()] = Some(ChurnKind::Leave);
        self.obs.tracer.control(SpanKind::NodeChurn, node.index() as u32, now.as_micros(), "leave");
        self.obs.registry.event(Level::Info, "node_leave", || {
            cdnc_obs::Json::obj()
                .field("node", node.index())
                .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
        });
        // Graceful hand-off BEFORE going dark (an absent node sends
        // nothing): waiting children get our content, waiting users
        // observe it.
        let content = self.nodes[node.index()].content;
        let modified_at = self.nodes[node.index()].content_modified_at;
        let ctx = self.nodes[node.index()].content_ctx;
        let waiting_children = std::mem::take(&mut self.nodes[node.index()].waiting_children);
        for child in waiting_children {
            self.send(now, node, child, Msg::Update { snap: content, modified_at, ctx });
        }
        let waiting_users = std::mem::take(&mut self.nodes[node.index()].waiting_users);
        for u in waiting_users {
            self.observe(u, node, content, now);
        }
        self.nodes[node.index()].absent = true;
        self.nodes[node.index()].fetch_pending = false;
        self.nodes[node.index()].awaiting_probe = None;
        self.nodes[node.index()].timer_gen += 1;
        self.net.depart(node, now);
        self.drain_reliable_from(node);
        self.depart_structure(now, node, true);
        self.abort_edge_fetches(node, false);
    }

    /// A server crashes: it goes dark instantly (no hand-off) and its
    /// consistency state is lost — the eventual restart comes back with a
    /// cold cache and no memory of versions, invalidations, or mode.
    fn on_node_crash(&mut self, now: SimTime, node: NodeId) {
        if self.nodes[node.index()].absent || self.net.is_departed(node) {
            return;
        }
        let lc = self.lifecycle.as_mut().expect("churn events need a plan");
        lc.crashes += 1;
        lc.down_kind[node.index()] = Some(ChurnKind::Crash);
        self.obs.tracer.control(SpanKind::NodeChurn, node.index() as u32, now.as_micros(), "crash");
        self.obs.registry.event(Level::Warn, "node_crash", || {
            cdnc_obs::Json::obj()
                .field("node", node.index())
                .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
        });
        // No hand-off: queued children are dropped; queued users time out
        // against the cached copy (like a plain failure).
        self.nodes[node.index()].waiting_children.clear();
        let snap = self.nodes[node.index()].content;
        let orphaned_users = std::mem::take(&mut self.nodes[node.index()].waiting_users);
        for u in orphaned_users {
            self.observe(u, node, snap, now);
        }
        self.nodes[node.index()].absent = true;
        self.nodes[node.index()].fetch_pending = false;
        self.nodes[node.index()].awaiting_probe = None;
        self.nodes[node.index()].timer_gen += 1;
        self.net.depart(node, now);
        self.drain_reliable_from(node);
        // State loss: version, staleness knowledge, adaptive estimate, and
        // downstream registrations all evaporate with the process.
        if self.nodes[node.index()].known_stale.take().is_some() {
            self.obs.stale_replicas.sub(1);
        }
        {
            let state = &mut self.nodes[node.index()];
            state.content = SnapshotId(0);
            state.content_modified_at = SimTime::ZERO;
            state.content_ctx = TraceCtx::NONE;
            state.adaptive_interval_s = 0.0;
            state.last_invalidated = SnapshotId(0);
            state.inval_registry.clear();
        }
        if self.topo.method_of(node) == Some(MethodKind::SelfAdaptive)
            && self.nodes[node.index()].mode == AdaptiveMode::Invalidation
        {
            self.obs.inval_mode_nodes.sub(1);
            self.nodes[node.index()].mode = AdaptiveMode::Ttl;
        }
        self.depart_structure(now, node, false);
        self.abort_edge_fetches(node, true);
    }

    /// A departed server returns: it re-enters the network, bootstraps into
    /// the update structure (tree admission + uplink registration + resync
    /// from its parent), and restarts its timer chains. After a crash the
    /// node is cold — its resync fetches everything anew.
    fn on_node_join(&mut self, now: SimTime, node: NodeId) {
        let Some(kind) = self.lifecycle.as_mut().and_then(|lc| lc.down_kind[node.index()].take())
        else {
            return; // never departed (a duplicate or superseded join)
        };
        self.lifecycle.as_mut().expect("checked above").joins += 1;
        self.obs.tracer.control(SpanKind::NodeChurn, node.index() as u32, now.as_micros(), "join");
        self.obs.registry.event(Level::Info, "node_join", || {
            cdnc_obs::Json::obj()
                .field("node", node.index())
                .field("cold", kind == ChurnKind::Crash)
                .field("t_s", now.since(SimTime::ZERO).as_secs_f64())
        });
        self.nodes[node.index()].absent = false;
        self.nodes[node.index()].awaiting_probe = None;
        self.net.rejoin(node, now);
        self.readmit(now, node);
        // Restart the node's timer chains: polling (or the invalidation-
        // mode heartbeat) and, under a fault plan, the probe detector.
        self.nodes[node.index()].timer_gen += 1;
        let gen = self.nodes[node.index()].timer_gen;
        let inval_mode = self.expects_invalidations(node);
        if self.topo.method_of(node).is_some_and(MethodKind::polls) && !inval_mode {
            self.sched.schedule_at(now + self.config.server_ttl, Event::PollTimer(node, gen));
        } else if inval_mode && (self.config.failures.is_some() || self.config.faults.is_some()) {
            self.sched.schedule_at(now + self.config.server_ttl * 5, Event::Heartbeat(node, gen));
        }
        if let Some(rel) = &self.reliable {
            let interval = rel.plan.probe_interval;
            self.nodes[node.index()].probe_gen += 1;
            let pgen = self.nodes[node.index()].probe_gen;
            self.sched.schedule_at(now + interval, Event::Probe(node, pgen));
        }
    }

    /// Removes a departed server from the update structure. A graceful
    /// departure of a HAT cluster's supernode hands leadership off
    /// proactively (failover); everything else — including a crashed
    /// supernode, whose loss only the probe detector notices — is repaired
    /// like a failure.
    fn depart_structure(&mut self, now: SimTime, node: NodeId, graceful: bool) {
        let led_cluster = self
            .clusters
            .as_ref()
            .and_then(|cl| cl.cluster_of[node.index()].filter(|&c| cl.supernode[c] == node));
        if graceful && self.reliable.is_some() {
            if let Some(c) = led_cluster {
                self.failover(now, c);
                return;
            }
        }
        self.repair_tree_around(now, node);
    }

    /// Releases every delayed-hit waiter queued behind `node`'s in-flight
    /// origin fetches as an unanswered miss (the edge died mid-fetch); a
    /// cold restart additionally drops the cached entries.
    fn abort_edge_fetches(&mut self, node: NodeId, cold: bool) {
        let Some(wl) = self.workload.as_mut() else { return };
        let aborted = if cold {
            wl.caches[node.index()].cold_restart()
        } else {
            wl.caches[node.index()].abort_inflight()
        };
        let n = aborted.len() as u64;
        if n > 0 {
            wl.stats.waiters_aborted += n;
            self.obs.wl_waiters_aborted.add(n);
        }
    }

    fn observe(&mut self, u: u32, server: NodeId, snap: SnapshotId, now: SimTime) {
        // The view descends causally from the served content's provenance
        // (inert when that content predates tracing or tracing is off).
        self.obs.tracer.user_view(
            self.nodes[server.index()].content_ctx,
            u,
            server.index() as u32,
            now.as_micros(),
        );
        let user = &mut self.users[u as usize];
        while let Some(&(p, t)) = user.pending_pubs.front() {
            if p > snap {
                break;
            }
            user.lag.push(now.since(t).as_secs_f64());
            self.obs.pending_user_updates.sub(1);
            user.pending_pubs.pop_front();
        }
        user.total_obs += 1;
        if snap < user.seen_max {
            user.inconsistent_obs += 1;
        } else {
            user.seen_max = snap;
        }
    }

    /// Serializes the complete dynamic simulation state — scheduler clock
    /// and pending queue, every RNG stream, per-node and per-user protocol
    /// state, reliable-delivery ledger, cluster/tree/topology wiring,
    /// request-plane caches, network backlogs, lifecycle bookkeeping, and
    /// the determinism-digest segment — into a versioned text artifact.
    ///
    /// Static structure (node placement, latency model, plan parameters) is
    /// *not* stored: restore reconstructs it from the same [`SimConfig`] and
    /// overlays the dynamic state, so an artifact is only meaningful
    /// together with its configuration.
    fn ckpt_write(&self) -> String {
        let mut w = CkptWriter::new("cdn-sim");
        // Scheduler: clock, processed count, and the full pending queue in
        // deterministic pop order.
        let (now, processed, entries, next_seq) = self.sched.state();
        w.time("sched_now", now);
        w.u64("sched_processed", processed);
        w.u64("sched_next_seq", next_seq);
        w.usize("sched_entries", entries.len());
        for (t, seq, ev) in entries {
            w.time("ev_t", t);
            w.u64("ev_seq", seq);
            ev.ckpt_write(&mut w);
        }
        w.rng("sim_rng", &self.rng);
        // Per-node protocol state (trace contexts are observation-only and
        // restored as NONE).
        w.usize("nodes", self.nodes.len());
        for n in &self.nodes {
            w.u64("n_content", u64::from(n.content.0));
            w.u64("n_known_stale", n.known_stale.map_or(0, |s| u64::from(s.0) + 1));
            w.bool("n_mode_inval", matches!(n.mode, AdaptiveMode::Invalidation));
            w.bool("n_fetch_pending", n.fetch_pending);
            w.u64("n_timer_gen", n.timer_gen);
            w.u64("n_fetch_token", n.fetch_token);
            w.bool("n_absent", n.absent);
            w.time("n_modified_at", n.content_modified_at);
            w.f64("n_adaptive_s", n.adaptive_interval_s);
            w.usize("n_waiting_children", n.waiting_children.len());
            for c in &n.waiting_children {
                w.u64("n_wc", u64::from(c.0));
            }
            w.usize("n_waiting_users", n.waiting_users.len());
            for &u in &n.waiting_users {
                w.u64("n_wu", u64::from(u));
            }
            w.usize("n_inval_registry", n.inval_registry.len());
            for c in &n.inval_registry {
                w.u64("n_ir", u64::from(c.0));
            }
            w.u64("n_last_invalidated", u64::from(n.last_invalidated.0));
            w.usize("n_pending_pubs", n.pending_pubs.len());
            for (s, t) in &n.pending_pubs {
                w.u64("n_pp_snap", u64::from(s.0));
                w.time("n_pp_t", *t);
            }
            let (count, mean, m2, min, max) = n.lag.raw();
            w.u64("n_lag_count", count);
            w.f64("n_lag_mean", mean);
            w.f64("n_lag_m2", m2);
            w.f64("n_lag_min", min);
            w.f64("n_lag_max", max);
            w.bool("n_probe_wait", n.awaiting_probe.is_some());
            w.time("n_probe_t", n.awaiting_probe.unwrap_or(SimTime::ZERO));
            w.u64("n_probe_gen", n.probe_gen);
        }
        // Per-user state (home server and visit interval are derived from
        // the configuration, not stored).
        w.usize("users", self.users.len());
        for u in &self.users {
            w.u64("u_last_server", u64::from(u.last_server.0));
            w.u64("u_seen_max", u64::from(u.seen_max.0));
            w.usize("u_pending_pubs", u.pending_pubs.len());
            for (s, t) in &u.pending_pubs {
                w.u64("u_pp_snap", u64::from(s.0));
                w.time("u_pp_t", *t);
            }
            let (count, mean, m2, min, max) = u.lag.raw();
            w.u64("u_lag_count", count);
            w.f64("u_lag_mean", mean);
            w.f64("u_lag_m2", m2);
            w.f64("u_lag_min", min);
            w.f64("u_lag_max", max);
            w.u64("u_inconsistent", u.inconsistent_obs);
            w.u64("u_total", u.total_obs);
        }
        w.u64("provider_update_messages", self.provider_update_messages);
        w.u64("server_update_messages", self.server_update_messages);
        w.u64("chaos_lost", self.chaos.lost_to_failed);
        w.u64("chaos_rtx", self.chaos.retransmits);
        w.u64("chaos_abandoned", self.chaos.abandoned);
        w.u64("chaos_abandoned_dep", self.chaos.abandoned_to_departed);
        w.u64("chaos_dup", self.chaos.dup_suppressed);
        w.u64("chaos_failovers", self.chaos.failovers);
        w.u64("chaos_ttl_fallbacks", self.chaos.ttl_fallbacks);
        w.u64("chaos_conv", self.chaos.convergence_violations);
        // Reliable-delivery ledger (fault-plan runs only).
        w.bool("reliable", self.reliable.is_some());
        if let Some(rel) = &self.reliable {
            w.u64("rel_next_id", rel.next_id);
            w.usize("rel_pending", rel.pending.len());
            for (id, p) in &rel.pending {
                w.u64("rp_id", *id);
                w.u64("rp_src", u64::from(p.src.0));
                w.u64("rp_dst", u64::from(p.dst.0));
                w.u64("rp_attempts", u64::from(p.attempts));
                w.u64("rp_rto_us", p.rto.as_micros());
                p.msg.ckpt_write(&mut w);
            }
            w.usize("rel_seen", rel.seen.len());
            for set in &rel.seen {
                w.usize("rs_len", set.len());
                for id in set {
                    w.u64("rs_id", *id);
                }
            }
            w.rng("rel_jitter", &rel.jitter_rng);
        }
        // Cluster bookkeeping: only the supernode vector mutates (failover);
        // membership is rebuilt from the checkpointed topology.
        w.bool("clusters", self.clusters.is_some());
        if let Some(cl) = &self.clusters {
            w.usize("cl_supernodes", cl.supernode.len());
            for sn in &cl.supernode {
                w.u64("cl_sn", u64::from(sn.0));
            }
        }
        self.topo.ckpt_write(&mut w);
        w.bool("tree", self.tree.is_some());
        if let Some(tree) = &self.tree {
            tree.ckpt_write(&mut w);
        }
        // Request plane (publish times are derived from the configuration).
        w.bool("workload", self.workload.is_some());
        if let Some(wl) = &self.workload {
            wl.catalog.ckpt_write(&mut w);
            w.usize("wl_caches", wl.caches.len());
            for c in &wl.caches {
                c.ckpt_write(&mut w);
            }
            w.rng("wl_rng", &wl.rng);
            w.u64("wl_requests", wl.stats.requests);
            w.u64("wl_hits", wl.stats.hits);
            w.u64("wl_delayed_hits", wl.stats.delayed_hits);
            w.u64("wl_misses", wl.stats.misses);
            w.u64("wl_evictions", wl.stats.evictions);
            w.u64("wl_origin_fetches", wl.stats.origin_fetches);
            w.f64("wl_origin_kb", wl.stats.origin_kb);
            w.u64("wl_churn_events", wl.stats.churn_events);
            w.u64("wl_waiters_aborted", wl.stats.waiters_aborted);
            w.u64("wl_orphan_fills", wl.stats.orphan_fills);
            w.usize("wl_latency", wl.stats.latency_s.len());
            for &v in &wl.stats.latency_s {
                w.f64("wl_lat", v);
            }
            w.usize("wl_staleness", wl.stats.staleness_served_s.len());
            for &v in &wl.stats.staleness_served_s {
                w.f64("wl_stale", v);
            }
        }
        self.net.ckpt_write(&mut w);
        // Lifecycle bookkeeping (churn-plan runs only).
        w.bool("lifecycle", self.lifecycle.is_some());
        if let Some(lc) = &self.lifecycle {
            w.usize("lc_nodes", lc.down_kind.len());
            for k in &lc.down_kind {
                w.u64(
                    "lc_down",
                    match k {
                        None => 0,
                        Some(ChurnKind::Leave) => 1,
                        Some(ChurnKind::Crash) => 2,
                    },
                );
            }
            w.u64("lc_joins", lc.joins);
            w.u64("lc_leaves", lc.leaves);
            w.u64("lc_crashes", lc.crashes);
        }
        // Determinism-digest segment, so a restored run continues the saved
        // run's chain and the audit trail stays bit-identical.
        match self.obs.registry.digest_local_state() {
            Some((events, chain, stride, checkpoints)) => {
                w.bool("digest", true);
                w.u64("dg_events", events);
                w.u64("dg_chain", chain);
                w.u64("dg_stride", stride);
                w.usize("dg_checkpoints", checkpoints.len());
                for cp in &checkpoints {
                    w.u64("dg_idx", cp.index);
                    w.u64("dg_val", cp.chain);
                }
            }
            None => w.bool("digest", false),
        }
        w.finish()
    }

    /// Restores state written by [`CdnSimulation::ckpt_write`] into this
    /// freshly constructed simulation (same configuration).
    ///
    /// Errors when the artifact is malformed or disagrees with the
    /// configuration about structure (node/user counts, subsystem
    /// presence).
    fn ckpt_read(&mut self, artifact: &str) -> Result<(), CkptError> {
        let mut r = CkptReader::new(artifact, "cdn-sim")?;
        let now = r.time("sched_now")?;
        let processed = r.u64("sched_processed")?;
        let next_seq = r.u64("sched_next_seq")?;
        let n_entries = r.usize("sched_entries")?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let t = r.time("ev_t")?;
            let seq = r.u64("ev_seq")?;
            entries.push((t, seq, Event::ckpt_read(&mut r)?));
        }
        self.sched.restore_state(now, processed, entries, next_seq);
        self.rng = r.rng("sim_rng")?;
        let n = r.usize("nodes")?;
        if n != self.nodes.len() {
            return Err(CkptError(format!(
                "simulation has {} nodes, checkpoint carries {n}",
                self.nodes.len()
            )));
        }
        for node in &mut self.nodes {
            node.content = SnapshotId(r.u64("n_content")? as u32);
            let stale = r.u64("n_known_stale")?;
            node.known_stale = if stale == 0 { None } else { Some(SnapshotId((stale - 1) as u32)) };
            node.mode = if r.bool("n_mode_inval")? {
                AdaptiveMode::Invalidation
            } else {
                AdaptiveMode::Ttl
            };
            node.fetch_pending = r.bool("n_fetch_pending")?;
            node.timer_gen = r.u64("n_timer_gen")?;
            node.fetch_token = r.u64("n_fetch_token")?;
            node.absent = r.bool("n_absent")?;
            node.content_modified_at = r.time("n_modified_at")?;
            node.adaptive_interval_s = r.f64("n_adaptive_s")?;
            node.waiting_children.clear();
            for _ in 0..r.usize("n_waiting_children")? {
                node.waiting_children.push(NodeId(r.u64("n_wc")? as u32));
            }
            node.waiting_users.clear();
            for _ in 0..r.usize("n_waiting_users")? {
                node.waiting_users.push(r.u64("n_wu")? as u32);
            }
            node.inval_registry.clear();
            for _ in 0..r.usize("n_inval_registry")? {
                node.inval_registry.push(NodeId(r.u64("n_ir")? as u32));
            }
            node.last_invalidated = SnapshotId(r.u64("n_last_invalidated")? as u32);
            node.pending_pubs.clear();
            for _ in 0..r.usize("n_pending_pubs")? {
                let snap = SnapshotId(r.u64("n_pp_snap")? as u32);
                node.pending_pubs.push_back((snap, r.time("n_pp_t")?));
            }
            let count = r.u64("n_lag_count")?;
            let mean = r.f64("n_lag_mean")?;
            let m2 = r.f64("n_lag_m2")?;
            let min = r.f64("n_lag_min")?;
            let max = r.f64("n_lag_max")?;
            node.lag = OnlineStats::from_raw(count, mean, m2, min, max);
            node.content_ctx = TraceCtx::NONE;
            let probe_wait = r.bool("n_probe_wait")?;
            let probe_t = r.time("n_probe_t")?;
            node.awaiting_probe = probe_wait.then_some(probe_t);
            node.probe_gen = r.u64("n_probe_gen")?;
        }
        let n_users = r.usize("users")?;
        if n_users != self.users.len() {
            return Err(CkptError(format!(
                "simulation has {} users, checkpoint carries {n_users}",
                self.users.len()
            )));
        }
        for user in &mut self.users {
            user.last_server = NodeId(r.u64("u_last_server")? as u32);
            user.seen_max = SnapshotId(r.u64("u_seen_max")? as u32);
            user.pending_pubs.clear();
            for _ in 0..r.usize("u_pending_pubs")? {
                let snap = SnapshotId(r.u64("u_pp_snap")? as u32);
                user.pending_pubs.push_back((snap, r.time("u_pp_t")?));
            }
            let count = r.u64("u_lag_count")?;
            let mean = r.f64("u_lag_mean")?;
            let m2 = r.f64("u_lag_m2")?;
            let min = r.f64("u_lag_min")?;
            let max = r.f64("u_lag_max")?;
            user.lag = OnlineStats::from_raw(count, mean, m2, min, max);
            user.inconsistent_obs = r.u64("u_inconsistent")?;
            user.total_obs = r.u64("u_total")?;
        }
        self.provider_update_messages = r.u64("provider_update_messages")?;
        self.server_update_messages = r.u64("server_update_messages")?;
        self.chaos.lost_to_failed = r.u64("chaos_lost")?;
        self.chaos.retransmits = r.u64("chaos_rtx")?;
        self.chaos.abandoned = r.u64("chaos_abandoned")?;
        self.chaos.abandoned_to_departed = r.u64("chaos_abandoned_dep")?;
        self.chaos.dup_suppressed = r.u64("chaos_dup")?;
        self.chaos.failovers = r.u64("chaos_failovers")?;
        self.chaos.ttl_fallbacks = r.u64("chaos_ttl_fallbacks")?;
        self.chaos.convergence_violations = r.u64("chaos_conv")?;
        let has_reliable = r.bool("reliable")?;
        match (&mut self.reliable, has_reliable) {
            (Some(rel), true) => {
                rel.next_id = r.u64("rel_next_id")?;
                rel.pending.clear();
                for _ in 0..r.usize("rel_pending")? {
                    let id = r.u64("rp_id")?;
                    let src = NodeId(r.u64("rp_src")? as u32);
                    let dst = NodeId(r.u64("rp_dst")? as u32);
                    let attempts = r.u64("rp_attempts")? as u32;
                    let rto = SimDuration::from_micros(r.u64("rp_rto_us")?);
                    let msg = Msg::ckpt_read(&mut r)?;
                    rel.pending.insert(id, PendingDelivery { src, dst, msg, attempts, rto });
                }
                let n_seen = r.usize("rel_seen")?;
                if n_seen != rel.seen.len() {
                    return Err(CkptError(format!(
                        "reliable ledger has {} nodes, checkpoint carries {n_seen}",
                        rel.seen.len()
                    )));
                }
                for set in &mut rel.seen {
                    set.clear();
                    for _ in 0..r.usize("rs_len")? {
                        set.insert(r.u64("rs_id")?);
                    }
                }
                rel.jitter_rng = r.rng("rel_jitter")?;
            }
            (None, false) => {}
            (present, _) => {
                return Err(CkptError(format!(
                    "fault plan {} here but {} in the checkpoint",
                    if present.is_some() { "attached" } else { "absent" },
                    if has_reliable { "present" } else { "absent" },
                )));
            }
        }
        let has_clusters = r.bool("clusters")?;
        match (&mut self.clusters, has_clusters) {
            (Some(cl), true) => {
                let n_sn = r.usize("cl_supernodes")?;
                if n_sn != cl.supernode.len() {
                    return Err(CkptError(format!(
                        "cluster map has {} supernodes, checkpoint carries {n_sn}",
                        cl.supernode.len()
                    )));
                }
                for sn in &mut cl.supernode {
                    *sn = NodeId(r.u64("cl_sn")? as u32);
                }
            }
            (None, false) => {}
            (present, _) => {
                return Err(CkptError(format!(
                    "cluster state {} here but {} in the checkpoint",
                    if present.is_some() { "attached" } else { "absent" },
                    if has_clusters { "present" } else { "absent" },
                )));
            }
        }
        self.topo.ckpt_read(&mut r)?;
        let has_tree = r.bool("tree")?;
        match (&mut self.tree, has_tree) {
            (Some(tree), true) => tree.ckpt_read(&mut r)?,
            (None, false) => {}
            (present, _) => {
                return Err(CkptError(format!(
                    "distribution tree {} here but {} in the checkpoint",
                    if present.is_some() { "attached" } else { "absent" },
                    if has_tree { "present" } else { "absent" },
                )));
            }
        }
        let has_workload = r.bool("workload")?;
        match (&mut self.workload, has_workload) {
            (Some(wl), true) => {
                wl.catalog.ckpt_read(&mut r)?;
                let n_caches = r.usize("wl_caches")?;
                if n_caches != wl.caches.len() {
                    return Err(CkptError(format!(
                        "workload has {} caches, checkpoint carries {n_caches}",
                        wl.caches.len()
                    )));
                }
                for c in &mut wl.caches {
                    c.ckpt_read(&mut r)?;
                }
                wl.rng = r.rng("wl_rng")?;
                wl.stats.requests = r.u64("wl_requests")?;
                wl.stats.hits = r.u64("wl_hits")?;
                wl.stats.delayed_hits = r.u64("wl_delayed_hits")?;
                wl.stats.misses = r.u64("wl_misses")?;
                wl.stats.evictions = r.u64("wl_evictions")?;
                wl.stats.origin_fetches = r.u64("wl_origin_fetches")?;
                wl.stats.origin_kb = r.f64("wl_origin_kb")?;
                wl.stats.churn_events = r.u64("wl_churn_events")?;
                wl.stats.waiters_aborted = r.u64("wl_waiters_aborted")?;
                wl.stats.orphan_fills = r.u64("wl_orphan_fills")?;
                wl.stats.latency_s.clear();
                for _ in 0..r.usize("wl_latency")? {
                    wl.stats.latency_s.push(r.f64("wl_lat")?);
                }
                wl.stats.staleness_served_s.clear();
                for _ in 0..r.usize("wl_staleness")? {
                    wl.stats.staleness_served_s.push(r.f64("wl_stale")?);
                }
            }
            (None, false) => {}
            (present, _) => {
                return Err(CkptError(format!(
                    "workload plan {} here but {} in the checkpoint",
                    if present.is_some() { "attached" } else { "absent" },
                    if has_workload { "present" } else { "absent" },
                )));
            }
        }
        self.net.ckpt_read(&mut r)?;
        let has_lifecycle = r.bool("lifecycle")?;
        match (&mut self.lifecycle, has_lifecycle) {
            (Some(lc), true) => {
                let n_lc = r.usize("lc_nodes")?;
                if n_lc != lc.down_kind.len() {
                    return Err(CkptError(format!(
                        "lifecycle tracks {} nodes, checkpoint carries {n_lc}",
                        lc.down_kind.len()
                    )));
                }
                for k in &mut lc.down_kind {
                    *k = match r.u64("lc_down")? {
                        0 => None,
                        1 => Some(ChurnKind::Leave),
                        2 => Some(ChurnKind::Crash),
                        t => return Err(CkptError(format!("unknown churn-kind tag {t}"))),
                    };
                }
                lc.joins = r.u64("lc_joins")?;
                lc.leaves = r.u64("lc_leaves")?;
                lc.crashes = r.u64("lc_crashes")?;
            }
            (None, false) => {}
            (present, _) => {
                return Err(CkptError(format!(
                    "churn plan {} here but {} in the checkpoint",
                    if present.is_some() { "attached" } else { "absent" },
                    if has_lifecycle { "present" } else { "absent" },
                )));
            }
        }
        if r.bool("digest")? {
            let events = r.u64("dg_events")?;
            let chain = r.u64("dg_chain")?;
            let stride = r.u64("dg_stride")?;
            let mut checkpoints = Vec::new();
            for _ in 0..r.usize("dg_checkpoints")? {
                let index = r.u64("dg_idx")?;
                checkpoints.push(Checkpoint { index, chain: r.u64("dg_val")? });
            }
            // `false` just means this run's registry has no digest armed —
            // the chain continuation is then irrelevant, not an error.
            let _ = self.obs.registry.restore_digest_local(events, chain, stride, checkpoints);
        }
        r.done()
    }

    fn into_report(self) -> SimReport {
        let unresolved: u64 = self
            .topo
            .servers
            .iter()
            .map(|&s| self.nodes[s.index()].pending_pubs.len() as u64)
            .sum::<u64>()
            + self.users.iter().map(|u| u.pending_pubs.len() as u64).sum::<u64>();
        SimReport {
            scheme_label: self.config.scheme.label().to_owned(),
            server_mean_lag_s: self
                .topo
                .servers
                .iter()
                .map(|&s| self.nodes[s.index()].lag.mean())
                .collect(),
            user_mean_lag_s: self.users.iter().map(|u| u.lag.mean()).collect(),
            traffic: self.net.traffic().clone(),
            provider_update_messages: self.provider_update_messages,
            server_update_messages: self.server_update_messages,
            inconsistent_observations: self.users.iter().map(|u| u.inconsistent_obs).sum(),
            total_observations: self.users.iter().map(|u| u.total_obs).sum(),
            unresolved_lags: unresolved,
            events: self.sched.processed(),
            msgs_lost_to_failed: self.chaos.lost_to_failed,
            retransmits: self.chaos.retransmits,
            abandoned_deliveries: self.chaos.abandoned,
            duplicates_suppressed: self.chaos.dup_suppressed,
            failovers: self.chaos.failovers,
            ttl_fallbacks: self.chaos.ttl_fallbacks,
            convergence_violations: self.chaos.convergence_violations,
            node_joins: self.lifecycle.as_ref().map_or(0, |lc| lc.joins),
            node_leaves: self.lifecycle.as_ref().map_or(0, |lc| lc.leaves),
            crash_restarts: self.lifecycle.as_ref().map_or(0, |lc| lc.crashes),
            abandoned_to_departed: self.chaos.abandoned_to_departed,
            workload: self.workload.map(|wl| wl.stats).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use cdnc_trace::UpdateSequence;

    fn updates(every_s: u64, until_s: u64) -> UpdateSequence {
        UpdateSequence::periodic(SimDuration::from_secs(every_s), SimTime::from_secs(until_s))
    }

    fn small(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::section4(scheme, updates(30, 600));
        cfg.servers = 24;
        cfg.users_per_server = 2;
        cfg
    }

    #[test]
    fn push_beats_invalidation_beats_ttl_on_servers() {
        let push = run(&small(Scheme::Unicast(MethodKind::Push)));
        let inval = run(&small(Scheme::Unicast(MethodKind::Invalidation)));
        let ttl = run(&small(Scheme::Unicast(MethodKind::Ttl)));
        assert!(
            push.mean_server_lag_s() < inval.mean_server_lag_s(),
            "Push {} < Invalidation {}",
            push.mean_server_lag_s(),
            inval.mean_server_lag_s()
        );
        assert!(
            inval.mean_server_lag_s() < ttl.mean_server_lag_s(),
            "Invalidation {} < TTL {}",
            inval.mean_server_lag_s(),
            ttl.mean_server_lag_s()
        );
        // TTL mean inconsistency ≈ TTL/2 (paper Fig. 14(a): 5.7 s at 10 s).
        assert!(
            (3.0..9.0).contains(&ttl.mean_server_lag_s()),
            "TTL lag {} should be ≈ TTL/2",
            ttl.mean_server_lag_s()
        );
    }

    #[test]
    fn push_and_invalidation_match_for_users() {
        let push = run(&small(Scheme::Unicast(MethodKind::Push)));
        let inval = run(&small(Scheme::Unicast(MethodKind::Invalidation)));
        let ttl = run(&small(Scheme::Unicast(MethodKind::Ttl)));
        // Fig. 14(b): Push ≈ Invalidation < TTL for end-users.
        let diff = (push.mean_user_lag_s() - inval.mean_user_lag_s()).abs();
        assert!(
            diff < 2.0,
            "Push {} vs Invalidation {}",
            push.mean_user_lag_s(),
            inval.mean_user_lag_s()
        );
        assert!(ttl.mean_user_lag_s() > push.mean_user_lag_s() + 2.0);
    }

    #[test]
    fn no_unresolved_lags_with_adequate_drain() {
        for scheme in [
            Scheme::Unicast(MethodKind::Push),
            Scheme::Unicast(MethodKind::Ttl),
            Scheme::Unicast(MethodKind::Invalidation),
        ] {
            let r = run(&small(scheme));
            assert_eq!(r.unresolved_lags, 0, "{scheme} left unresolved lags");
        }
    }

    #[test]
    fn multicast_ttl_amplifies_inconsistency_with_depth() {
        let uni = run(&small(Scheme::Unicast(MethodKind::Ttl)));
        let multi = run(&small(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }));
        assert!(
            multi.mean_server_lag_s() > uni.mean_server_lag_s() * 1.3,
            "multicast TTL {} must exceed unicast TTL {}",
            multi.mean_server_lag_s(),
            uni.mean_server_lag_s()
        );
    }

    #[test]
    fn multicast_saves_traffic_cost() {
        let uni = run(&small(Scheme::Unicast(MethodKind::Push)));
        let multi = run(&small(Scheme::Multicast { method: MethodKind::Push, arity: 2 }));
        assert!(
            multi.traffic.km_kb() < uni.traffic.km_kb(),
            "multicast push {} km·KB must beat unicast {}",
            multi.traffic.km_kb(),
            uni.traffic.km_kb()
        );
    }

    #[test]
    fn ttl_wastes_update_messages_on_silence() {
        // A long silent tail: plain TTL keeps fetching full content, the
        // self-adaptive method switches to invalidation and stops.
        let silent_updates =
            UpdateSequence::periodic(SimDuration::from_secs(20), SimTime::from_secs(120));
        let mut ttl_cfg =
            SimConfig::section4(Scheme::Unicast(MethodKind::Ttl), silent_updates.clone());
        ttl_cfg.servers = 16;
        ttl_cfg.users_per_server = 2;
        ttl_cfg.drain = SimDuration::from_secs(1_200); // long silence
        let mut self_cfg = ttl_cfg.clone();
        self_cfg.scheme = Scheme::Unicast(MethodKind::SelfAdaptive);
        let ttl = run(&ttl_cfg);
        let sa = run(&self_cfg);
        assert!(
            sa.server_update_messages * 2 < ttl.server_update_messages,
            "self-adaptive {} should send far fewer update messages than TTL {}",
            sa.server_update_messages,
            ttl.server_update_messages
        );
    }

    #[test]
    fn self_adaptive_still_converges() {
        let r = run(&small(Scheme::Unicast(MethodKind::SelfAdaptive)));
        assert_eq!(r.unresolved_lags, 0, "self-adaptive must deliver every update");
        // Its consistency sits between Push and TTL.
        let ttl = run(&small(Scheme::Unicast(MethodKind::Ttl)));
        assert!(r.mean_server_lag_s() <= ttl.mean_server_lag_s() * 1.5);
    }

    #[test]
    fn hat_reduces_provider_load() {
        let mut hat_cfg = small(Scheme::hat());
        hat_cfg.servers = 60;
        let mut uni_cfg = small(Scheme::Unicast(MethodKind::Ttl));
        uni_cfg.servers = 60;
        let hat = run(&hat_cfg);
        let uni = run(&uni_cfg);
        assert!(
            hat.provider_update_messages < uni.provider_update_messages / 4,
            "HAT provider messages {} must be far below unicast TTL {}",
            hat.provider_update_messages,
            uni.provider_update_messages
        );
        assert_eq!(hat.unresolved_lags, 0);
    }

    #[test]
    fn roaming_users_observe_inconsistency_under_ttl_but_not_push() {
        // §5 regime: server TTL 60 s ≫ 10 s visits, so roaming users land on
        // servers at very different staleness and see scores go backwards.
        let mut ttl_cfg = small(Scheme::Unicast(MethodKind::Ttl));
        ttl_cfg.users_roam = true;
        ttl_cfg.server_ttl = SimDuration::from_secs(60);
        ttl_cfg.drain = SimDuration::from_secs(400);
        let mut push_cfg = small(Scheme::Unicast(MethodKind::Push));
        push_cfg.users_roam = true;
        let ttl = run(&ttl_cfg);
        let push = run(&push_cfg);
        assert!(
            ttl.inconsistency_observation_rate() > 0.01,
            "roaming TTL users must see inconsistency, rate {}",
            ttl.inconsistency_observation_rate()
        );
        assert!(
            push.inconsistency_observation_rate() < ttl.inconsistency_observation_rate() / 4.0,
            "push {} must be far below ttl {}",
            push.inconsistency_observation_rate(),
            ttl.inconsistency_observation_rate()
        );
    }

    #[test]
    fn heterogeneous_visit_frequencies_are_supported() {
        // §6's "varying visit frequencies": the run completes, remains
        // deterministic, and the slow-visitor tail shows up as higher user
        // inconsistency spread than the homogeneous baseline.
        let uniform = small(Scheme::Unicast(MethodKind::Ttl));
        let mut spread = uniform.clone();
        spread.visit_spread = 3.0;
        let a = run(&uniform);
        let b = run(&spread);
        assert_eq!(b, run(&spread), "heterogeneous runs stay deterministic");
        assert_eq!(b.unresolved_lags, 0);
        let spread_of = |r: &SimReport| {
            let cdf = cdnc_simcore::stats::Cdf::from_samples(r.user_mean_lag_s.iter().copied());
            cdf.percentile(95.0).unwrap() - cdf.percentile(5.0).unwrap()
        };
        assert!(
            spread_of(&b) > spread_of(&a),
            "visit heterogeneity must widen the user-lag spread: {} vs {}",
            spread_of(&b),
            spread_of(&a)
        );
    }

    mod adaptive_ttl {
        use super::*;
        use cdnc_net::PacketKind;
        use cdnc_simcore::SimRng;

        /// A bursty-then-silent day, §5.1's problem case for adaptive TTL.
        fn bursty() -> UpdateSequence {
            UpdateSequence::live_game(&mut SimRng::seed_from_u64(3))
        }

        fn cfg(method: MethodKind) -> SimConfig {
            let mut cfg = SimConfig::section5(Scheme::Unicast(method), bursty());
            cfg.servers = 24;
            cfg.users_per_server = 2;
            cfg
        }

        #[test]
        fn beats_fixed_ttl_on_regular_content() {
            // Steady updates: the age-based prediction works and adaptive
            // TTL polls tightly right after each change.
            let steady =
                UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(2_000));
            let mut a_cfg = SimConfig::section5(Scheme::Unicast(MethodKind::AdaptiveTtl), steady);
            a_cfg.servers = 24;
            a_cfg.users_per_server = 2;
            let mut t_cfg = a_cfg.clone();
            t_cfg.scheme = Scheme::Unicast(MethodKind::Ttl);
            let adaptive = run(&a_cfg);
            let plain = run(&t_cfg);
            assert!(
                adaptive.mean_server_lag_s() < plain.mean_server_lag_s() * 0.6,
                "adaptive {} should clearly beat fixed TTL {} on regular content",
                adaptive.mean_server_lag_s(),
                plain.mean_server_lag_s()
            );
            assert_eq!(adaptive.unresolved_lags, 0);
        }

        #[test]
        fn loses_its_edge_on_bursty_content() {
            // The §5.1 critique: with bursts and silences the prediction is
            // wrong in both directions — adaptive TTL polls far more than
            // the fixed TTL yet fails to convert that into a matching
            // consistency win (the post-silence restart is missed by up to
            // the backed-off interval).
            let adaptive = run(&cfg(MethodKind::AdaptiveTtl));
            let plain = run(&cfg(MethodKind::Ttl));
            assert!(
                adaptive.traffic.count_of(PacketKind::Poll)
                    > plain.traffic.count_of(PacketKind::Poll),
                "adaptive {} polls vs plain {}",
                adaptive.traffic.count_of(PacketKind::Poll),
                plain.traffic.count_of(PacketKind::Poll)
            );
            assert!(
                adaptive.mean_server_lag_s() > plain.mean_server_lag_s() * 0.5,
                "the poll investment must NOT pay off proportionally: adaptive {} vs plain {}",
                adaptive.mean_server_lag_s(),
                plain.mean_server_lag_s()
            );
            assert_eq!(adaptive.unresolved_lags, 0);
        }

        #[test]
        fn wastes_polls_compared_to_self_adaptive() {
            // The paper's §5.1 critique: prediction-based polling keeps
            // probing irregular content; Algorithm 1 simply goes quiet.
            let adaptive = run(&cfg(MethodKind::AdaptiveTtl));
            let selfa = run(&cfg(MethodKind::SelfAdaptive));
            assert!(
                selfa.traffic.count_of(PacketKind::Poll) * 2
                    < adaptive.traffic.count_of(PacketKind::Poll),
                "self-adaptive {} polls should be far below adaptive TTL {}",
                selfa.traffic.count_of(PacketKind::Poll),
                adaptive.traffic.count_of(PacketKind::Poll)
            );
        }

        #[test]
        fn conditional_polls_do_not_waste_content_transfers() {
            // Adaptive TTL's unchanged probes are light; its update messages
            // stay at or below the plain TTL's unconditional refetches.
            let adaptive = run(&cfg(MethodKind::AdaptiveTtl));
            let plain = run(&cfg(MethodKind::Ttl));
            assert!(adaptive.server_update_messages <= plain.server_update_messages * 2);
            assert!(adaptive.traffic.count_of(PacketKind::PollUnchanged) > 0);
        }
    }

    mod failures {
        use super::*;
        use crate::config::FailureConfig;
        use cdnc_net::PacketKind;

        fn failing(scheme: Scheme, mean_gap_s: f64) -> SimConfig {
            let mut cfg = small(scheme);
            cfg.servers = 48;
            cfg.failures = Some(FailureConfig::with_mean_gap_s(mean_gap_s));
            cfg
        }

        #[test]
        fn polling_methods_self_heal() {
            // TTL keeps polling; every update is eventually delivered even
            // with frequent failures.
            let r = run(&failing(Scheme::Unicast(MethodKind::Ttl), 400.0));
            assert_eq!(r.unresolved_lags, 0, "TTL must self-heal after failures");
        }

        #[test]
        fn push_recovers_via_resync() {
            // Pushed updates to failed servers are lost; the recovery
            // resync poll must recover them.
            let r = run(&failing(Scheme::Unicast(MethodKind::Push), 400.0));
            assert_eq!(r.unresolved_lags, 0, "push + resync must deliver everything");
        }

        #[test]
        fn multicast_repair_charges_maintenance_messages() {
            let no_fail = run(&small(Scheme::Multicast { method: MethodKind::Push, arity: 2 }));
            assert_eq!(no_fail.traffic.count_of(PacketKind::TreeMaintenance), 0);
            let r = run(&failing(Scheme::Multicast { method: MethodKind::Push, arity: 2 }, 300.0));
            assert!(
                r.traffic.count_of(PacketKind::TreeMaintenance) > 0,
                "tree repair must cost maintenance messages"
            );
        }

        #[test]
        fn failures_degrade_push_consistency() {
            let clean = run(&{
                let mut c = small(Scheme::Multicast { method: MethodKind::Push, arity: 2 });
                c.servers = 48;
                c
            });
            let faulty =
                run(&failing(Scheme::Multicast { method: MethodKind::Push, arity: 2 }, 300.0));
            assert!(
                faulty.mean_server_lag_s() > clean.mean_server_lag_s(),
                "failures must hurt: {} vs clean {}",
                faulty.mean_server_lag_s(),
                clean.mean_server_lag_s()
            );
        }

        #[test]
        fn heavier_failures_cost_more_maintenance() {
            let light =
                run(&failing(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }, 2_000.0));
            let heavy =
                run(&failing(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }, 200.0));
            assert!(
                heavy.traffic.count_of(PacketKind::TreeMaintenance)
                    > light.traffic.count_of(PacketKind::TreeMaintenance),
                "more failures must mean more repair traffic"
            );
        }

        #[test]
        fn hat_survives_supernode_failures() {
            let r = run(&failing(Scheme::hat(), 400.0));
            // Self-adaptive members may wait out a supernode failure, but
            // no update may be lost forever.
            assert_eq!(r.unresolved_lags, 0, "HAT must deliver everything after recoveries");
        }

        #[test]
        fn failure_runs_are_deterministic() {
            let cfg = failing(Scheme::Multicast { method: MethodKind::Push, arity: 2 }, 300.0);
            assert_eq!(run(&cfg), run(&cfg));
        }
    }

    mod chaos {
        use super::*;
        use crate::config::{FailureConfig, FaultPlan};
        use cdnc_net::FaultConfig;

        fn chaotic(scheme: Scheme, intensity: f64) -> SimConfig {
            let mut cfg = small(scheme);
            cfg.faults = Some(FaultPlan::at_intensity(intensity));
            cfg
        }

        #[test]
        fn intensity_zero_converges_for_every_method() {
            // The full protocol (acks, probes, convergence check) over a
            // clean network: nothing is retransmitted, nothing is lost,
            // and the invariant holds.
            for scheme in [
                Scheme::Unicast(MethodKind::Push),
                Scheme::Unicast(MethodKind::Invalidation),
                Scheme::Unicast(MethodKind::Ttl),
                Scheme::Multicast { method: MethodKind::Push, arity: 2 },
                Scheme::hat(),
            ] {
                let r = run(&chaotic(scheme, 0.0));
                assert_eq!(r.convergence_violations, 0, "{scheme} violated convergence");
                assert_eq!(r.unresolved_lags, 0, "{scheme} lost updates");
                assert_eq!(r.retransmits, 0, "{scheme} retransmitted on a clean network");
                assert_eq!(r.abandoned_deliveries, 0);
                assert_eq!(r.failovers, 0);
            }
        }

        #[test]
        fn chaos_runs_are_deterministic() {
            let cfg = chaotic(Scheme::hat(), 0.7);
            assert_eq!(run(&cfg), run(&cfg));
            let mut reseeded = chaotic(Scheme::hat(), 0.7);
            reseeded.seed = 99;
            assert_ne!(run(&cfg), run(&reseeded));
        }

        #[test]
        fn loss_triggers_retransmits_and_the_protocol_still_converges() {
            let r = run(&chaotic(Scheme::Unicast(MethodKind::Push), 0.7));
            assert!(r.retransmits > 0, "25%-class loss must trigger retransmissions");
            assert_eq!(r.convergence_violations, 0, "retransmits + probes must converge");
        }

        #[test]
        fn duplicated_deliveries_are_suppressed() {
            let mut cfg = small(Scheme::Unicast(MethodKind::Push));
            cfg.faults = Some(FaultPlan {
                faults: FaultConfig { dup_prob: 0.5, ..FaultConfig::none() },
                ..FaultPlan::default()
            });
            let r = run(&cfg);
            assert!(r.duplicates_suppressed > 0, "50% duplication must hit the dedup path");
            assert_eq!(r.convergence_violations, 0);
            assert_eq!(r.unresolved_lags, 0);
        }

        #[test]
        fn supernode_failures_trigger_hat_failover() {
            // Quiet network faults, but servers fail/recover: the probe
            // detector must notice dead supernodes and promote members.
            let mut cfg = chaotic(Scheme::hat(), 0.0);
            cfg.servers = 48;
            cfg.failures = Some(FailureConfig::with_mean_gap_s(300.0));
            let r = run(&cfg);
            assert!(r.failovers > 0, "supernode failures must trigger failovers");
            assert_eq!(r.convergence_violations, 0, "failover must preserve convergence");
        }

        #[test]
        fn degradation_can_be_disabled() {
            let mut cfg = chaotic(Scheme::hat(), 0.0);
            cfg.servers = 48;
            cfg.failures = Some(FailureConfig::with_mean_gap_s(300.0));
            cfg.faults.as_mut().expect("set above").hat_degradation = false;
            let r = run(&cfg);
            assert_eq!(r.failovers, 0);
            assert_eq!(r.ttl_fallbacks, 0);
        }

        #[test]
        fn profiling_probes_ride_along_without_changing_results() {
            let cfg = chaotic(Scheme::hat(), 0.5);
            let plain = run(&cfg);
            let reg = Registry::enabled();
            reg.enable_profiling(cdnc_obs::ProfileConfig::default());
            let profiled = run_with_obs(&cfg, &reg);
            assert_eq!(plain, profiled, "profiling probes must be observation-only");
            let snap = reg.snapshot();
            // One state-size sample per node (servers + provider) and user.
            let nodes = snap.histogram("sim_node_state_bytes").expect("node state probe");
            assert_eq!(nodes.count, cfg.servers as u64 + 1);
            assert!(nodes.min >= std::mem::size_of::<NodeState>() as f64);
            let users = snap.histogram("sim_user_state_bytes").expect("user state probe");
            assert_eq!(users.count, cfg.users() as u64);
            // The wire drains: every sent packet was retired at its arrival
            // (or at the drop point), so in-flight levels end at zero while
            // the high-water marks show the run really put bytes in flight.
            let inflight =
                snap.gauges.iter().find(|(n, _)| n == "net_inflight_bytes").expect("armed").1;
            assert_eq!(inflight.value, 0, "in-flight bytes must drain by quiesce");
            assert!(inflight.high_water > 0);
            assert_eq!(
                snap.counter("net_pkts_update"),
                snap.counter("sim_msgs_update"),
                "network-side and sim-side per-kind tallies must agree"
            );
        }

        #[test]
        fn chaos_instrumentation_is_observation_only() {
            let cfg = chaotic(Scheme::hat(), 0.7);
            let plain = run(&cfg);
            let reg = Registry::enabled();
            reg.enable_events(Level::Debug, 4096);
            reg.enable_tracing();
            let observed = run_with_obs(&cfg, &reg);
            assert_eq!(plain, observed);
        }

        #[test]
        fn chaos_metrics_mirror_the_report() {
            let cfg = chaotic(Scheme::Unicast(MethodKind::Push), 0.7);
            let reg = Registry::enabled();
            let r = run_with_obs(&cfg, &reg);
            let snap = reg.snapshot();
            assert_eq!(snap.counter("sim_rtx_sent"), r.retransmits);
            assert_eq!(snap.counter("sim_rtx_abandoned"), r.abandoned_deliveries);
            assert_eq!(snap.counter("sim_dup_suppressed"), r.duplicates_suppressed);
            assert_eq!(snap.counter("sim_failovers"), r.failovers);
            assert_eq!(snap.counter("sim_convergence_violations"), r.convergence_violations);
            assert_eq!(snap.counter("sim_msgs_lost_to_failed"), r.msgs_lost_to_failed);
            assert!(snap.counter("sim_ev_probe") > 0, "probe chains must run");
        }

        #[test]
        fn messages_to_failed_nodes_are_counted() {
            // Satellite of the fault plane: the silent message loss at
            // failed nodes is now accounted, with or without a fault plan.
            // Unicast keeps failed servers wired to the provider, so pushes
            // into them are the canonical silent-loss case.
            let mut cfg = small(Scheme::Unicast(MethodKind::Push));
            cfg.servers = 48;
            cfg.failures = Some(FailureConfig::with_mean_gap_s(300.0));
            let r = run(&cfg);
            assert!(r.msgs_lost_to_failed > 0, "pushes into failed servers must be counted");
            let clean = run(&small(Scheme::Unicast(MethodKind::Push)));
            assert_eq!(clean.msgs_lost_to_failed, 0);
        }

        #[test]
        fn faults_cost_traffic_but_update_accounting_stays_consistent() {
            // Dropped sends still charge the wire, and the report's update
            // counter keeps matching the traffic tally (retransmissions
            // count as fresh update messages on both sides).
            let r = run(&chaotic(Scheme::Unicast(MethodKind::Push), 0.7));
            assert_eq!(
                r.server_update_messages,
                r.traffic.count_of(PacketKind::Update),
                "update accounting must survive drops, dups, and retransmits"
            );
            assert!(r.traffic.count_of(PacketKind::Ack) > 0, "tracked messages must be acked");
        }
    }

    mod churn {
        use super::*;
        use crate::config::{ChurnPlan, ScheduledChurn};
        use cdnc_obs::DigestConfig;

        fn churny(scheme: Scheme, intensity: f64) -> SimConfig {
            let mut cfg = small(scheme);
            // Churn rides on the fault plane's survival protocol (acks,
            // probes, convergence check); intensity 0 arms it cleanly.
            cfg.faults = Some(FaultPlan::at_intensity(0.0));
            cfg.churn = Some(ChurnPlan::at_intensity(intensity));
            cfg
        }

        #[test]
        fn churn_runs_are_deterministic_and_observation_only() {
            let cfg = churny(Scheme::hat(), 0.8);
            let plain = run(&cfg);
            assert_eq!(plain, run(&cfg));
            let reg = Registry::enabled();
            reg.enable_tracing();
            assert_eq!(plain, run_with_obs(&cfg, &reg), "instrumentation must be inert");
            let mut reseeded = cfg.clone();
            reseeded.seed = 99;
            assert_ne!(plain, run(&reseeded));
        }

        #[test]
        fn intensity_zero_arms_without_churning() {
            let armed = run(&churny(Scheme::hat(), 0.0));
            assert_eq!(armed.node_joins, 0);
            assert_eq!(armed.node_leaves, 0);
            assert_eq!(armed.crash_restarts, 0);
            assert_eq!(armed.convergence_violations, 0);
            // And the lifecycle machinery at zero volume is invisible: the
            // report matches a `churn: None` run bit for bit.
            let mut bare = churny(Scheme::hat(), 0.0);
            bare.churn = None;
            assert_eq!(armed, run(&bare));
        }

        #[test]
        fn churn_converges_for_every_scheme() {
            for scheme in [
                Scheme::Unicast(MethodKind::Push),
                Scheme::Unicast(MethodKind::Invalidation),
                Scheme::Unicast(MethodKind::Ttl),
                Scheme::Multicast { method: MethodKind::Push, arity: 2 },
                Scheme::hat(),
            ] {
                let r = run(&churny(scheme, 0.8));
                assert!(r.node_leaves + r.crash_restarts > 0, "{scheme} never churned");
                assert_eq!(
                    r.node_joins,
                    r.node_leaves + r.crash_restarts,
                    "{scheme} lost a rejoin"
                );
                assert_eq!(r.convergence_violations, 0, "{scheme} violated convergence");
                assert_eq!(r.unresolved_lags, 0, "{scheme} lost updates");
            }
        }

        #[test]
        fn graceful_supernode_leave_fails_over_proactively() {
            let mut cfg = churny(Scheme::hat(), 0.0);
            cfg.servers = 48;
            cfg.churn.as_mut().expect("set above").scheduled = vec![ScheduledChurn {
                at: SimDuration::from_secs(120),
                target: ChurnTarget::Supernode(0),
                kind: ChurnKind::Leave,
                downtime: SimDuration::from_secs(60),
            }];
            let r = run(&cfg);
            assert_eq!(r.node_leaves, 1);
            assert_eq!(r.node_joins, 1);
            assert!(r.failovers > 0, "a departing cluster leader must hand off proactively");
            assert_eq!(r.convergence_violations, 0);
        }

        #[test]
        fn crashed_supernode_is_detected_and_the_cluster_recovers() {
            // A crash gives no warning: only the probe detector notices the
            // dead leader (the supernode-kill + flash-restart cell of the
            // ext_churn sweep, in miniature).
            let mut cfg = churny(Scheme::hat(), 0.0);
            cfg.servers = 48;
            cfg.churn.as_mut().expect("set above").scheduled = vec![ScheduledChurn {
                at: SimDuration::from_secs(120),
                target: ChurnTarget::Supernode(0),
                kind: ChurnKind::Crash,
                downtime: SimDuration::from_secs(90),
            }];
            let r = run(&cfg);
            assert_eq!(r.crash_restarts, 1);
            assert_eq!(r.node_joins, 1);
            assert!(r.failovers > 0, "the probe detector must notice the dead supernode");
            assert_eq!(r.convergence_violations, 0);
        }

        #[test]
        fn graceful_and_crash_kinds_follow_the_plan() {
            let mk = |graceful: f64| {
                let mut cfg = small(Scheme::Unicast(MethodKind::Push));
                cfg.faults = Some(FaultPlan::at_intensity(0.0));
                cfg.churn =
                    Some(ChurnPlan { graceful_fraction: graceful, ..ChurnPlan::at_intensity(0.8) });
                run(&cfg)
            };
            let graceful = mk(1.0);
            assert_eq!(graceful.crash_restarts, 0);
            assert!(graceful.node_leaves > 0);
            let crashy = mk(0.0);
            assert_eq!(crashy.node_leaves, 0);
            assert!(crashy.crash_restarts > 0);
            assert_eq!(crashy.convergence_violations, 0, "cold restarts must reconverge");
        }

        #[test]
        fn deliveries_to_departed_nodes_abandon_fast() {
            let cfg = churny(Scheme::Unicast(MethodKind::Push), 1.0);
            let reg = Registry::enabled();
            let r = run_with_obs(&cfg, &reg);
            assert!(r.abandoned_to_departed > 0, "pushes into departed servers must abandon");
            assert!(r.abandoned_to_departed <= r.abandoned_deliveries);
            let snap = reg.snapshot();
            assert_eq!(snap.counter("sim_abandoned_to_departed"), r.abandoned_to_departed);
            assert_eq!(snap.counter("sim_ev_node_leave"), r.node_leaves);
            assert_eq!(snap.counter("sim_ev_node_crash"), r.crash_restarts);
            assert_eq!(snap.counter("sim_ev_node_join"), r.node_joins);
        }

        #[test]
        fn edge_death_mid_fetch_releases_waiters() {
            // Big objects stretch origin fetches, so departures land while
            // fills are in flight: waiters must come back as clean misses
            // (counted) and the stray payloads as orphan fills, not hangs.
            let mut cfg = churny(Scheme::Unicast(MethodKind::Ttl), 1.0);
            cfg.workload = Some(WorkloadPlan {
                request_rate_hz: 2.0,
                object_kb: 2_000.0,
                ..WorkloadPlan::default()
            });
            let reg = Registry::enabled();
            let r = run_with_obs(&cfg, &reg);
            let w = &r.workload;
            assert!(w.waiters_aborted > 0, "churn under load must abort in-flight waiters");
            let snap = reg.snapshot();
            assert_eq!(snap.counter("wl_waiters_aborted"), w.waiters_aborted);
            assert_eq!(snap.counter("wl_orphan_fills"), w.orphan_fills);
            // Every request still resolves into exactly one serve class.
            assert_eq!(w.requests, w.hits + w.delayed_hits + w.misses);
        }

        #[test]
        fn checkpoint_resume_is_bit_identical() {
            let mut cfg = churny(Scheme::hat(), 0.8);
            cfg.workload = Some(WorkloadPlan::default());
            let straight = run(&cfg);
            for at_s in [0, 150, 300, 600] {
                let art = checkpoint(&cfg, SimTime::from_secs(at_s));
                let resumed = resume(&cfg, &art).expect("artifact restores");
                assert_eq!(straight, resumed, "resume from t={at_s}s diverged");
            }
        }

        #[test]
        fn resumed_digest_chain_matches_straight_run() {
            let cfg = churny(Scheme::hat(), 0.8);
            let straight_reg = Registry::enabled();
            straight_reg.enable_digest(DigestConfig::default());
            let straight = run_with_obs(&cfg, &straight_reg);
            let ckpt_reg = Registry::enabled();
            ckpt_reg.enable_digest(DigestConfig::default());
            let art = checkpoint_with_obs(&cfg, &ckpt_reg, SimTime::from_secs(300));
            let resume_reg = Registry::enabled();
            resume_reg.enable_digest(DigestConfig::default());
            let resumed = resume_with_obs(&cfg, &resume_reg, &art).expect("artifact restores");
            assert_eq!(straight, resumed);
            let a = straight_reg.digest_snapshot().expect("digest armed");
            let b = resume_reg.digest_snapshot().expect("digest armed");
            assert_eq!(a.chain, b.chain, "audit chains must be bit-identical");
            assert_eq!(a.events, b.events);
        }

        #[test]
        fn resume_rejects_structural_mismatch() {
            let cfg = churny(Scheme::hat(), 0.5);
            let art = checkpoint(&cfg, SimTime::from_secs(100));
            let mut bigger = cfg.clone();
            bigger.servers += 8;
            assert!(resume(&bigger, &art).is_err(), "node-count drift must be rejected");
            let mut no_faults = cfg.clone();
            no_faults.faults = None;
            assert!(resume(&no_faults, &art).is_err(), "fault-plane drift must be rejected");
            assert!(resume(&cfg, "garbage").is_err(), "malformed artifacts must be rejected");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_scheme() -> impl Strategy<Value = Scheme> {
            prop_oneof![
                Just(Scheme::Unicast(MethodKind::Push)),
                Just(Scheme::Unicast(MethodKind::Invalidation)),
                Just(Scheme::Unicast(MethodKind::Ttl)),
                Just(Scheme::Unicast(MethodKind::SelfAdaptive)),
                Just(Scheme::Unicast(MethodKind::AdaptiveTtl)),
                Just(Scheme::Multicast { method: MethodKind::Push, arity: 2 }),
                Just(Scheme::Multicast { method: MethodKind::Invalidation, arity: 3 }),
                Just(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }),
                Just(Scheme::hat()),
                Just(Scheme::hybrid()),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 12 })]

            /// Whatever the scheme, update pattern, and seed: every update
            /// is delivered, observations happen, and lags are sane.
            #[test]
            fn prop_every_scheme_delivers(
                scheme in arb_scheme(),
                gaps in proptest::collection::vec(5u64..120, 1..12),
                seed in 0u64..1_000,
            ) {
                let mut t = SimTime::ZERO;
                let mut times = vec![t];
                for g in gaps {
                    t += SimDuration::from_secs(g);
                    times.push(t);
                }
                let updates = UpdateSequence::from_times(times).unwrap();
                let mut cfg = SimConfig::section4(scheme, updates);
                cfg.servers = 10;
                cfg.users_per_server = 1;
                cfg.seed = seed;
                let report = run(&cfg);
                prop_assert_eq!(report.unresolved_lags, 0, "{} lost updates", scheme);
                prop_assert!(report.total_observations > 0);
                prop_assert!(report.mean_server_lag_s() >= 0.0);
                prop_assert!(report.mean_user_lag_s() >= report.mean_server_lag_s() * 0.0);
                // Every lag is finite.
                for lag in report.server_mean_lag_s.iter().chain(&report.user_mean_lag_s) {
                    prop_assert!(lag.is_finite() && *lag >= 0.0);
                }
                // Update-message accounting is consistent with traffic.
                prop_assert_eq!(
                    report.server_update_messages,
                    report.traffic.count_of(cdnc_net::PacketKind::Update)
                );
                prop_assert!(report.provider_update_messages <= report.server_update_messages);
            }
        }
    }

    #[test]
    fn determinism() {
        let a = run(&small(Scheme::hat()));
        let b = run(&small(Scheme::hat()));
        assert_eq!(a, b);
        let mut cfg = small(Scheme::hat());
        cfg.seed = 99;
        let c = run(&cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn instrumentation_is_observation_only() {
        // Bit-identical report with obs on and off — the core contract that
        // lets every experiment run instrumented without changing results.
        let cfg = small(Scheme::hat());
        let plain = run(&cfg);
        let reg = Registry::enabled();
        reg.enable_events(Level::Debug, 4096);
        reg.enable_tracing();
        let observed = run_with_obs(&cfg, &reg);
        assert_eq!(plain, observed);
    }

    #[test]
    fn tracer_records_every_update_journey() {
        let cfg = small(Scheme::hat());
        let reg = Registry::enabled();
        reg.enable_tracing();
        let _ = run_with_obs(&cfg, &reg);
        let store = reg.tracer().store();
        // One trace per published update (snapshot 0 pre-exists everywhere).
        assert_eq!(store.traces.len(), cfg.updates.len() - 1);
        assert_eq!(store.scopes(), vec![Scheme::hat().label()]);
        for meta in &store.traces {
            assert!(
                !store.adopt_lags_s(meta.id).is_empty(),
                "update {} was never adopted",
                meta.update
            );
            let path = store.critical_path(meta.id).expect("critical path");
            assert!(path.total_us > 0);
            assert_eq!(path.steps.first().unwrap().kind, SpanKind::Publish);
            assert!(path.steps.last().unwrap().kind.is_terminal());
        }
        let summary = store.summary();
        assert!(summary.adoptions > 0 && summary.spans > summary.adoptions);
        assert!(store.horizon_us > 0, "scheduler must drive the trace horizon");
    }

    #[test]
    fn tracer_sees_mode_switches_and_user_views() {
        let cfg = small(Scheme::Unicast(MethodKind::SelfAdaptive));
        let reg = Registry::enabled();
        reg.enable_tracing();
        let _ = run_with_obs(&cfg, &reg);
        let store = reg.tracer().store();
        let snap = reg.snapshot();
        let switches = store.spans.iter().filter(|s| s.kind == SpanKind::ModeSwitch).count() as u64;
        assert_eq!(
            switches,
            snap.counter("sim_switch_to_invalidation") + snap.counter("sim_switch_to_ttl"),
            "every Algorithm 1 transition must leave a control span"
        );
        assert!(
            store.spans.iter().any(|s| s.kind == SpanKind::UserView),
            "user visits to traced content must record views"
        );
    }

    #[test]
    fn metrics_cover_the_simulation() {
        let cfg = small(Scheme::Unicast(MethodKind::SelfAdaptive));
        let reg = Registry::enabled();
        let report = run_with_obs(&cfg, &reg);
        let snap = reg.snapshot();
        // The scheduler's event counter agrees with the report.
        assert_eq!(snap.counter("sched_events_processed"), report.events);
        // Every dispatched event was classified into exactly one kind.
        let by_kind: u64 = [
            "sim_ev_publish",
            "sim_ev_poll_timer",
            "sim_ev_arrive",
            "sim_ev_user_visit",
            "sim_ev_fail",
            "sim_ev_recover",
            "sim_ev_fetch_timeout",
            "sim_ev_heartbeat",
            "sim_ev_retransmit",
            "sim_ev_probe",
            "sim_ev_request",
            "sim_ev_fill",
            "sim_ev_churn",
            "sim_ev_node_leave",
            "sim_ev_node_crash",
            "sim_ev_node_join",
        ]
        .iter()
        .map(|n| snap.counter(n))
        .sum();
        assert_eq!(by_kind, report.events);
        // Self-adaptive nodes hit both Algorithm 1 transitions on a
        // periodic-then-silent sequence with polling enabled.
        assert!(snap.counter("sim_switch_to_invalidation") > 0);
        // The update-message counter matches the report's accounting.
        assert_eq!(snap.counter("sim_msgs_update"), report.server_update_messages);
        // Publish→adopt latency landed in the self-adaptive histogram.
        let hist = snap.histogram("sim_adopt_lag_s_self_adaptive").expect("histogram exists");
        assert!(hist.count > 0);
        assert!(hist.min >= 0.0 && hist.max.is_finite());
    }

    #[test]
    fn series_sampling_covers_the_simulation() {
        let cfg = small(Scheme::Unicast(MethodKind::SelfAdaptive));
        let reg = Registry::enabled();
        reg.enable_series(1_000_000); // 1 s cadence in sim time
        let _ = run_with_obs(&cfg, &reg);
        let snap = reg.series_snapshot();
        for (name, kind) in [
            ("sched_queue_depth", cdnc_obs::SeriesKind::Gauge),
            ("sim_stale_replicas", cdnc_obs::SeriesKind::Gauge),
            ("sim_pending_updates_self_adaptive", cdnc_obs::SeriesKind::Gauge),
            ("sim_mode_invalidation_nodes", cdnc_obs::SeriesKind::Gauge),
            ("sim_msgs_poll", cdnc_obs::SeriesKind::Rate),
            ("sched_events_processed", cdnc_obs::SeriesKind::Rate),
        ] {
            let entry = snap.get(name, kind).unwrap_or_else(|| panic!("series {name} missing"));
            assert!(!entry.points.is_empty(), "series {name} recorded no samples");
            assert!(entry.points.windows(2).all(|w| w[0].t_us < w[1].t_us));
        }
        // Invalidation mode was actually occupied at some sample point
        // (self-adaptive nodes oscillate under a 30 s publish cadence).
        let modes = snap.get("sim_mode_invalidation_nodes", cdnc_obs::SeriesKind::Gauge).unwrap();
        assert!(modes.points.iter().any(|p| p.value > 0.0));
        // In-flight gauges return to zero: every sent message arrived.
        let msnap = reg.snapshot();
        for kind in ["update", "poll", "invalidation", "method_switch"] {
            let name = format!("sim_inflight_{kind}");
            let g = msnap.gauges.iter().find(|(n, _)| n == &name).unwrap().1;
            assert_eq!(g.value, 0, "{name} must drain by the end of the run");
        }
    }

    #[test]
    fn series_sampling_does_not_perturb_results() {
        let cfg = small(Scheme::Unicast(MethodKind::SelfAdaptive));
        let plain = run(&cfg);
        let reg = Registry::enabled();
        reg.enable_series(250_000);
        let sampled = run_with_obs(&cfg, &reg);
        assert_eq!(plain, sampled, "sampling must be observation-only");
    }

    #[test]
    fn failure_repair_metrics_fire() {
        let mut cfg = small(Scheme::Multicast { method: MethodKind::Push, arity: 2 });
        cfg.failures = Some(crate::config::FailureConfig::with_mean_gap_s(120.0));
        let reg = Registry::enabled();
        let _ = run_with_obs(&cfg, &reg);
        let snap = reg.snapshot();
        assert!(snap.counter("sim_ev_fail") > 0, "failure injection scheduled no failures");
        assert!(
            snap.counter("sim_orphan_reattach") + snap.counter("sim_tree_rejoin") > 0,
            "tree repair never ran"
        );
    }

    mod workload {
        use super::*;
        use crate::metrics::WorkloadStats;

        fn wcfg(scheme: Scheme) -> SimConfig {
            let mut cfg = small(scheme);
            cfg.workload = Some(WorkloadPlan::default());
            cfg
        }

        #[test]
        fn request_plane_serves_and_accounts() {
            let report = run(&wcfg(Scheme::Unicast(MethodKind::Push)));
            let w = &report.workload;
            assert!(w.requests > 0, "users must issue requests");
            assert_eq!(
                w.hits + w.delayed_hits + w.misses,
                w.requests,
                "every request is exactly one of hit/delayed/miss"
            );
            assert_eq!(w.misses, w.origin_fetches, "each miss pays one origin fetch");
            assert!(w.hits > 0, "Zipf head + LRU must produce hits");
            assert!(w.misses > 0, "cold objects and churn must produce misses");
            assert!(w.origin_kb > 0.0);
            assert!(w.churn_events > 0, "the churn process must run");
            assert!(!w.latency_s.is_empty());
            assert!(w.latency_s.iter().all(|&l| l >= 0.0));
            assert!(
                w.latency_s.len() as u64 <= w.requests,
                "at most one latency sample per request"
            );
            assert!(!w.staleness_served_s.is_empty(), "live-object serves must sample staleness");
            assert!(w.staleness_served_s.iter().all(|&s| s >= 0.0));
        }

        #[test]
        fn stats_stay_empty_without_a_plan() {
            let report = run(&small(Scheme::Unicast(MethodKind::Push)));
            assert_eq!(report.workload, WorkloadStats::default());
        }

        #[test]
        fn request_plane_is_deterministic_and_seed_sensitive() {
            let cfg = wcfg(Scheme::Unicast(MethodKind::Ttl));
            let a = run(&cfg);
            let b = run(&cfg);
            assert_eq!(a, b, "same config must replay bit-identically");
            let mut reseeded = cfg.clone();
            reseeded.seed ^= 0xdead_beef;
            assert_ne!(run(&reseeded).workload, a.workload);
        }

        #[test]
        fn request_plane_is_observation_only() {
            let cfg = wcfg(Scheme::Unicast(MethodKind::SelfAdaptive));
            let plain = run(&cfg);
            let reg = Registry::enabled();
            reg.enable_series(1_000_000);
            let observed = run_with_obs(&cfg, &reg);
            assert_eq!(plain, observed, "instrumentation must not perturb the workload");
        }

        #[test]
        fn hot_misses_coalesce_into_delayed_hits() {
            let mut cfg = SimConfig::section4(Scheme::Unicast(MethodKind::Push), updates(30, 120));
            cfg.servers = 4;
            cfg.users_per_server = 4;
            cfg.drain = SimDuration::from_secs(30);
            cfg.workload = Some(WorkloadPlan {
                request_rate_hz: 10.0,
                catalog_size: 64,
                cache_capacity: 8,
                ..WorkloadPlan::default()
            });
            let w = run(&cfg).workload;
            assert!(
                w.delayed_hits > 0,
                "concurrent misses for one object must coalesce (got {} misses, {} hits)",
                w.misses,
                w.hits
            );
            // Delayed hits wait for their fill: some latency samples are
            // positive, and hits keep theirs at zero.
            assert!(w.latency_s.iter().any(|&l| l > 0.0));
            assert!(w.latency_s.iter().filter(|&&l| l == 0.0).count() as u64 >= w.hits);
        }

        #[test]
        fn staleness_served_tracks_the_update_method() {
            let ttl = run(&wcfg(Scheme::Unicast(MethodKind::Ttl))).workload;
            let push = run(&wcfg(Scheme::Unicast(MethodKind::Push))).workload;
            assert!(
                ttl.mean_staleness_served_s() > push.mean_staleness_served_s(),
                "TTL serves stale unknowingly: {} must exceed Push's {}",
                ttl.mean_staleness_served_s(),
                push.mean_staleness_served_s()
            );
        }

        #[test]
        fn workload_metrics_cover_the_request_plane() {
            let cfg = wcfg(Scheme::Unicast(MethodKind::Push));
            let reg = Registry::enabled();
            let report = run_with_obs(&cfg, &reg);
            let snap = reg.snapshot();
            let w = &report.workload;
            assert_eq!(snap.counter("wl_requests"), w.requests);
            assert_eq!(snap.counter("wl_hits"), w.hits);
            assert_eq!(snap.counter("wl_delayed_hits"), w.delayed_hits);
            assert_eq!(snap.counter("wl_misses"), w.misses);
            assert_eq!(snap.counter("wl_evictions"), w.evictions);
            assert_eq!(snap.counter("wl_origin_fetches"), w.origin_fetches);
            assert_eq!(snap.counter("wl_churn_events"), w.churn_events);
            assert_eq!(snap.counter("sim_msgs_origin_fetch"), w.origin_fetches);
            assert!(snap.counter("sim_ev_request") > 0);
            assert!(snap.counter("sim_ev_fill") > 0);
            assert!(snap.counter("sim_ev_churn") > 0);
            let hist = snap.histogram("wl_latency_s").expect("latency histogram exists");
            assert_eq!(hist.count as usize, w.latency_s.len());
            // Event classification still covers every dispatch.
            let by_kind: u64 = [
                "sim_ev_publish",
                "sim_ev_poll_timer",
                "sim_ev_arrive",
                "sim_ev_user_visit",
                "sim_ev_fail",
                "sim_ev_recover",
                "sim_ev_fetch_timeout",
                "sim_ev_heartbeat",
                "sim_ev_retransmit",
                "sim_ev_probe",
                "sim_ev_request",
                "sim_ev_fill",
                "sim_ev_churn",
                "sim_ev_node_leave",
                "sim_ev_node_crash",
                "sim_ev_node_join",
            ]
            .iter()
            .map(|n| snap.counter(n))
            .sum();
            assert_eq!(by_kind, report.events);
        }
    }

    #[test]
    fn larger_packets_slow_push_adoption() {
        let mut small_pkt = small(Scheme::Unicast(MethodKind::Push));
        small_pkt.servers = 120;
        let mut big_pkt = small_pkt.clone();
        big_pkt.update_packet_kb = 500.0;
        let fast = run(&small_pkt);
        let slow = run(&big_pkt);
        assert!(
            slow.mean_server_lag_s() > fast.mean_server_lag_s() * 2.0,
            "500 KB push lag {} must far exceed 1 KB lag {}",
            slow.mean_server_lag_s(),
            fast.mean_server_lag_s()
        );
    }
}
