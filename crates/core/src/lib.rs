//! # cdnc-core
//!
//! The paper's primary contribution as a reusable library: a CDN
//! consistency-maintenance framework with pluggable **update methods**
//! (TTL, Push, Invalidation, and the §5.1 self-adaptive method) and
//! **update infrastructures** (unicast, proximity-aware d-ary multicast
//! trees, and the §5.2 hybrid supernode-cluster infrastructure), plus the
//! event-driven simulator used to evaluate every §4/§5 figure.
//!
//! The paper's six §5.3 comparison systems are one-liners:
//!
//! ```
//! use cdnc_core::{run, Scheme, SimConfig};
//! use cdnc_simcore::SimRng;
//! use cdnc_trace::UpdateSequence;
//!
//! let mut rng = SimRng::seed_from_u64(1);
//! let updates = UpdateSequence::live_game(&mut rng);
//! for scheme in Scheme::section5_lineup() {
//!     let mut cfg = SimConfig::section5(scheme, updates.clone());
//!     cfg.servers = 40; // scale down for the doc test
//!     let report = run(&cfg);
//!     assert!(report.total_observations > 0);
//! }
//! ```

pub mod config;
pub mod method;
pub mod metrics;
pub mod policy;
pub mod sim;
pub mod topology;
pub mod tree;

pub use config::{
    ChurnKind, ChurnPlan, ChurnTarget, FailureConfig, FaultPlan, ScheduledChurn, Scheme, SimConfig,
    WorkloadPlan,
};
pub use method::{AdaptiveMode, MethodKind};
pub use metrics::{SimReport, WorkloadStats};
pub use policy::{recommend, CostObjective, Recommendation, Requirement, WorkloadProfile};
pub use sim::{
    checkpoint, checkpoint_with_obs, resume, resume_until, resume_until_with_obs, resume_with_obs,
    run, run_with_obs,
};
pub use topology::Topology;
pub use tree::DistributionTree;
