//! Update methods (paper §1, §4).
//!
//! Three basic methods plus the paper's §5.1 self-adaptive combination:
//!
//! * **TTL** — replicas unconditionally re-fetch the content every TTL.
//!   Scalable (load is spread over the TTL window) and aggregates bursts of
//!   updates, but guarantees only weak consistency (staleness up to one TTL
//!   per tree layer) and wastes full-content transfers when nothing changed.
//! * **Push** — the provider transmits every update to every replica
//!   immediately. Strongest consistency, but the provider's uplink serialises
//!   N copies per update (congestion at scale) and uninterested replicas
//!   still receive content.
//! * **Invalidation** — the provider sends a light invalidation notice; a
//!   replica fetches the content only when a user actually asks for it.
//!   Saves traffic when visits are rarer than updates and aggregates updates
//!   between visits.
//! * **Self-adaptive** (paper Algorithm 1) — run TTL while updates keep
//!   arriving; after a poll that finds *no* update, switch to Invalidation;
//!   switch back to TTL after the first post-invalidation fetch. The
//!   staggered first visits after a silence also spread the re-polling load
//!   (avoiding the Incast problem §5.1 describes).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The update method a replica (or a whole deployment) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// Unconditional periodic re-fetch.
    Ttl,
    /// Immediate provider-driven update transmission.
    Push,
    /// Invalidate-then-fetch-on-demand.
    Invalidation,
    /// Algorithm 1: TTL while updates flow, Invalidation through silences.
    SelfAdaptive,
    /// The related-work baseline (\[6\], \[22\], \[24\] in the paper): conditional
    /// polling whose interval tracks a prediction of the update gap —
    /// halving towards fast content, backing off through silences. The
    /// paper's §5.1 critique: when updates are irregular the prediction is
    /// wrong in both directions, wasting polls after a burst ends and
    /// missing the restart after a silence.
    AdaptiveTtl,
}

impl MethodKind {
    /// All methods, with the paper's four first and the related-work
    /// baseline last.
    pub const ALL: [MethodKind; 5] = [
        MethodKind::Push,
        MethodKind::Invalidation,
        MethodKind::Ttl,
        MethodKind::SelfAdaptive,
        MethodKind::AdaptiveTtl,
    ];

    /// `true` for methods that run a periodic poll timer.
    pub fn polls(self) -> bool {
        matches!(self, MethodKind::Ttl | MethodKind::SelfAdaptive | MethodKind::AdaptiveTtl)
    }

    /// `true` for methods in which the provider must track replicas and
    /// actively send them something on update.
    pub fn provider_driven(self) -> bool {
        matches!(self, MethodKind::Push | MethodKind::Invalidation | MethodKind::SelfAdaptive)
    }

    /// `true` for methods whose correctness depends on one-shot
    /// provider-driven notifications (a lost push or invalidation is never
    /// re-requested by the replica). Under a [`crate::FaultPlan`] these
    /// messages get ack/retransmit protection; polling methods self-heal
    /// (a lost poll is simply retried next interval) and need none.
    pub fn needs_reliable_delivery(self) -> bool {
        self.provider_driven()
    }
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MethodKind::Ttl => "TTL",
            MethodKind::Push => "Push",
            MethodKind::Invalidation => "Invalidation",
            MethodKind::SelfAdaptive => "Self-adaptive",
            MethodKind::AdaptiveTtl => "Adaptive-TTL",
        };
        f.write_str(s)
    }
}

/// The mode a self-adaptive replica is currently in (Algorithm 1 state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdaptiveMode {
    /// Polling every TTL (Algorithm 1 `TTL_based_update`).
    #[default]
    Ttl,
    /// Waiting for an invalidation followed by a visit (Algorithm 1
    /// `Invalidation_based_update`).
    Invalidation,
}

impl fmt::Display for AdaptiveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveMode::Ttl => f.write_str("ttl"),
            AdaptiveMode::Invalidation => f.write_str("invalidation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(MethodKind::Ttl.polls());
        assert!(MethodKind::SelfAdaptive.polls());
        assert!(MethodKind::AdaptiveTtl.polls());
        assert!(!MethodKind::Push.polls());
        assert!(!MethodKind::Invalidation.polls());
        assert!(!MethodKind::AdaptiveTtl.provider_driven());

        assert!(MethodKind::Push.provider_driven());
        assert!(MethodKind::Invalidation.provider_driven());
        assert!(MethodKind::SelfAdaptive.provider_driven());
        assert!(!MethodKind::Ttl.provider_driven());

        assert!(MethodKind::Push.needs_reliable_delivery());
        assert!(MethodKind::Invalidation.needs_reliable_delivery());
        assert!(!MethodKind::Ttl.needs_reliable_delivery());
        assert!(!MethodKind::AdaptiveTtl.needs_reliable_delivery());
    }

    #[test]
    fn display_names() {
        assert_eq!(MethodKind::Ttl.to_string(), "TTL");
        assert_eq!(MethodKind::SelfAdaptive.to_string(), "Self-adaptive");
        assert_eq!(AdaptiveMode::default(), AdaptiveMode::Ttl);
    }
}
