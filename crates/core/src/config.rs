//! Simulation configuration: schemes (method × infrastructure) and the
//! experimental parameters of paper §4 and §5.

use crate::method::MethodKind;
use cdnc_net::{AbsenceConfig, FaultConfig, NetworkConfig};
use cdnc_simcore::{SimDuration, SimTime};
use cdnc_trace::UpdateSequence;
use std::fmt;

/// A deployment scheme: an update method married to an update
/// infrastructure.
///
/// The six §5.3 comparison systems map onto this as:
///
/// | Paper name   | Scheme                                                    |
/// |--------------|-----------------------------------------------------------|
/// | Push         | `Unicast(Push)`                                           |
/// | Invalidation | `Unicast(Invalidation)`                                   |
/// | TTL          | `Unicast(Ttl)`                                            |
/// | Self         | `Unicast(SelfAdaptive)`                                   |
/// | Hybrid       | `Hybrid { member_method: Ttl, .. }`                       |
/// | HAT          | `Hybrid { member_method: SelfAdaptive, .. }`              |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The provider talks to every server directly.
    Unicast(MethodKind),
    /// Servers form a proximity-aware d-ary tree rooted at the provider.
    Multicast {
        /// Update method run on every tree edge.
        method: MethodKind,
        /// Maximum children per tree node (paper §4 uses 2).
        arity: usize,
    },
    /// HAT's infrastructure (§5.2): servers are clustered by Hilbert number;
    /// each cluster elects a supernode; supernodes receive updates by Push
    /// over a proximity-aware tree; cluster members run `member_method`
    /// against their supernode.
    Hybrid {
        /// Number of proximity clusters (paper §5.3 uses 20).
        clusters: usize,
        /// Supernode tree arity (paper §5.3 uses 4).
        tree_arity: usize,
        /// Method run by intra-cluster members: `Ttl` gives the paper's
        /// "Hybrid" baseline, `SelfAdaptive` gives HAT.
        member_method: MethodKind,
    },
}

impl Scheme {
    /// The paper's §5 "Hybrid" system (supernode tree + TTL members).
    pub fn hybrid() -> Self {
        Scheme::Hybrid { clusters: 20, tree_arity: 4, member_method: MethodKind::Ttl }
    }

    /// The paper's proposed HAT (supernode tree + self-adaptive members).
    pub fn hat() -> Self {
        Scheme::Hybrid { clusters: 20, tree_arity: 4, member_method: MethodKind::SelfAdaptive }
    }

    /// The six §5.3 comparison systems in the paper's order:
    /// Push, Invalidation, TTL, Self, Hybrid, HAT.
    pub fn section5_lineup() -> [Scheme; 6] {
        [
            Scheme::Unicast(MethodKind::Push),
            Scheme::Unicast(MethodKind::Invalidation),
            Scheme::Unicast(MethodKind::Ttl),
            Scheme::Unicast(MethodKind::SelfAdaptive),
            Scheme::hybrid(),
            Scheme::hat(),
        ]
    }

    /// The short label the paper uses for this scheme in §5 figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::Unicast(MethodKind::Push) => "Push",
            Scheme::Unicast(MethodKind::Invalidation) => "Invalidation",
            Scheme::Unicast(MethodKind::Ttl) => "TTL",
            Scheme::Unicast(MethodKind::SelfAdaptive) => "Self",
            Scheme::Unicast(MethodKind::AdaptiveTtl) => "AdaptiveTTL",
            Scheme::Multicast { method: MethodKind::Push, .. } => "Push/Multicast",
            Scheme::Multicast { method: MethodKind::Invalidation, .. } => "Invalidation/Multicast",
            Scheme::Multicast { method: MethodKind::Ttl, .. } => "TTL/Multicast",
            Scheme::Multicast { method: MethodKind::SelfAdaptive, .. } => "Self/Multicast",
            Scheme::Multicast { method: MethodKind::AdaptiveTtl, .. } => "AdaptiveTTL/Multicast",
            Scheme::Hybrid { member_method: MethodKind::SelfAdaptive, .. } => "HAT",
            Scheme::Hybrid { .. } => "Hybrid",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Server-failure injection for the evaluation simulator.
///
/// The paper motivates the infrastructure comparison with exactly this
/// threat: "node failures break the structure connectivity and lead to
/// unsuccessful update propagation ... the structure maintenance will incur
/// high overhead" (§1). With failures enabled, servers go absent per the
/// schedule: messages to/from them are lost, multicast trees repair
/// themselves (orphans re-attach, charging structure-maintenance messages),
/// and recovered nodes re-join and re-synchronise with a conditional poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    /// The failure/overload process (same model as the measured §3.4.5
    /// absences).
    pub absence: AbsenceConfig,
    /// How long a replica waits for an on-demand fetch response before
    /// giving up (the upstream may have died mid-request).
    pub fetch_timeout: SimDuration,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            absence: AbsenceConfig::default(),
            fetch_timeout: SimDuration::from_secs(15),
        }
    }
}

impl FailureConfig {
    /// A failure process with the given mean gap between one server's
    /// failures, seconds.
    pub fn with_mean_gap_s(mean_gap_s: f64) -> Self {
        FailureConfig {
            absence: AbsenceConfig { mean_gap_s, ..AbsenceConfig::default() },
            ..FailureConfig::default()
        }
    }
}

/// The chaos plan: a deterministic network fault description plus the
/// protocol knobs that make update delivery survive it.
///
/// Attaching a plan (`SimConfig::faults = Some(..)`) switches the
/// simulator into its survivable-delivery mode even when the fault config
/// itself is quiet:
///
/// * Push and Invalidation control messages are **tracked** — the receiver
///   acks them, the sender retransmits on timeout with capped exponential
///   backoff plus deterministic jitter, and gives up (counting an
///   abandoned delivery) after `max_retransmits` attempts;
/// * servers whose upstream is another server run a **probe-based failure
///   detector** (a generalisation of the invalidation-mode heartbeat to
///   tree parents): a conditional poll every `probe_interval`, with an
///   unanswered probe older than `probe_timeout` marking the upstream
///   suspect;
/// * with `hat_degradation` on, a HAT cluster whose supernode is suspect
///   **fails over**: the nearest present member is promoted into the
///   supernode's tree slot and re-registered with its tree parent, the
///   remaining members rewire to it, and invalidation-mode members fall
///   back to TTL polling until Algorithm 1 switches them back;
/// * all faults are fenced `settle` before the horizon, after which a
///   **convergence invariant** is checked: every present replica must
///   equal the provider's head version (violations are counted, and
///   dumped to the flight recorder when tracing).
///
/// With `faults: None` (the default) none of this machinery exists and
/// the simulation is bit-identical to the pre-fault-plane behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// What the network injects (loss, duplication, reordering, latency
    /// spikes, partitions, brownouts).
    pub faults: FaultConfig,
    /// Initial retransmit timeout of a tracked message.
    pub rto: SimDuration,
    /// Cap of the exponential backoff.
    pub rto_max: SimDuration,
    /// Retransmissions after which a delivery is abandoned (the original
    /// send is not counted).
    pub max_retransmits: u32,
    /// Deterministic jitter applied to each backoff: the wait is scaled by
    /// a factor drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Probe period of the failure detector.
    pub probe_interval: SimDuration,
    /// An unanswered probe older than this marks the upstream suspect.
    pub probe_timeout: SimDuration,
    /// Enables HAT graceful degradation (supernode failover + member TTL
    /// fallback). Only meaningful for `Scheme::Hybrid` runs.
    pub hat_degradation: bool,
    /// Quiet tail before the horizon: no fault (probabilistic or
    /// scheduled) fires within `settle` of the end of the run.
    pub settle: SimDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            faults: FaultConfig::none(),
            rto: SimDuration::from_secs(2),
            rto_max: SimDuration::from_secs(30),
            max_retransmits: 10,
            jitter: 0.3,
            probe_interval: SimDuration::from_secs(15),
            probe_timeout: SimDuration::from_secs(40),
            hat_degradation: true,
            settle: SimDuration::from_secs(120),
        }
    }
}

impl FaultPlan {
    /// A plan whose fault probabilities scale with `intensity` in
    /// `[0, 1]`; protocol knobs stay at their defaults. Intensity 0 runs
    /// the full protocol (acks, probes, convergence check) over a clean
    /// network.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]`.
    pub fn at_intensity(intensity: f64) -> Self {
        FaultPlan { faults: FaultConfig::at_intensity(intensity), ..FaultPlan::default() }
    }
}

/// The request-plane plan: the workload the edges serve while the
/// consistency plane propagates updates.
///
/// Attaching a plan (`SimConfig::workload = Some(..)`) arms the request
/// plane inside the simulator:
///
/// * a **Zipf catalog** of `catalog_size` objects with publish/perish churn
///   at `churn_rate_hz` (hot ranks turn over fastest; ranks re-normalise
///   deterministically because the popularity ladder never moves);
/// * **per-user Poisson request arrivals** at `request_rate_hz`, routed to
///   the user's current edge server;
/// * **per-edge LRU caches** of `cache_capacity` objects with delayed-hit
///   coalescing — concurrent misses for one object share a single origin
///   fetch of `object_kb` KB charged through the network substrate — and,
///   with `mad_eviction`, a MAD-aware eviction variant;
/// * a **serve path integrated with the consistency plane**: the hottest
///   `live_fraction` of the catalog is live content whose cached copies
///   carry the provider snapshot they were filled at; an edge refetches a
///   copy it *believes* stale (its node adopted a newer snapshot, or holds
///   an invalidation), and serves it otherwise — so TTL edges serve stale
///   bytes they don't know about, which is exactly what the
///   *staleness-served* metric measures.
///
/// With `workload: None` (the default) none of this machinery exists and
/// the simulation is bit-identical to the pre-workload behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPlan {
    /// Number of objects (popularity ranks) in the catalog.
    pub catalog_size: usize,
    /// Zipf popularity exponent (0 = uniform; CDN demand ≈ 0.6–1.2).
    pub zipf_s: f64,
    /// Fraction of the catalog (hottest ranks) that is live content
    /// versioned by the provider's update stream, in `[0, 1]`.
    pub live_fraction: f64,
    /// Per-user Poisson request rate, requests per second.
    pub request_rate_hz: f64,
    /// Catalog publish/perish churn rate, events per second (global).
    pub churn_rate_hz: f64,
    /// Per-edge cache capacity, objects.
    pub cache_capacity: usize,
    /// Object size, KB — the payload of every origin fetch.
    pub object_kb: f64,
    /// Selects the MAD-aware (delay-conscious) eviction variant.
    pub mad_eviction: bool,
}

impl Default for WorkloadPlan {
    fn default() -> Self {
        WorkloadPlan {
            catalog_size: 512,
            zipf_s: 0.9,
            live_fraction: 0.25,
            request_rate_hz: 0.2,
            churn_rate_hz: 0.5,
            cache_capacity: 64,
            object_kb: 20.0,
            mad_eviction: false,
        }
    }
}

impl WorkloadPlan {
    /// A plan swept over the `ext_workload` axes: catalog size and Zipf
    /// skew, everything else at defaults.
    pub fn with_catalog(catalog_size: usize, zipf_s: f64) -> Self {
        WorkloadPlan { catalog_size, zipf_s, ..WorkloadPlan::default() }
    }

    /// Number of live (provider-versioned) catalog ranks.
    pub fn live_slots(&self) -> usize {
        ((self.catalog_size as f64 * self.live_fraction).round() as usize).min(self.catalog_size)
    }
}

/// How a churn event takes a node down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Graceful departure: the node answers its waiting children, drains
    /// reliable-delivery state, and leaves the structure cleanly. Its cache
    /// survives the downtime (a planned maintenance window).
    Leave,
    /// Crash: the node vanishes mid-protocol and restarts cold — LRU cache
    /// empty, consistency state reset to the initial version, invalidation
    /// registrations lost. It reconverges through the survival protocol.
    Crash,
}

/// What a scheduled churn event targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnTarget {
    /// The `k`-th content server (0-based, wrapped into range).
    Server(usize),
    /// The `k`-th currently-elected supernode (wrapped into the supernode
    /// list; falls back to `Server(k)` for schemes without supernodes).
    Supernode(usize),
}

/// One scripted lifecycle event: take `target` down at `at` via `kind`,
/// bring it back `downtime` later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledChurn {
    /// When the node goes down (offset from t = 0).
    pub at: SimDuration,
    /// Which node.
    pub target: ChurnTarget,
    /// Graceful leave or crash.
    pub kind: ChurnKind,
    /// How long it stays gone before rejoining.
    pub downtime: SimDuration,
}

/// The node lifecycle plan: deterministic membership churn — joins,
/// graceful departures, and crash-restarts — layered over the running
/// protocol.
///
/// Attaching a plan (`SimConfig::churn = Some(..)`) arms the lifecycle
/// plane:
///
/// * each server independently runs `cycles_per_server × churn_fraction`
///   expected **down/up cycles**, placed deterministically from the churn
///   RNG stream across `[0, horizon − settle)`;
/// * a cycle is **graceful** with probability `graceful_fraction` (the node
///   hands its waiting children their answers, drains its retransmit state,
///   and keeps its cache warm) and a **crash** otherwise (state loss: cold
///   cache, initial content version, dropped invalidation registrations);
/// * a departed supernode triggers the HAT failover immediately (graceful
///   leave) or via the probe detector (crash), exactly like a fault-plane
///   failure;
/// * rejoining nodes re-admit through the structure (cluster re-attach or
///   tree join), re-register, and re-synchronise with a conditional poll;
/// * `scheduled` events fire verbatim on top of the stochastic cycles —
///   the anomaly-replay hook (e.g. "kill supernode 0 at t = 300 s, flash
///   restart 5 s later");
/// * like the fault plane, everything is fenced `settle` before the
///   horizon so the convergence invariant has a quiet tail to settle in.
///
/// With `churn: None` (the default) none of this machinery exists and the
/// simulation is bit-identical to the pre-lifecycle behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPlan {
    /// Expected down/up cycles per participating server over the run.
    pub cycles_per_server: f64,
    /// Fraction of servers that churn at all, in `[0, 1]`.
    pub churn_fraction: f64,
    /// Mean downtime of a cycle, seconds (exponentially distributed,
    /// clamped so the rejoin stays inside the fence).
    pub mean_downtime_s: f64,
    /// Probability a cycle is a graceful leave rather than a crash, in
    /// `[0, 1]`.
    pub graceful_fraction: f64,
    /// Scripted events fired verbatim on top of the stochastic cycles.
    pub scheduled: Vec<ScheduledChurn>,
    /// Quiet tail before the horizon: no churn event (down or rejoin)
    /// fires within `settle` of the end of the run.
    pub settle: SimDuration,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan {
            cycles_per_server: 1.0,
            churn_fraction: 0.2,
            mean_downtime_s: 60.0,
            graceful_fraction: 0.5,
            scheduled: Vec::new(),
            settle: SimDuration::from_secs(240),
        }
    }
}

impl ChurnPlan {
    /// A plan whose churn volume scales with `intensity` in `[0, 1]`:
    /// `3 × intensity` expected cycles over `intensity` of the fleet, half
    /// graceful. Intensity 0 arms the lifecycle machinery (and its
    /// accounting) with zero stochastic churn.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]`.
    pub fn at_intensity(intensity: f64) -> Self {
        assert!((0.0..=1.0).contains(&intensity), "churn intensity {intensity} outside [0, 1]");
        ChurnPlan {
            cycles_per_server: 3.0 * intensity,
            churn_fraction: intensity,
            ..ChurnPlan::default()
        }
    }
}

/// Full configuration of one CDN-consistency simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of content servers (paper §4: 170; §5: 850).
    pub servers: usize,
    /// Simulated end-users per server (paper: 5).
    pub users_per_server: usize,
    /// Deployment scheme under test.
    pub scheme: Scheme,
    /// Content-server TTL for polling methods (paper §4 behaviour implies
    /// ~10 s; §5 sets 60 s).
    pub server_ttl: SimDuration,
    /// End-user poll interval ("end-user TTL", paper: 10 s).
    pub user_ttl: SimDuration,
    /// Size of a content-update packet, KB (paper §4: 1 KB; Fig. 19 sweeps
    /// to 500 KB).
    pub update_packet_kb: f64,
    /// The update sequence to replay (relative times; shifted by
    /// `update_start`).
    pub updates: UpdateSequence,
    /// When the provider starts updating (paper: t = 60 s).
    pub update_start: SimDuration,
    /// End-users start at a uniformly random time in `[0, user_start_window]`
    /// (paper: [0, 50] s).
    pub user_start_window: SimDuration,
    /// Extra simulated time after the last update, letting in-flight
    /// adoptions finish.
    pub drain: SimDuration,
    /// When `true`, every successive visit of a user goes to a different
    /// random server (the paper's Fig. 24 scenario); when `false`, users
    /// stick to their home server.
    pub users_roam: bool,
    /// Optional server-failure injection (extension of the paper's §4
    /// evaluation; `None` reproduces the paper's failure-free runs).
    pub failures: Option<FailureConfig>,
    /// Optional chaos plan: network fault injection plus the reliable
    /// delivery / failure-detector / HAT-degradation protocol machinery.
    /// `None` (the default) leaves every send and handler exactly as
    /// before — zero overhead when off.
    pub faults: Option<FaultPlan>,
    /// Optional request-plane workload (Zipf catalog, per-edge LRU caches
    /// with delayed hits, staleness-served accounting). `None` (the
    /// default) is bit-identical to the pre-workload simulator.
    pub workload: Option<WorkloadPlan>,
    /// Optional node lifecycle plan: joins, graceful departures, and
    /// crash-restarts with state recovery. `None` (the default) is
    /// bit-identical to the pre-lifecycle simulator.
    pub churn: Option<ChurnPlan>,
    /// Heterogeneity of end-user visit frequencies (§6's "varying visit
    /// frequencies" factor): each user's visit interval is `user_ttl`
    /// scaled by a log-uniform factor in `[1/(1+s), 1+s]`. 0 reproduces the
    /// paper's homogeneous users.
    pub visit_spread: f64,
    /// Network model parameters.
    pub network: NetworkConfig,
    /// Master seed.
    pub seed: u64,
}

impl SimConfig {
    /// Paper §4 defaults: 170 servers mainly in US/EU/Asia, provider in
    /// Atlanta, 5 users per server, 1 KB packets, updates from t = 60 s,
    /// users from U[0, 50] s, server TTL 10 s.
    pub fn section4(scheme: Scheme, updates: UpdateSequence) -> Self {
        SimConfig {
            servers: 170,
            users_per_server: 5,
            scheme,
            server_ttl: SimDuration::from_secs(10),
            user_ttl: SimDuration::from_secs(10),
            update_packet_kb: 1.0,
            updates,
            update_start: SimDuration::from_secs(60),
            user_start_window: SimDuration::from_secs(50),
            drain: SimDuration::from_secs(240),
            users_roam: false,
            failures: None,
            faults: None,
            workload: None,
            churn: None,
            visit_spread: 0.0,
            network: NetworkConfig::default(),
            seed: 0,
        }
    }

    /// Paper §5.3 defaults: 850 servers (each of 170 sites simulates 5),
    /// 5 observers per server, server TTL 60 s, observer TTL 10 s.
    pub fn section5(scheme: Scheme, updates: UpdateSequence) -> Self {
        SimConfig {
            servers: 850,
            server_ttl: SimDuration::from_secs(60),
            drain: SimDuration::from_secs(360),
            ..SimConfig::section4(scheme, updates)
        }
    }

    /// Total end-user count.
    pub fn users(&self) -> usize {
        self.servers * self.users_per_server
    }

    /// The simulation horizon: update start + last update + drain.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO
            + self.update_start
            + self.updates.last_update().since(SimTime::ZERO)
            + self.drain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section5_lineup_labels() {
        let labels: Vec<&str> = Scheme::section5_lineup().iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["Push", "Invalidation", "TTL", "Self", "Hybrid", "HAT"]);
    }

    #[test]
    fn multicast_labels() {
        assert_eq!(
            Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }.label(),
            "TTL/Multicast"
        );
        assert_eq!(Scheme::hat().to_string(), "HAT");
    }

    #[test]
    fn horizon_accounts_for_start_and_drain() {
        let updates = UpdateSequence::periodic(SimDuration::from_secs(10), SimTime::from_secs(100));
        let cfg = SimConfig::section4(Scheme::Unicast(MethodKind::Push), updates);
        assert_eq!(
            cfg.horizon(),
            SimTime::from_secs(60 + 100 + 240),
            "horizon = start + last update + drain"
        );
        assert_eq!(cfg.users(), 850);
    }

    #[test]
    fn churn_plan_scales_with_intensity() {
        let quiet = ChurnPlan::at_intensity(0.0);
        assert_eq!(quiet.cycles_per_server, 0.0);
        assert_eq!(quiet.churn_fraction, 0.0);
        let heavy = ChurnPlan::at_intensity(1.0);
        assert_eq!(heavy.cycles_per_server, 3.0);
        assert_eq!(heavy.churn_fraction, 1.0);
        assert_eq!(heavy.graceful_fraction, 0.5);
        assert!(heavy.scheduled.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn churn_intensity_out_of_range_rejected() {
        let _ = ChurnPlan::at_intensity(1.5);
    }

    #[test]
    fn section5_scales_up() {
        let updates = UpdateSequence::silent();
        let cfg = SimConfig::section5(Scheme::hat(), updates);
        assert_eq!(cfg.servers, 850);
        assert_eq!(cfg.users(), 4_250);
        assert_eq!(cfg.server_ttl, SimDuration::from_secs(60));
    }
}
