//! Deterministic fault plane: schedule-driven network pathology injection.
//!
//! Real CDN paths degrade along more axes than whole-server absence: packets
//! are lost, duplicated, or reordered; latency spikes; ISP pairs partition;
//! a provider's uplink browns out under load. This module models all of
//! those as a [`FaultPlane`] consulted once per send. Every probabilistic
//! draw comes from a **per-source-node** [`SimRng`] stream derived with
//! [`derive_stream`], so one node's fault history never perturbs another's
//! and runs are bit-identical for any `--jobs` worker count.
//!
//! Faults are behavioural (they change deliveries); the *counters* describing
//! them are observation-only and live on [`crate::Network`].
//!
//! The plane deactivates itself after [`FaultPlane::active_until`] — the
//! simulator sets this to `horizon - settle` so a convergence invariant can
//! be checked once the network has quiesced.

use crate::node::NodeId;
use cdnc_geo::IspId;
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::{derive_stream, SimDuration, SimRng, SimTime};

/// A window during which two specific nodes cannot exchange packets
/// (either direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPartition {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A window during which two ISPs cannot exchange packets (either
/// direction) — the coarse-grained peering dispute / BGP incident case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspPartition {
    /// One ISP.
    pub a: IspId,
    /// The other ISP.
    pub b: IspId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// A brownout window: packets *sent by* `node` squeeze through a degraded
/// uplink, adding `extra_s_per_kb × size_kb` seconds of delivery delay.
/// Aimed at the provider (`NodeId(0)`), whose uplink is the fan-out
/// bottleneck, but applicable to any sender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// The degraded sender.
    pub node: NodeId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Extra seconds of delay per KB of packet size.
    pub extra_s_per_kb: f64,
}

/// Static description of what the fault plane injects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// Per-packet drop probability.
    pub loss_prob: f64,
    /// Per-packet duplication probability (the copy arrives later).
    pub dup_prob: f64,
    /// Per-packet reordering probability: the packet is held back by a
    /// uniform extra delay in `(0, reorder_spread]`, letting later sends
    /// overtake it.
    pub reorder_prob: f64,
    /// Maximum hold-back applied to a reordered packet.
    pub reorder_spread: SimDuration,
    /// Per-packet latency-spike probability (congestion transient).
    pub spike_prob: f64,
    /// Maximum magnitude of a latency spike (uniform in `(0, spike]`).
    pub spike: SimDuration,
    /// Scheduled per-link partitions.
    pub link_partitions: Vec<LinkPartition>,
    /// Scheduled ISP↔ISP partitions.
    pub isp_partitions: Vec<IspPartition>,
    /// Scheduled sender brownouts.
    pub brownouts: Vec<Brownout>,
}

impl FaultConfig {
    /// A config that injects nothing (useful as a protocol-only baseline:
    /// acks and retransmit timers run, but no packet is ever harmed).
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// A one-knob config: probabilities scale linearly with `intensity` in
    /// `[0, 1]`. At 1.0: 25 % loss, 10 % duplication, 15 % reordering
    /// (≤ 3 s hold-back), 10 % latency spikes (≤ 2 s). Scheduled windows
    /// are left empty — push them separately.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not in `[0, 1]`.
    pub fn at_intensity(intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity) && intensity.is_finite(),
            "fault intensity must be in [0, 1], got {intensity}"
        );
        FaultConfig {
            loss_prob: 0.25 * intensity,
            dup_prob: 0.10 * intensity,
            reorder_prob: 0.15 * intensity,
            reorder_spread: SimDuration::from_secs(3),
            spike_prob: 0.10 * intensity,
            spike: SimDuration::from_secs(2),
            link_partitions: Vec::new(),
            isp_partitions: Vec::new(),
            brownouts: Vec::new(),
        }
    }

    /// `true` when nothing is ever injected: all probabilities zero and no
    /// scheduled windows. A quiet plane makes zero rng draws.
    pub fn is_quiet(&self) -> bool {
        self.loss_prob == 0.0
            && self.dup_prob == 0.0
            && self.reorder_prob == 0.0
            && self.spike_prob == 0.0
            && self.link_partitions.is_empty()
            && self.isp_partitions.is_empty()
            && self.brownouts.is_empty()
    }

    /// End of the last scheduled window, or [`SimTime::ZERO`] if none.
    pub fn last_window_end(&self) -> SimTime {
        let mut last = SimTime::ZERO;
        for w in &self.link_partitions {
            last = last.max(w.until);
        }
        for w in &self.isp_partitions {
            last = last.max(w.until);
        }
        for w in &self.brownouts {
            last = last.max(w.until);
        }
        last
    }

    /// Checks all probabilities are valid.
    ///
    /// # Panics
    ///
    /// Panics on a probability outside `[0, 1]` or a non-finite/negative
    /// brownout slope.
    pub fn validate(&self) {
        for (name, p) in [
            ("loss_prob", self.loss_prob),
            ("dup_prob", self.dup_prob),
            ("reorder_prob", self.reorder_prob),
            ("spike_prob", self.spike_prob),
        ] {
            assert!((0.0..=1.0).contains(&p) && p.is_finite(), "{name} must be in [0, 1], got {p}");
        }
        for b in &self.brownouts {
            assert!(
                b.extra_s_per_kb.is_finite() && b.extra_s_per_kb >= 0.0,
                "brownout slope must be finite and non-negative, got {}",
                b.extra_s_per_kb
            );
        }
    }
}

/// The fate the fault plane assigns one send.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Deliver; `extra` delays the arrival (reordering hold-back, latency
    /// spike, brownout — accumulated) and `duplicate_extra`, when set, asks
    /// for a second copy arriving that much after the first.
    Deliver { extra: SimDuration, duplicate_extra: Option<SimDuration> },
    /// Drop the packet. `partitioned` distinguishes a scheduled partition
    /// (deterministic) from random loss.
    Drop { partitioned: bool },
}

impl FaultDecision {
    /// An untouched delivery.
    pub const CLEAN: FaultDecision =
        FaultDecision::Deliver { extra: SimDuration::ZERO, duplicate_extra: None };
}

/// The live fault plane: a [`FaultConfig`] plus one [`SimRng`] stream per
/// source node. Consulted once per send by
/// [`crate::Network::send_faulted`].
#[derive(Debug)]
pub struct FaultPlane {
    config: FaultConfig,
    /// Faults (probabilistic *and* scheduled) only fire strictly before
    /// this instant; afterwards the plane is clean so the run can settle.
    active_until: SimTime,
    streams: Vec<SimRng>,
}

impl FaultPlane {
    /// Builds a plane for `nodes` nodes. Stream `i` is
    /// `derive_stream(seed, i)` — stable per node regardless of how other
    /// nodes' packets interleave.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`FaultConfig::validate`].
    pub fn new(config: FaultConfig, seed: u64, nodes: usize) -> Self {
        config.validate();
        let streams = (0..nodes as u64).map(|i| derive_stream(seed, i)).collect();
        FaultPlane { config, active_until: SimTime::MAX, streams }
    }

    /// The configured fault description.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// When the plane goes quiet (see [`FaultPlane::set_active_until`]).
    pub fn active_until(&self) -> SimTime {
        self.active_until
    }

    /// Silences every fault at and after `t` — the settle fence the
    /// convergence checker relies on.
    pub fn set_active_until(&mut self, t: SimTime) {
        self.active_until = t;
    }

    /// Serializes the plane's dynamic state — the settle fence and the
    /// per-node rng streams — into a checkpoint artifact. The
    /// [`FaultConfig`] is a construction parameter the caller rebuilds from
    /// simulation config, so it is not stored.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.time("fault_active_until", self.active_until);
        w.usize("fault_streams", self.streams.len());
        for rng in &self.streams {
            w.rng("fault_rng", rng);
        }
    }

    /// Restores dynamic state written by [`FaultPlane::ckpt_write`] into
    /// this freshly constructed plane.
    ///
    /// Errors if the artifact's stream count disagrees with this plane's
    /// node count (the checkpoint was taken from a different topology).
    pub fn ckpt_read(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.active_until = r.time("fault_active_until")?;
        let n = r.usize("fault_streams")?;
        if n != self.streams.len() {
            return Err(CkptError(format!(
                "fault plane has {} node streams, checkpoint carries {n}",
                self.streams.len()
            )));
        }
        for stream in &mut self.streams {
            *stream = r.rng("fault_rng")?;
        }
        Ok(())
    }

    /// `true` when `src`↔`dst` is inside a scheduled partition window at
    /// `now` (link- or ISP-level, either direction).
    pub fn is_partitioned(
        &self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        src_isp: IspId,
        dst_isp: IspId,
    ) -> bool {
        if now >= self.active_until {
            return false;
        }
        let in_window = |from: SimTime, until: SimTime| now >= from && now < until;
        self.config.link_partitions.iter().any(|w| {
            ((w.a == src && w.b == dst) || (w.a == dst && w.b == src)) && in_window(w.from, w.until)
        }) || self.config.isp_partitions.iter().any(|w| {
            ((w.a == src_isp && w.b == dst_isp) || (w.a == dst_isp && w.b == src_isp))
                && in_window(w.from, w.until)
        })
    }

    /// Decides the fate of one packet of `size_kb` from `src` to `dst` at
    /// `now`. Scheduled windows are checked first (no rng); probabilistic
    /// faults then draw from `src`'s stream. A quiet or expired plane
    /// returns [`FaultDecision::CLEAN`] without drawing.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range for the plane.
    pub fn decide(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        src_isp: IspId,
        dst_isp: IspId,
        size_kb: f64,
    ) -> FaultDecision {
        if now >= self.active_until || self.config.is_quiet() {
            return FaultDecision::CLEAN;
        }
        if self.is_partitioned(now, src, dst, src_isp, dst_isp) {
            return FaultDecision::Drop { partitioned: true };
        }
        let mut extra = SimDuration::ZERO;
        for b in &self.config.brownouts {
            if b.node == src && now >= b.from && now < b.until {
                extra += SimDuration::from_secs_f64(b.extra_s_per_kb * size_kb);
            }
        }
        let rng = &mut self.streams[src.index()];
        if self.config.loss_prob > 0.0 && rng.chance(self.config.loss_prob) {
            return FaultDecision::Drop { partitioned: false };
        }
        if self.config.reorder_prob > 0.0 && rng.chance(self.config.reorder_prob) {
            let spread = self.config.reorder_spread.as_secs_f64();
            extra += SimDuration::from_secs_f64(rng.uniform_range(0.0, spread));
        }
        if self.config.spike_prob > 0.0 && rng.chance(self.config.spike_prob) {
            let spike = self.config.spike.as_secs_f64();
            extra += SimDuration::from_secs_f64(rng.uniform_range(0.0, spike));
        }
        let duplicate_extra = if self.config.dup_prob > 0.0 && rng.chance(self.config.dup_prob) {
            // The copy trails the original by up to the reorder spread (or
            // a second, if reordering is off).
            let spread = self.config.reorder_spread.as_secs_f64().max(1.0);
            Some(SimDuration::from_secs_f64(rng.uniform_range(0.0, spread)))
        } else {
            None
        };
        FaultDecision::Deliver { extra, duplicate_extra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decide_n(plane: &mut FaultPlane, n: usize) -> Vec<FaultDecision> {
        (0..n)
            .map(|i| {
                plane.decide(
                    SimTime::from_secs(i as u64),
                    NodeId(0),
                    NodeId(1),
                    IspId(0),
                    IspId(1),
                    1.0,
                )
            })
            .collect()
    }

    #[test]
    fn quiet_plane_is_clean_and_draws_nothing() {
        let mut plane = FaultPlane::new(FaultConfig::none(), 7, 2);
        for d in decide_n(&mut plane, 50) {
            assert_eq!(d, FaultDecision::CLEAN);
        }
        // Streams untouched: same decisions as a fresh plane after losses
        // would have diverged (checked via intensity plane below).
        assert!(FaultConfig::at_intensity(0.0).is_quiet());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FaultPlane::new(FaultConfig::at_intensity(0.8), seed, 2);
            decide_n(&mut p, 200)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn per_node_streams_are_independent() {
        // Node 1's decisions must not depend on how many packets node 0 sent.
        let cfg = FaultConfig::at_intensity(0.8);
        let mut a = FaultPlane::new(cfg.clone(), 3, 2);
        let mut b = FaultPlane::new(cfg, 3, 2);
        decide_n(&mut a, 100); // node 0 burns its stream in `a` only
        let from_1 = |p: &mut FaultPlane| {
            (0..50)
                .map(|i| {
                    p.decide(SimTime::from_secs(i), NodeId(1), NodeId(0), IspId(1), IspId(0), 1.0)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(from_1(&mut a), from_1(&mut b));
    }

    #[test]
    fn intensity_scales_loss() {
        let losses = |intensity: f64| {
            let mut p = FaultPlane::new(FaultConfig::at_intensity(intensity), 5, 1);
            decide_n(&mut p, 1000)
                .iter()
                .filter(|d| matches!(d, FaultDecision::Drop { partitioned: false }))
                .count()
        };
        let low = losses(0.2);
        let high = losses(1.0);
        assert!(low > 0 && high > low * 2, "loss must scale with intensity: {low} vs {high}");
        assert_eq!(losses(0.0), 0);
    }

    #[test]
    fn link_partition_window_drops_deterministically() {
        let cfg = FaultConfig {
            link_partitions: vec![LinkPartition {
                a: NodeId(0),
                b: NodeId(1),
                from: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
            }],
            ..FaultConfig::none()
        };
        let mut p = FaultPlane::new(cfg, 1, 3);
        let at = |p: &mut FaultPlane, t: u64, src: u32, dst: u32| {
            p.decide(SimTime::from_secs(t), NodeId(src), NodeId(dst), IspId(0), IspId(0), 1.0)
        };
        assert_eq!(at(&mut p, 9, 0, 1), FaultDecision::CLEAN);
        assert_eq!(at(&mut p, 10, 0, 1), FaultDecision::Drop { partitioned: true });
        assert_eq!(at(&mut p, 19, 1, 0), FaultDecision::Drop { partitioned: true }, "symmetric");
        assert_eq!(at(&mut p, 20, 0, 1), FaultDecision::CLEAN, "end-exclusive");
        assert_eq!(at(&mut p, 15, 0, 2), FaultDecision::CLEAN, "other links unaffected");
    }

    #[test]
    fn isp_partition_blocks_cross_isp_pairs_only() {
        let cfg = FaultConfig {
            isp_partitions: vec![IspPartition {
                a: IspId(0),
                b: IspId(1),
                from: SimTime::ZERO,
                until: SimTime::from_secs(100),
            }],
            ..FaultConfig::none()
        };
        let mut p = FaultPlane::new(cfg, 1, 4);
        let d = p.decide(SimTime::from_secs(5), NodeId(0), NodeId(1), IspId(0), IspId(1), 1.0);
        assert_eq!(d, FaultDecision::Drop { partitioned: true });
        let d = p.decide(SimTime::from_secs(5), NodeId(2), NodeId(3), IspId(0), IspId(0), 1.0);
        assert_eq!(d, FaultDecision::CLEAN, "intra-ISP traffic unaffected");
        let d = p.decide(SimTime::from_secs(5), NodeId(2), NodeId(3), IspId(1), IspId(2), 1.0);
        assert_eq!(d, FaultDecision::CLEAN, "uninvolved ISP pair unaffected");
    }

    #[test]
    fn brownout_adds_size_proportional_delay() {
        let cfg = FaultConfig {
            brownouts: vec![Brownout {
                node: NodeId(0),
                from: SimTime::ZERO,
                until: SimTime::from_secs(100),
                extra_s_per_kb: 0.5,
            }],
            ..FaultConfig::none()
        };
        let mut p = FaultPlane::new(cfg, 1, 2);
        let d = p.decide(SimTime::from_secs(5), NodeId(0), NodeId(1), IspId(0), IspId(0), 8.0);
        match d {
            FaultDecision::Deliver { extra, duplicate_extra: None } => {
                assert!((extra.as_secs_f64() - 4.0).abs() < 1e-9, "8 KB × 0.5 s/KB, got {extra}");
            }
            other => panic!("expected delayed delivery, got {other:?}"),
        }
        let d = p.decide(SimTime::from_secs(5), NodeId(1), NodeId(0), IspId(0), IspId(0), 8.0);
        assert_eq!(d, FaultDecision::CLEAN, "only the browned-out sender is slowed");
    }

    #[test]
    fn active_until_fences_all_faults() {
        let mut cfg = FaultConfig::at_intensity(1.0);
        cfg.link_partitions.push(LinkPartition {
            a: NodeId(0),
            b: NodeId(1),
            from: SimTime::ZERO,
            until: SimTime::from_secs(1000),
        });
        let mut p = FaultPlane::new(cfg, 9, 2);
        p.set_active_until(SimTime::from_secs(50));
        let d = p.decide(SimTime::from_secs(50), NodeId(0), NodeId(1), IspId(0), IspId(1), 1.0);
        assert_eq!(d, FaultDecision::CLEAN, "partition silenced after the fence");
        for i in 0..100 {
            let d =
                p.decide(SimTime::from_secs(51 + i), NodeId(0), NodeId(1), IspId(0), IspId(1), 1.0);
            assert_eq!(d, FaultDecision::CLEAN);
        }
    }

    #[test]
    fn duplication_requests_a_trailing_copy() {
        let cfg = FaultConfig { dup_prob: 1.0, ..FaultConfig::none() };
        let mut p = FaultPlane::new(cfg, 4, 1);
        match p.decide(SimTime::ZERO, NodeId(0), NodeId(0), IspId(0), IspId(0), 1.0) {
            FaultDecision::Deliver { duplicate_extra: Some(lag), .. } => {
                assert!(lag >= SimDuration::ZERO); // finite draw
            }
            other => panic!("expected duplicate, got {other:?}"),
        }
    }

    #[test]
    fn last_window_end_spans_all_schedules() {
        let cfg = FaultConfig {
            link_partitions: vec![LinkPartition {
                a: NodeId(0),
                b: NodeId(1),
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(30),
            }],
            brownouts: vec![Brownout {
                node: NodeId(0),
                from: SimTime::from_secs(2),
                until: SimTime::from_secs(90),
                extra_s_per_kb: 0.1,
            }],
            ..FaultConfig::none()
        };
        assert_eq!(cfg.last_window_end(), SimTime::from_secs(90));
        assert_eq!(FaultConfig::none().last_window_end(), SimTime::ZERO);
    }

    #[test]
    fn checkpoint_resumes_decision_streams_exactly() {
        let cfg = FaultConfig::at_intensity(0.9);
        let mut p = FaultPlane::new(cfg.clone(), 6, 3);
        p.set_active_until(SimTime::from_secs(500));
        decide_n(&mut p, 40); // burn node 0's stream mid-run
        let mut w = CkptWriter::new("test");
        p.ckpt_write(&mut w);
        let text = w.finish();
        let mut fresh = FaultPlane::new(cfg, 6, 3);
        let mut r = CkptReader::new(&text, "test").unwrap();
        fresh.ckpt_read(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(fresh.active_until(), SimTime::from_secs(500));
        assert_eq!(decide_n(&mut p, 100), decide_n(&mut fresh, 100));
    }

    #[test]
    fn checkpoint_rejects_wrong_topology() {
        let mut w = CkptWriter::new("test");
        FaultPlane::new(FaultConfig::none(), 1, 2).ckpt_write(&mut w);
        let text = w.finish();
        let mut other = FaultPlane::new(FaultConfig::none(), 1, 5);
        let mut r = CkptReader::new(&text, "test").unwrap();
        assert!(other.ckpt_read(&mut r).is_err());
    }

    #[test]
    #[should_panic(expected = "fault intensity")]
    fn intensity_out_of_range_rejected() {
        FaultConfig::at_intensity(1.5);
    }

    #[test]
    #[should_panic(expected = "loss_prob")]
    fn invalid_probability_rejected() {
        let cfg = FaultConfig { loss_prob: 1.7, ..FaultConfig::none() };
        FaultPlane::new(cfg, 0, 1);
    }
}
