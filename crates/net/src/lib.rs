//! # cdnc-net
//!
//! Network substrate for the CDN consistency simulations.
//!
//! The paper's evaluation depends on three first-order network effects, all
//! modelled here:
//!
//! * **propagation delay** — updates travel at fibre speed over the
//!   great-circle distance between nodes, with an extra penalty when the
//!   path crosses ISP boundaries (paper §3.4.3 measures this penalty's
//!   effect on inconsistency);
//! * **sender-side congestion** — every node has a finite-bandwidth uplink
//!   with a FIFO transmit queue plus a per-packet processing cost, which is
//!   what makes Push collapse at the provider as packet size and network
//!   size grow (paper Figs. 19–20, the "Incast" discussion in §5.1);
//! * **traffic cost** — each delivered packet is charged `km × KB` (the
//!   paper's cost metric, following its reference \[41\]) and counted as an
//!   *update* or *light* message (the §5.3 accounting).
//!
//! Node absences (overload / failure / reboot, §3.4.5) are modelled as
//! per-node unavailability intervals in [`absence`].
//!
//! # Examples
//!
//! ```
//! use cdnc_geo::WorldBuilder;
//! use cdnc_net::{Network, NetworkConfig, NodeId, Packet};
//! use cdnc_simcore::SimTime;
//!
//! let world = WorldBuilder::new(10).seed(1).build();
//! let mut net = Network::from_world(&world, NetworkConfig::default(), 7);
//! let provider = net.add_node(world.provider_location(), cdnc_geo::IspId(0));
//! let packet = Packet::update(provider, NodeId(0), 1.0);
//! let arrival = net.send(SimTime::ZERO, &packet);
//! assert!(arrival > SimTime::ZERO);
//! ```

pub mod absence;
pub mod fault;
pub mod latency;
pub mod network;
pub mod node;
pub mod packet;
pub mod traffic;
pub mod uplink;

pub use absence::{AbsenceConfig, AbsenceSchedule};
pub use fault::{Brownout, FaultConfig, FaultDecision, FaultPlane, IspPartition, LinkPartition};
pub use latency::LatencyModel;
pub use network::{Network, NetworkConfig};
pub use node::{NetNode, NodeId};
pub use packet::{Packet, PacketKind, PACKET_KINDS};
pub use traffic::TrafficStats;
pub use uplink::Uplink;
