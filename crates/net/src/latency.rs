//! One-way latency model.
//!
//! Latency between two nodes is:
//!
//! ```text
//! base + distance_km / fibre_speed + inter_isp_penalty (if ISPs differ) + jitter
//! ```
//!
//! * fibre speed defaults to 200 000 km/s (≈ 2/3 c — refraction in glass);
//! * the inter-ISP penalty models the "traffic transmitting between ISPs is
//!   more costly ... competes for the limited transmission capacity" effect
//!   the paper measures in §3.4.3 (it found inter-ISP paths add seconds of
//!   inconsistency under load; the *delay* penalty here is milliseconds —
//!   the seconds come from TTL interaction, which the simulator reproduces);
//! * jitter is a clamped normal around the deterministic part.

use crate::node::NetNode;
use cdnc_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Configurable latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-message overhead (endpoint stacks, last-mile), seconds.
    pub base_s: f64,
    /// Signal speed in fibre, km/s.
    pub fibre_km_per_s: f64,
    /// Extra one-way delay when src and dst are in different ISPs, seconds.
    pub inter_isp_penalty_s: f64,
    /// Standard deviation of the jitter as a fraction of the deterministic
    /// delay.
    pub jitter_frac: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_s: 0.010,
            fibre_km_per_s: 200_000.0,
            inter_isp_penalty_s: 0.030,
            jitter_frac: 0.10,
        }
    }
}

impl LatencyModel {
    /// The deterministic one-way delay between two nodes (no jitter).
    pub fn deterministic_delay(&self, src: &NetNode, dst: &NetNode) -> SimDuration {
        let mut secs = self.base_s + src.distance_km(dst) / self.fibre_km_per_s;
        if src.isp() != dst.isp() {
            secs += self.inter_isp_penalty_s;
        }
        SimDuration::from_secs_f64(secs)
    }

    /// A jittered one-way delay draw between two nodes.
    ///
    /// Jitter is a normal with σ = `jitter_frac × deterministic`, clamped to
    /// ±3σ and to a floor of half the deterministic delay, so a draw is never
    /// implausibly fast.
    pub fn delay(&self, src: &NetNode, dst: &NetNode, rng: &mut SimRng) -> SimDuration {
        let det = self.deterministic_delay(src, dst).as_secs_f64();
        if self.jitter_frac == 0.0 {
            return SimDuration::from_secs_f64(det);
        }
        let sigma = det * self.jitter_frac;
        let drawn = rng.normal_clamped(det, sigma, det - 3.0 * sigma, det + 3.0 * sigma);
        SimDuration::from_secs_f64(drawn.max(det * 0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use cdnc_geo::{GeoPoint, IspId};

    fn node(id: u32, lat: f64, lon: f64, isp: u16) -> NetNode {
        NetNode::new(NodeId(id), GeoPoint::new(lat, lon).unwrap(), IspId(isp))
    }

    #[test]
    fn delay_grows_with_distance() {
        let m = LatencyModel::default();
        let a = node(0, 33.7, -84.4, 0);
        let near = node(1, 33.8, -84.3, 0);
        let far = node(2, 35.7, 139.7, 0);
        assert!(m.deterministic_delay(&a, &far) > m.deterministic_delay(&a, &near));
    }

    #[test]
    fn atlanta_tokyo_delay_plausible() {
        let m = LatencyModel { jitter_frac: 0.0, ..LatencyModel::default() };
        let a = node(0, 33.749, -84.388, 0);
        let t = node(1, 35.690, 139.692, 0);
        let d = m.deterministic_delay(&a, &t).as_secs_f64();
        // ~11,000 km / 200,000 km/s + 10 ms base ≈ 65 ms one-way.
        assert!((0.05..0.09).contains(&d), "one-way ATL-TYO {d}s");
    }

    #[test]
    fn inter_isp_penalty_applied() {
        let m = LatencyModel::default();
        let a = node(0, 10.0, 10.0, 1);
        let same = node(1, 11.0, 10.0, 1);
        let cross = node(2, 11.0, 10.0, 2);
        let d_same = m.deterministic_delay(&a, &same).as_secs_f64();
        let d_cross = m.deterministic_delay(&a, &cross).as_secs_f64();
        assert!((d_cross - d_same - m.inter_isp_penalty_s).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_bounded_and_positive() {
        let m = LatencyModel::default();
        let a = node(0, 33.7, -84.4, 0);
        let b = node(1, 51.5, -0.1, 3);
        let det = m.deterministic_delay(&a, &b).as_secs_f64();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let d = m.delay(&a, &b, &mut rng).as_secs_f64();
            // 1 µs slack: SimDuration rounds to microseconds.
            assert!(d >= det * 0.5 - 1e-6);
            assert!(d <= det * (1.0 + 3.0 * m.jitter_frac) + 1e-6);
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let m = LatencyModel { jitter_frac: 0.0, ..LatencyModel::default() };
        let a = node(0, 0.0, 0.0, 0);
        let b = node(1, 10.0, 10.0, 0);
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(m.delay(&a, &b, &mut rng), m.deterministic_delay(&a, &b));
    }
}
