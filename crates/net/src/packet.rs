//! Packets and message classification.
//!
//! The paper's §5.3 accounting splits traffic into **update messages**
//! (carrying content — "the size of an update message is usually much larger
//! than the size of other messages") and **light messages** (update polls,
//! invalidation notices, structure maintenance). [`PacketKind`] encodes both
//! the protocol role and that classification.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Protocol role of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Content update pushed or returned to a replica (carries the content).
    Update,
    /// A replica's poll asking whether newer content exists.
    Poll,
    /// Poll response indicating the content is unchanged (no payload).
    PollUnchanged,
    /// Invalidation notice marking cached content stale.
    Invalidation,
    /// Control message notifying a method switch (self-adaptive method,
    /// paper Algorithm 1 lines 8/12).
    MethodSwitch,
    /// Multicast-tree structure maintenance (join, re-parent).
    TreeMaintenance,
    /// End-user content request to a server.
    UserRequest,
    /// Server's content response to an end-user.
    UserResponse,
    /// Delivery acknowledgement for a tracked (reliable) message.
    Ack,
    /// Origin fetch filling an edge cache miss (carries the object bytes;
    /// request plane, cdnc-workload).
    OriginFetch,
}

/// Number of packet kinds (length of [`PacketKind::ALL`]).
pub const PACKET_KINDS: usize = 10;

impl PacketKind {
    /// Every kind, in declaration order (`PacketKind as usize` indexes it).
    pub const ALL: [PacketKind; PACKET_KINDS] = [
        PacketKind::Update,
        PacketKind::Poll,
        PacketKind::PollUnchanged,
        PacketKind::Invalidation,
        PacketKind::MethodSwitch,
        PacketKind::TreeMaintenance,
        PacketKind::UserRequest,
        PacketKind::UserResponse,
        PacketKind::Ack,
        PacketKind::OriginFetch,
    ];

    /// [`PacketKind::name`] with `-` folded to `_`: the stable metric-name
    /// suffix for per-kind instruments.
    pub fn metric_suffix(self) -> &'static str {
        match self {
            PacketKind::Update => "update",
            PacketKind::Poll => "poll",
            PacketKind::PollUnchanged => "poll_unchanged",
            PacketKind::Invalidation => "invalidation",
            PacketKind::MethodSwitch => "method_switch",
            PacketKind::TreeMaintenance => "tree_maintenance",
            PacketKind::UserRequest => "user_request",
            PacketKind::UserResponse => "user_response",
            PacketKind::Ack => "ack",
            PacketKind::OriginFetch => "origin_fetch",
        }
    }

    /// `true` for messages that carry content (the paper's "update
    /// messages"); `false` for light messages.
    pub fn is_update(self) -> bool {
        matches!(self, PacketKind::Update | PacketKind::UserResponse | PacketKind::OriginFetch)
    }

    /// `true` for control-plane messages (the paper's "light messages").
    pub fn is_light(self) -> bool {
        !self.is_update()
    }

    /// The stable wire name, `'static` so the tracer can label hop spans
    /// without allocating (every name is in `cdnc_obs::trace::LABELS`).
    pub fn name(self) -> &'static str {
        match self {
            PacketKind::Update => "update",
            PacketKind::Poll => "poll",
            PacketKind::PollUnchanged => "poll-unchanged",
            PacketKind::Invalidation => "invalidation",
            PacketKind::MethodSwitch => "method-switch",
            PacketKind::TreeMaintenance => "tree-maintenance",
            PacketKind::UserRequest => "user-request",
            PacketKind::UserResponse => "user-response",
            PacketKind::Ack => "ack",
            PacketKind::OriginFetch => "origin-fetch",
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Default size of light (control) messages, KB. The paper sets "the size of
/// all consistency maintenance related packages and content request packages"
/// to 1 KB in §4.
pub const LIGHT_PACKET_KB: f64 = 1.0;

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Protocol role.
    pub kind: PacketKind,
    /// Payload size in KB.
    pub size_kb: f64,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

impl Packet {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `size_kb` is negative or non-finite.
    pub fn new(kind: PacketKind, size_kb: f64, src: NodeId, dst: NodeId) -> Self {
        assert!(size_kb.is_finite() && size_kb >= 0.0, "bad packet size: {size_kb}");
        Packet { kind, size_kb, src, dst }
    }

    /// An update packet of `size_kb` from `src` to `dst`.
    pub fn update(src: NodeId, dst: NodeId, size_kb: f64) -> Self {
        Packet::new(PacketKind::Update, size_kb, src, dst)
    }

    /// A 1 KB poll from `src` to `dst`.
    pub fn poll(src: NodeId, dst: NodeId) -> Self {
        Packet::new(PacketKind::Poll, LIGHT_PACKET_KB, src, dst)
    }

    /// A 1 KB "unchanged" poll response.
    pub fn poll_unchanged(src: NodeId, dst: NodeId) -> Self {
        Packet::new(PacketKind::PollUnchanged, LIGHT_PACKET_KB, src, dst)
    }

    /// A 1 KB invalidation notice.
    pub fn invalidation(src: NodeId, dst: NodeId) -> Self {
        Packet::new(PacketKind::Invalidation, LIGHT_PACKET_KB, src, dst)
    }

    /// A 1 KB delivery acknowledgement.
    pub fn ack(src: NodeId, dst: NodeId) -> Self {
        Packet::new(PacketKind::Ack, LIGHT_PACKET_KB, src, dst)
    }

    /// An origin fetch of `size_kb` object bytes from origin `src` to edge
    /// `dst`.
    pub fn origin_fetch(src: NodeId, dst: NodeId, size_kb: f64) -> Self {
        Packet::new(PacketKind::OriginFetch, size_kb, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper() {
        assert!(PacketKind::Update.is_update());
        assert!(PacketKind::UserResponse.is_update());
        assert!(PacketKind::OriginFetch.is_update(), "origin fills carry content");
        for light in [
            PacketKind::Poll,
            PacketKind::PollUnchanged,
            PacketKind::Invalidation,
            PacketKind::MethodSwitch,
            PacketKind::TreeMaintenance,
            PacketKind::UserRequest,
            PacketKind::Ack,
        ] {
            assert!(light.is_light(), "{light} should be light");
            assert!(!light.is_update());
        }
    }

    #[test]
    fn constructors_set_sizes() {
        let a = NodeId(1);
        let b = NodeId(2);
        assert_eq!(Packet::poll(a, b).size_kb, LIGHT_PACKET_KB);
        assert_eq!(Packet::invalidation(a, b).size_kb, LIGHT_PACKET_KB);
        assert_eq!(Packet::update(a, b, 500.0).size_kb, 500.0);
        assert_eq!(Packet::update(a, b, 500.0).kind, PacketKind::Update);
    }

    #[test]
    #[should_panic(expected = "bad packet size")]
    fn negative_size_rejected() {
        Packet::new(PacketKind::Update, -1.0, NodeId(0), NodeId(1));
    }
}
