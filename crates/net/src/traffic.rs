//! Traffic accounting.
//!
//! Three cost metrics from the paper:
//!
//! * **traffic cost, km·KB** (§4.3, following the paper's reference \[41\]):
//!   every delivered packet is charged `distance × size`;
//! * **message counts** split into *update* and *light* messages (§5.3);
//! * **network load, km** (§5.3, Fig. 23): total transmission distance per
//!   message class.

use crate::packet::{Packet, PacketKind};
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated traffic statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    km_kb: f64,
    update_messages: u64,
    light_messages: u64,
    update_km: f64,
    light_km: f64,
    update_kb: f64,
    light_kb: f64,
    inter_isp_messages: u64,
    inter_isp_km_kb: f64,
    by_kind: BTreeMap<String, u64>,
}

impl TrafficStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records a delivered packet that travelled `distance_km`.
    ///
    /// # Panics
    ///
    /// Panics if `distance_km` is negative or non-finite.
    pub fn record(&mut self, packet: &Packet, distance_km: f64) {
        self.record_with_isp(packet, distance_km, false);
    }

    /// Records a delivered packet, noting whether it crossed an ISP
    /// boundary (inter-ISP transit is the costly traffic class the paper's
    /// reference \[38\] prices; HAT's proximity clusters exist to avoid it).
    ///
    /// # Panics
    ///
    /// Panics if `distance_km` is negative or non-finite.
    pub fn record_with_isp(&mut self, packet: &Packet, distance_km: f64, crosses_isp: bool) {
        assert!(distance_km.is_finite() && distance_km >= 0.0, "bad distance: {distance_km}");
        self.km_kb += distance_km * packet.size_kb;
        if crosses_isp {
            self.inter_isp_messages += 1;
            self.inter_isp_km_kb += distance_km * packet.size_kb;
        }
        if packet.kind.is_update() {
            self.update_messages += 1;
            self.update_km += distance_km;
            self.update_kb += packet.size_kb;
        } else {
            self.light_messages += 1;
            self.light_km += distance_km;
            self.light_kb += packet.size_kb;
        }
        *self.by_kind.entry(packet.kind.to_string()).or_insert(0) += 1;
    }

    /// Total traffic cost in km·KB (paper Fig. 16/17 metric).
    pub fn km_kb(&self) -> f64 {
        self.km_kb
    }

    /// Number of update (content-carrying) messages (paper Fig. 22 metric).
    pub fn update_messages(&self) -> u64 {
        self.update_messages
    }

    /// Number of light (control) messages.
    pub fn light_messages(&self) -> u64 {
        self.light_messages
    }

    /// Total messages of all kinds.
    pub fn total_messages(&self) -> u64 {
        self.update_messages + self.light_messages
    }

    /// Kilometres travelled by update messages (paper Fig. 23 metric).
    pub fn update_km(&self) -> f64 {
        self.update_km
    }

    /// Kilometres travelled by light messages (paper Fig. 23 metric).
    pub fn light_km(&self) -> f64 {
        self.light_km
    }

    /// KB carried by update messages.
    pub fn update_kb(&self) -> f64 {
        self.update_kb
    }

    /// KB carried by light messages.
    pub fn light_kb(&self) -> f64 {
        self.light_kb
    }

    /// Messages that crossed an ISP boundary.
    pub fn inter_isp_messages(&self) -> u64 {
        self.inter_isp_messages
    }

    /// km·KB of traffic that crossed an ISP boundary (transit cost proxy).
    pub fn inter_isp_km_kb(&self) -> f64 {
        self.inter_isp_km_kb
    }

    /// Fraction of the total km·KB that crossed an ISP boundary.
    ///
    /// Note this is volume-weighted: a scheme that eliminates cheap
    /// short-haul traffic can *raise* its fraction while lowering its
    /// absolute transit cost. Compare [`TrafficStats::inter_isp_km_kb`]
    /// or [`TrafficStats::inter_isp_message_fraction`] for cost claims.
    pub fn inter_isp_fraction(&self) -> f64 {
        if self.km_kb <= 0.0 {
            0.0
        } else {
            self.inter_isp_km_kb / self.km_kb
        }
    }

    /// Fraction of messages that crossed an ISP boundary.
    pub fn inter_isp_message_fraction(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            self.inter_isp_messages as f64 / total as f64
        }
    }

    /// Count of messages of one protocol kind.
    pub fn count_of(&self, kind: PacketKind) -> u64 {
        self.by_kind.get(&kind.to_string()).copied().unwrap_or(0)
    }

    /// Serializes the accumulator into a checkpoint artifact.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.f64("traffic_km_kb", self.km_kb);
        w.u64("traffic_update_messages", self.update_messages);
        w.u64("traffic_light_messages", self.light_messages);
        w.f64("traffic_update_km", self.update_km);
        w.f64("traffic_light_km", self.light_km);
        w.f64("traffic_update_kb", self.update_kb);
        w.f64("traffic_light_kb", self.light_kb);
        w.u64("traffic_inter_isp_messages", self.inter_isp_messages);
        w.f64("traffic_inter_isp_km_kb", self.inter_isp_km_kb);
        w.usize("traffic_kinds", self.by_kind.len());
        for (kind, count) in &self.by_kind {
            w.str("traffic_kind", kind);
            w.u64("traffic_kind_count", *count);
        }
    }

    /// Reads an accumulator back from a [`TrafficStats::ckpt_write`]
    /// artifact.
    pub fn ckpt_read(r: &mut CkptReader) -> Result<TrafficStats, CkptError> {
        let mut t = TrafficStats {
            km_kb: r.f64("traffic_km_kb")?,
            update_messages: r.u64("traffic_update_messages")?,
            light_messages: r.u64("traffic_light_messages")?,
            update_km: r.f64("traffic_update_km")?,
            light_km: r.f64("traffic_light_km")?,
            update_kb: r.f64("traffic_update_kb")?,
            light_kb: r.f64("traffic_light_kb")?,
            inter_isp_messages: r.u64("traffic_inter_isp_messages")?,
            inter_isp_km_kb: r.f64("traffic_inter_isp_km_kb")?,
            by_kind: BTreeMap::new(),
        };
        for _ in 0..r.usize("traffic_kinds")? {
            let kind = r.str("traffic_kind")?.to_string();
            t.by_kind.insert(kind, r.u64("traffic_kind_count")?);
        }
        Ok(t)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.km_kb += other.km_kb;
        self.inter_isp_messages += other.inter_isp_messages;
        self.inter_isp_km_kb += other.inter_isp_km_kb;
        self.update_messages += other.update_messages;
        self.light_messages += other.light_messages;
        self.update_km += other.update_km;
        self.light_km += other.light_km;
        self.update_kb += other.update_kb;
        self.light_kb += other.light_kb;
        for (k, v) in &other.by_kind {
            *self.by_kind.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn update(size: f64) -> Packet {
        Packet::update(NodeId(0), NodeId(1), size)
    }

    #[test]
    fn km_kb_accumulates() {
        let mut t = TrafficStats::new();
        t.record(&update(2.0), 100.0);
        t.record(&update(3.0), 10.0);
        assert!((t.km_kb() - 230.0).abs() < 1e-9);
    }

    #[test]
    fn classification_counts() {
        let mut t = TrafficStats::new();
        t.record(&update(1.0), 50.0);
        t.record(&Packet::poll(NodeId(0), NodeId(1)), 50.0);
        t.record(&Packet::invalidation(NodeId(1), NodeId(0)), 50.0);
        assert_eq!(t.update_messages(), 1);
        assert_eq!(t.light_messages(), 2);
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.update_km(), 50.0);
        assert_eq!(t.light_km(), 100.0);
        assert_eq!(t.count_of(PacketKind::Poll), 1);
        assert_eq!(t.count_of(PacketKind::Update), 1);
        assert_eq!(t.count_of(PacketKind::TreeMaintenance), 0);
    }

    #[test]
    fn inter_isp_accounting() {
        let mut t = TrafficStats::new();
        t.record_with_isp(&update(2.0), 100.0, true);
        t.record_with_isp(&update(3.0), 100.0, false);
        assert_eq!(t.inter_isp_messages(), 1);
        assert!((t.inter_isp_km_kb() - 200.0).abs() < 1e-9);
        assert!((t.inter_isp_fraction() - 200.0 / 500.0).abs() < 1e-9);
        let mut other = TrafficStats::new();
        other.record_with_isp(&update(1.0), 50.0, true);
        t.merge(&other);
        assert_eq!(t.inter_isp_messages(), 2);
        assert!((t.inter_isp_km_kb() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_inter_isp_fraction() {
        assert_eq!(TrafficStats::new().inter_isp_fraction(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = TrafficStats::new();
        let mut b = TrafficStats::new();
        let mut whole = TrafficStats::new();
        for i in 0..10 {
            let p = if i % 2 == 0 { update(1.0) } else { Packet::poll(NodeId(0), NodeId(1)) };
            let d = i as f64 * 10.0;
            whole.record(&p, d);
            if i < 5 {
                a.record(&p, d);
            } else {
                b.record(&p, d);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "bad distance")]
    fn negative_distance_rejected() {
        TrafficStats::new().record(&update(1.0), -1.0);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let mut t = TrafficStats::new();
        t.record_with_isp(&update(2.5), 123.456, true);
        t.record(&Packet::poll(NodeId(0), NodeId(1)), 7.0);
        t.record(&Packet::invalidation(NodeId(1), NodeId(0)), 0.125);
        let mut w = CkptWriter::new("test");
        t.ckpt_write(&mut w);
        let text = w.finish();
        let mut r = CkptReader::new(&text, "test").unwrap();
        let restored = TrafficStats::ckpt_read(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(restored, t);
        assert_eq!(restored.km_kb().to_bits(), t.km_kb().to_bits());
    }
}
