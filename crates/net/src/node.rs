//! Network nodes.

use cdnc_geo::{GeoPoint, IspId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node inside a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a usize, for slice access.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node's static network attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetNode {
    id: NodeId,
    location: GeoPoint,
    isp: IspId,
}

impl NetNode {
    /// Creates a node record.
    pub fn new(id: NodeId, location: GeoPoint, isp: IspId) -> Self {
        NetNode { id, location, isp }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's geographic position.
    pub fn location(&self) -> GeoPoint {
        self.location
    }

    /// The node's serving ISP.
    pub fn isp(&self) -> IspId {
        self.isp
    }

    /// Great-circle distance to another node, km.
    pub fn distance_km(&self, other: &NetNode) -> f64 {
        self.location.distance_km(&other.location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = GeoPoint::new(10.0, 20.0).unwrap();
        let n = NetNode::new(NodeId(3), p, IspId(7));
        assert_eq!(n.id(), NodeId(3));
        assert_eq!(n.id().index(), 3);
        assert_eq!(n.location(), p);
        assert_eq!(n.isp(), IspId(7));
        assert_eq!(n.id().to_string(), "n3");
    }

    #[test]
    fn distance_between_nodes() {
        let a = NetNode::new(NodeId(0), GeoPoint::new(0.0, 0.0).unwrap(), IspId(0));
        let b = NetNode::new(NodeId(1), GeoPoint::new(0.0, 1.0).unwrap(), IspId(0));
        let d = a.distance_km(&b);
        assert!((d - 111.19).abs() < 1.0, "1° of longitude at equator ≈ 111 km, got {d}");
    }
}
