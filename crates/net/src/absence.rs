//! Node absence (overload / failure / reboot) schedules.
//!
//! Paper §3.4.5 measures server "absences" — gaps in poll responses — and
//! finds lengths in [1, 500] s with 30.4 % under 10 s and 93.1 % under 50 s;
//! short absences are overloads and long ones failures/reboots. This module
//! generates per-node absence intervals matching that distribution: a
//! shifted exponential body plus a small uniform heavy tail, truncated at
//! the observed maximum.

use cdnc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the absence process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbsenceConfig {
    /// Mean gap between successive absences of one node, seconds.
    pub mean_gap_s: f64,
    /// Minimum absence length, seconds (the shift of the exponential body).
    pub min_len_s: f64,
    /// Mean of the exponential body *above* the shift, seconds.
    pub body_mean_s: f64,
    /// Probability that an absence is drawn from the heavy (failure/reboot)
    /// tail instead of the body.
    pub tail_prob: f64,
    /// Heavy-tail range, seconds (uniform).
    pub tail_range_s: (f64, f64),
    /// Hard cap on absence length, seconds (paper observes max 500 s).
    pub max_len_s: f64,
}

impl Default for AbsenceConfig {
    fn default() -> Self {
        AbsenceConfig {
            // ~0.3 absences per server per 2.4 h session: most servers are
            // absence-free on a given day (the paper's Fig. 12 filter keeps
            // a large population), while 3000 servers × 15 days still yield
            // thousands of absence samples for Fig. 10(b).
            mean_gap_s: 30_000.0,
            min_len_s: 3.7,
            body_mean_s: 15.5,
            tail_prob: 0.04,
            tail_range_s: (50.0, 500.0),
            max_len_s: 500.0,
        }
    }
}

impl AbsenceConfig {
    /// A configuration with no absences at all.
    pub fn disabled() -> Self {
        AbsenceConfig { mean_gap_s: f64::INFINITY, ..AbsenceConfig::default() }
    }

    /// Draws one absence length.
    pub fn draw_length(&self, rng: &mut SimRng) -> SimDuration {
        let secs = if rng.chance(self.tail_prob) {
            rng.uniform_range(self.tail_range_s.0, self.tail_range_s.1)
        } else {
            self.min_len_s + rng.exponential(1.0 / self.body_mean_s)
        };
        SimDuration::from_secs_f64(secs.min(self.max_len_s))
    }
}

/// Precomputed absence intervals for a set of nodes over a horizon.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AbsenceSchedule {
    /// `intervals[node]` is a sorted, non-overlapping list of
    /// `(start, end)` absence windows.
    intervals: Vec<Vec<(SimTime, SimTime)>>,
}

/// Sorts `ints` by start, drops empty intervals, and merges overlapping or
/// touching ones. The result satisfies the [`AbsenceSchedule`] field
/// invariant (sorted, strictly disjoint) for *any* input order.
fn normalize(mut ints: Vec<(SimTime, SimTime)>) -> Vec<(SimTime, SimTime)> {
    ints.retain(|&(s, e)| s < e);
    ints.sort_unstable();
    let mut out: Vec<(SimTime, SimTime)> = Vec::with_capacity(ints.len());
    for (s, e) in ints {
        match out.last_mut() {
            // Touching intervals merge too: ends are exclusive, so
            // [a, b) ∪ [b, c) is one absence [a, c).
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

impl AbsenceSchedule {
    /// A schedule in which no node is ever absent.
    pub fn always_present(nodes: usize) -> Self {
        AbsenceSchedule { intervals: vec![Vec::new(); nodes] }
    }

    /// Builds a schedule from raw per-node draws. Each node's list is
    /// normalised — sorted, empty intervals dropped, overlapping or
    /// touching draws merged — so the query methods' invariants hold no
    /// matter how the input was constructed.
    pub fn from_intervals(raw: Vec<Vec<(SimTime, SimTime)>>) -> Self {
        AbsenceSchedule { intervals: raw.into_iter().map(normalize).collect() }
    }

    /// Generates a schedule for `nodes` nodes over `[0, horizon]`.
    pub fn generate(
        nodes: usize,
        horizon: SimTime,
        config: &AbsenceConfig,
        rng: &mut SimRng,
    ) -> Self {
        let mut intervals = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let mut node_ints = Vec::new();
            if config.mean_gap_s.is_finite() {
                let mut t = SimTime::ZERO;
                loop {
                    let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / config.mean_gap_s));
                    let Some(start) = t.checked_add(gap) else { break };
                    if start > horizon {
                        break;
                    }
                    let len = config.draw_length(rng);
                    let end = start + len;
                    node_ints.push((start, end));
                    t = end;
                }
            }
            // The loop advances `t` past each interval, so draws *should*
            // already be disjoint — normalise anyway rather than trusting
            // construction order.
            intervals.push(normalize(node_ints));
        }
        AbsenceSchedule { intervals }
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.intervals.len()
    }

    /// `true` if `node` is absent at `t`. Interval ends are exclusive: the
    /// node is back at exactly `end`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_absent(&self, node: usize, t: SimTime) -> bool {
        let ints = &self.intervals[node];
        let idx = ints.partition_point(|&(start, _)| start <= t);
        idx > 0 && t < ints[idx - 1].1
    }

    /// If `node` is absent at `t`, the instant it returns; otherwise `None`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn return_time(&self, node: usize, t: SimTime) -> Option<SimTime> {
        self.interval_at(node, t).map(|(_, end)| end)
    }

    /// The absence interval containing `t`, if `node` is absent then.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn interval_at(&self, node: usize, t: SimTime) -> Option<(SimTime, SimTime)> {
        let ints = &self.intervals[node];
        let idx = ints.partition_point(|&(start, _)| start <= t);
        (idx > 0 && t < ints[idx - 1].1).then(|| ints[idx - 1])
    }

    /// The absence intervals of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn intervals(&self, node: usize) -> &[(SimTime, SimTime)] {
        &self.intervals[node]
    }

    /// All absence lengths across all nodes, seconds.
    pub fn all_lengths_s(&self) -> Vec<f64> {
        self.intervals.iter().flatten().map(|&(s, e)| e.since(s).as_secs_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_simcore::stats::Cdf;

    fn generate(nodes: usize, horizon_s: u64, seed: u64) -> AbsenceSchedule {
        let mut rng = SimRng::seed_from_u64(seed);
        AbsenceSchedule::generate(
            nodes,
            SimTime::from_secs(horizon_s),
            &AbsenceConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn intervals_sorted_and_disjoint() {
        let sched = generate(50, 100_000, 1);
        for node in 0..sched.nodes() {
            let ints = sched.intervals(node);
            for w in ints.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping absences");
            }
            for &(s, e) in ints {
                assert!(s < e, "empty absence interval");
            }
        }
    }

    #[test]
    fn membership_queries() {
        let sched = AbsenceSchedule {
            intervals: vec![vec![
                (SimTime::from_secs(10), SimTime::from_secs(20)),
                (SimTime::from_secs(50), SimTime::from_secs(55)),
            ]],
        };
        assert!(!sched.is_absent(0, SimTime::from_secs(9)));
        assert!(sched.is_absent(0, SimTime::from_secs(10)));
        assert!(sched.is_absent(0, SimTime::from_secs(19)));
        assert!(!sched.is_absent(0, SimTime::from_secs(20)), "end is exclusive");
        assert!(sched.is_absent(0, SimTime::from_secs(52)));
        assert_eq!(sched.return_time(0, SimTime::from_secs(52)), Some(SimTime::from_secs(55)));
        assert_eq!(sched.return_time(0, SimTime::from_secs(30)), None);
    }

    #[test]
    fn length_distribution_matches_paper_shape() {
        // Paper Fig. 10(b): lengths in [1, 500] s, ~30.4% < 10 s, ~93.1% < 50 s.
        let sched = generate(2_000, 200_000, 2);
        let lengths = sched.all_lengths_s();
        assert!(lengths.len() > 5_000, "need a large sample, got {}", lengths.len());
        let cdf = Cdf::from_samples(lengths);
        let under10 = cdf.fraction_at_most(10.0);
        let under50 = cdf.fraction_at_most(50.0);
        assert!((0.20..0.42).contains(&under10), "P(<10s) = {under10}");
        assert!((0.85..0.97).contains(&under50), "P(<50s) = {under50}");
        assert!(cdf.max().unwrap() <= 500.0 + 1e-6);
        assert!(cdf.min().unwrap() >= 1.0, "min length {}", cdf.min().unwrap());
    }

    #[test]
    fn disabled_config_generates_nothing() {
        let mut rng = SimRng::seed_from_u64(3);
        let sched = AbsenceSchedule::generate(
            20,
            SimTime::from_secs(1_000_000),
            &AbsenceConfig::disabled(),
            &mut rng,
        );
        assert!(sched.all_lengths_s().is_empty());
        assert!(!sched.is_absent(5, SimTime::from_secs(500)));
    }

    #[test]
    fn always_present_helper() {
        let sched = AbsenceSchedule::always_present(3);
        assert_eq!(sched.nodes(), 3);
        assert!(!sched.is_absent(2, SimTime::from_secs(1)));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(10, 50_000, 7), generate(10, 50_000, 7));
        assert_ne!(generate(10, 50_000, 7), generate(10, 50_000, 8));
    }

    #[test]
    fn from_intervals_merges_overlapping_and_touching_draws() {
        let s = |t: u64| SimTime::from_secs(t);
        let sched = AbsenceSchedule::from_intervals(vec![vec![
            (s(50), s(60)),
            (s(10), s(20)),
            (s(15), s(30)), // overlaps (10, 20)
            (s(30), s(35)), // touches the merged (10, 30)
            (s(40), s(40)), // empty: dropped
        ]]);
        assert_eq!(sched.intervals(0), &[(s(10), s(35)), (s(50), s(60))]);
        assert!(sched.is_absent(0, s(29)));
        assert!(sched.is_absent(0, s(30)), "touching draws form one absence");
        assert!(!sched.is_absent(0, s(35)));
        assert_eq!(sched.return_time(0, s(12)), Some(s(35)));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary raw draws: unsorted, possibly overlapping/touching/empty.
    fn raw_draws() -> impl Strategy<Value = Vec<(u64, u64)>> {
        proptest::collection::vec((0u64..5_000_000, 0u64..600_000_000), 0..12)
            .prop_map(|v| v.into_iter().map(|(s_us, len_us)| (s_us, s_us + len_us)).collect())
    }

    fn to_sim(raw: &[(u64, u64)]) -> Vec<(SimTime, SimTime)> {
        raw.iter().map(|&(s, e)| (SimTime::from_micros(s), SimTime::from_micros(e))).collect()
    }

    /// Probe instants around every boundary of both the raw draws and the
    /// normalised intervals: the boundary itself, one microsecond either
    /// side, and interval midpoints.
    fn probes(raw: &[(u64, u64)], sched: &AbsenceSchedule) -> Vec<SimTime> {
        let mut marks = vec![0u64];
        for &(s, e) in raw {
            marks.extend([s, e, (s + e) / 2]);
        }
        for &(s, e) in sched.intervals(0) {
            marks.extend([s.as_micros(), e.as_micros()]);
        }
        marks
            .into_iter()
            .flat_map(|us| [us.saturating_sub(1), us, us + 1])
            .map(SimTime::from_micros)
            .collect()
    }

    proptest! {
        #[test]
        fn normalised_intervals_sorted_and_strictly_disjoint(raw in raw_draws()) {
            let sched = AbsenceSchedule::from_intervals(vec![to_sim(&raw)]);
            let ints = sched.intervals(0);
            for &(s, e) in ints {
                prop_assert!(s < e, "empty interval survived normalisation");
            }
            for w in ints.windows(2) {
                prop_assert!(w[0].1 < w[1].0, "adjacent intervals must leave a gap: {w:?}");
            }
        }

        #[test]
        fn queries_are_mutually_consistent(raw in raw_draws()) {
            let sched = AbsenceSchedule::from_intervals(vec![to_sim(&raw)]);
            for t in probes(&raw, &sched) {
                let at = sched.interval_at(0, t);
                prop_assert_eq!(sched.is_absent(0, t), at.is_some(), "at t={}", t);
                prop_assert_eq!(sched.return_time(0, t), at.map(|(_, end)| end), "at t={}", t);
                if let Some((s, e)) = at {
                    prop_assert!(s <= t && t < e, "interval_at({t}) returned ({s}, {e})");
                    prop_assert!(sched.intervals(0).contains(&(s, e)));
                }
            }
        }

        #[test]
        fn membership_matches_union_of_raw_draws(raw in raw_draws()) {
            // Merging must not change semantics: a node is absent exactly
            // when some raw draw covers the instant.
            let sched = AbsenceSchedule::from_intervals(vec![to_sim(&raw)]);
            for t in probes(&raw, &sched) {
                let us = t.as_micros();
                let in_raw = raw.iter().any(|&(s, e)| s <= us && us < e);
                prop_assert_eq!(sched.is_absent(0, t), in_raw, "at t={}", t);
            }
        }

        #[test]
        fn generated_schedules_pass_boundary_queries(seed in 0u64..300) {
            let mut rng = SimRng::seed_from_u64(seed);
            let config = AbsenceConfig { mean_gap_s: 400.0, ..AbsenceConfig::default() };
            let sched =
                AbsenceSchedule::generate(4, SimTime::from_secs(50_000), &config, &mut rng);
            for node in 0..sched.nodes() {
                let ints = sched.intervals(node).to_vec();
                for w in ints.windows(2) {
                    prop_assert!(w[0].1 < w[1].0);
                }
                for (s, e) in ints {
                    prop_assert!(s < e);
                    prop_assert!(sched.is_absent(node, s), "absent at start");
                    prop_assert!(!sched.is_absent(node, e), "back at end (exclusive)");
                    prop_assert_eq!(sched.return_time(node, s), Some(e));
                    prop_assert_eq!(sched.interval_at(node, s), Some((s, e)));
                }
            }
        }
    }
}
