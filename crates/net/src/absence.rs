//! Node absence (overload / failure / reboot) schedules.
//!
//! Paper §3.4.5 measures server "absences" — gaps in poll responses — and
//! finds lengths in [1, 500] s with 30.4 % under 10 s and 93.1 % under 50 s;
//! short absences are overloads and long ones failures/reboots. This module
//! generates per-node absence intervals matching that distribution: a
//! shifted exponential body plus a small uniform heavy tail, truncated at
//! the observed maximum.

use cdnc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the absence process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbsenceConfig {
    /// Mean gap between successive absences of one node, seconds.
    pub mean_gap_s: f64,
    /// Minimum absence length, seconds (the shift of the exponential body).
    pub min_len_s: f64,
    /// Mean of the exponential body *above* the shift, seconds.
    pub body_mean_s: f64,
    /// Probability that an absence is drawn from the heavy (failure/reboot)
    /// tail instead of the body.
    pub tail_prob: f64,
    /// Heavy-tail range, seconds (uniform).
    pub tail_range_s: (f64, f64),
    /// Hard cap on absence length, seconds (paper observes max 500 s).
    pub max_len_s: f64,
}

impl Default for AbsenceConfig {
    fn default() -> Self {
        AbsenceConfig {
            // ~0.3 absences per server per 2.4 h session: most servers are
            // absence-free on a given day (the paper's Fig. 12 filter keeps
            // a large population), while 3000 servers × 15 days still yield
            // thousands of absence samples for Fig. 10(b).
            mean_gap_s: 30_000.0,
            min_len_s: 3.7,
            body_mean_s: 15.5,
            tail_prob: 0.04,
            tail_range_s: (50.0, 500.0),
            max_len_s: 500.0,
        }
    }
}

impl AbsenceConfig {
    /// A configuration with no absences at all.
    pub fn disabled() -> Self {
        AbsenceConfig { mean_gap_s: f64::INFINITY, ..AbsenceConfig::default() }
    }

    /// Draws one absence length.
    pub fn draw_length(&self, rng: &mut SimRng) -> SimDuration {
        let secs = if rng.chance(self.tail_prob) {
            rng.uniform_range(self.tail_range_s.0, self.tail_range_s.1)
        } else {
            self.min_len_s + rng.exponential(1.0 / self.body_mean_s)
        };
        SimDuration::from_secs_f64(secs.min(self.max_len_s))
    }
}

/// Precomputed absence intervals for a set of nodes over a horizon.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AbsenceSchedule {
    /// `intervals[node]` is a sorted, non-overlapping list of
    /// `(start, end)` absence windows.
    intervals: Vec<Vec<(SimTime, SimTime)>>,
}

impl AbsenceSchedule {
    /// A schedule in which no node is ever absent.
    pub fn always_present(nodes: usize) -> Self {
        AbsenceSchedule { intervals: vec![Vec::new(); nodes] }
    }

    /// Generates a schedule for `nodes` nodes over `[0, horizon]`.
    pub fn generate(
        nodes: usize,
        horizon: SimTime,
        config: &AbsenceConfig,
        rng: &mut SimRng,
    ) -> Self {
        let mut intervals = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let mut node_ints = Vec::new();
            if config.mean_gap_s.is_finite() {
                let mut t = SimTime::ZERO;
                loop {
                    let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / config.mean_gap_s));
                    let Some(start) = t.checked_add(gap) else { break };
                    if start > horizon {
                        break;
                    }
                    let len = config.draw_length(rng);
                    let end = start + len;
                    node_ints.push((start, end));
                    t = end;
                }
            }
            intervals.push(node_ints);
        }
        AbsenceSchedule { intervals }
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.intervals.len()
    }

    /// `true` if `node` is absent at `t`. Interval ends are exclusive: the
    /// node is back at exactly `end`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_absent(&self, node: usize, t: SimTime) -> bool {
        let ints = &self.intervals[node];
        let idx = ints.partition_point(|&(start, _)| start <= t);
        idx > 0 && t < ints[idx - 1].1
    }

    /// If `node` is absent at `t`, the instant it returns; otherwise `None`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn return_time(&self, node: usize, t: SimTime) -> Option<SimTime> {
        self.interval_at(node, t).map(|(_, end)| end)
    }

    /// The absence interval containing `t`, if `node` is absent then.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn interval_at(&self, node: usize, t: SimTime) -> Option<(SimTime, SimTime)> {
        let ints = &self.intervals[node];
        let idx = ints.partition_point(|&(start, _)| start <= t);
        (idx > 0 && t < ints[idx - 1].1).then(|| ints[idx - 1])
    }

    /// The absence intervals of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn intervals(&self, node: usize) -> &[(SimTime, SimTime)] {
        &self.intervals[node]
    }

    /// All absence lengths across all nodes, seconds.
    pub fn all_lengths_s(&self) -> Vec<f64> {
        self.intervals.iter().flatten().map(|&(s, e)| e.since(s).as_secs_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_simcore::stats::Cdf;

    fn generate(nodes: usize, horizon_s: u64, seed: u64) -> AbsenceSchedule {
        let mut rng = SimRng::seed_from_u64(seed);
        AbsenceSchedule::generate(
            nodes,
            SimTime::from_secs(horizon_s),
            &AbsenceConfig::default(),
            &mut rng,
        )
    }

    #[test]
    fn intervals_sorted_and_disjoint() {
        let sched = generate(50, 100_000, 1);
        for node in 0..sched.nodes() {
            let ints = sched.intervals(node);
            for w in ints.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping absences");
            }
            for &(s, e) in ints {
                assert!(s < e, "empty absence interval");
            }
        }
    }

    #[test]
    fn membership_queries() {
        let sched = AbsenceSchedule {
            intervals: vec![vec![
                (SimTime::from_secs(10), SimTime::from_secs(20)),
                (SimTime::from_secs(50), SimTime::from_secs(55)),
            ]],
        };
        assert!(!sched.is_absent(0, SimTime::from_secs(9)));
        assert!(sched.is_absent(0, SimTime::from_secs(10)));
        assert!(sched.is_absent(0, SimTime::from_secs(19)));
        assert!(!sched.is_absent(0, SimTime::from_secs(20)), "end is exclusive");
        assert!(sched.is_absent(0, SimTime::from_secs(52)));
        assert_eq!(sched.return_time(0, SimTime::from_secs(52)), Some(SimTime::from_secs(55)));
        assert_eq!(sched.return_time(0, SimTime::from_secs(30)), None);
    }

    #[test]
    fn length_distribution_matches_paper_shape() {
        // Paper Fig. 10(b): lengths in [1, 500] s, ~30.4% < 10 s, ~93.1% < 50 s.
        let sched = generate(2_000, 200_000, 2);
        let lengths = sched.all_lengths_s();
        assert!(lengths.len() > 5_000, "need a large sample, got {}", lengths.len());
        let cdf = Cdf::from_samples(lengths);
        let under10 = cdf.fraction_at_most(10.0);
        let under50 = cdf.fraction_at_most(50.0);
        assert!((0.20..0.42).contains(&under10), "P(<10s) = {under10}");
        assert!((0.85..0.97).contains(&under50), "P(<50s) = {under50}");
        assert!(cdf.max().unwrap() <= 500.0 + 1e-6);
        assert!(cdf.min().unwrap() >= 1.0, "min length {}", cdf.min().unwrap());
    }

    #[test]
    fn disabled_config_generates_nothing() {
        let mut rng = SimRng::seed_from_u64(3);
        let sched = AbsenceSchedule::generate(
            20,
            SimTime::from_secs(1_000_000),
            &AbsenceConfig::disabled(),
            &mut rng,
        );
        assert!(sched.all_lengths_s().is_empty());
        assert!(!sched.is_absent(5, SimTime::from_secs(500)));
    }

    #[test]
    fn always_present_helper() {
        let sched = AbsenceSchedule::always_present(3);
        assert_eq!(sched.nodes(), 3);
        assert!(!sched.is_absent(2, SimTime::from_secs(1)));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(10, 50_000, 7), generate(10, 50_000, 7));
        assert_ne!(generate(10, 50_000, 7), generate(10, 50_000, 8));
    }
}
