//! The network facade: nodes + uplinks + latency + traffic accounting.

use crate::fault::{FaultDecision, FaultPlane};
use crate::latency::LatencyModel;
use crate::node::{NetNode, NodeId};
use crate::packet::{Packet, PacketKind, PACKET_KINDS};
use crate::traffic::TrafficStats;
use crate::uplink::Uplink;
use cdnc_geo::{GeoPoint, IspId, World};
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::{SimDuration, SimRng, SimTime};

/// Static configuration of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// One-way latency model.
    pub latency: LatencyModel,
    /// Uplink bandwidth of every node, KB/s. Default 12 500 KB/s (~100 Mb/s),
    /// a typical well-connected host.
    pub uplink_kb_per_s: f64,
    /// Per-packet sender processing time. This is the constant that makes a
    /// provider serving N unicast destinations take Θ(N) to drain its queue
    /// (paper Figs. 19–20).
    pub processing: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            uplink_kb_per_s: 12_500.0,
            processing: SimDuration::from_millis(2),
        }
    }
}

/// A simulated network: delivers packets with queueing + propagation delay
/// and accounts traffic.
///
/// # Examples
///
/// ```
/// use cdnc_geo::{GeoPoint, IspId};
/// use cdnc_net::{Network, NetworkConfig, Packet};
/// use cdnc_simcore::SimTime;
///
/// let mut net = Network::new(NetworkConfig::default(), 1);
/// let a = net.add_node(GeoPoint::new(33.7, -84.4).unwrap(), IspId(0));
/// let b = net.add_node(GeoPoint::new(51.5, -0.1).unwrap(), IspId(1));
/// let arrival = net.send(SimTime::ZERO, &Packet::update(a, b, 1.0));
/// assert!(arrival.as_secs_f64() > 0.03, "transatlantic hop takes real time");
/// assert_eq!(net.traffic().update_messages(), 1);
/// ```
#[derive(Debug)]
pub struct Network {
    nodes: Vec<NetNode>,
    uplinks: Vec<Uplink>,
    /// Long-term liveness: `true` for a node that has *departed* the system
    /// (left or crashed and not yet rejoined). Stronger than a transient
    /// absence window — a departed node's uplink backlog died with it and
    /// senders may abandon tracked deliveries to it immediately.
    departed: Vec<bool>,
    config: NetworkConfig,
    traffic: TrafficStats,
    rng: SimRng,
    /// Behavioural fault injection; `None` (the default) leaves the send
    /// path untouched. See [`Network::set_fault_plane`].
    faults: Option<FaultPlane>,
    /// Observation-only instrumentation; see [`Network::set_obs`].
    obs_enqueued: cdnc_obs::Counter,
    obs_backlog: cdnc_obs::Gauge,
    obs_queue_delay: cdnc_obs::Histogram,
    obs_bytes: cdnc_obs::Counter,
    obs_tracer: cdnc_obs::Tracer,
    obs_fault_dropped: cdnc_obs::Counter,
    obs_fault_partitioned: cdnc_obs::Counter,
    obs_fault_duplicated: cdnc_obs::Counter,
    obs_fault_delayed: cdnc_obs::Counter,
    /// Per-[`PacketKind`] accounting (indexed by `kind as usize`), armed
    /// only when the registry has profiling enabled: cumulative packet and
    /// byte counters plus live in-flight levels whose high-water marks show
    /// the peak concurrent load each message class put on the network.
    obs_kind_pkts: [cdnc_obs::Counter; PACKET_KINDS],
    obs_kind_bytes: [cdnc_obs::Counter; PACKET_KINDS],
    obs_inflight_pkts: [cdnc_obs::Gauge; PACKET_KINDS],
    obs_inflight_bytes: cdnc_obs::Gauge,
    /// Per-kind wall-clock cost of the send path (`net_send_<kind>`),
    /// armed by the registry's timeprof gate; inert otherwise.
    obs_send_timers: [cdnc_obs::HandlerTimer; PACKET_KINDS],
    /// Determinism audit trail: every send folds the packet's structural
    /// identity (digest gate; inert unless armed).
    obs_digest: cdnc_obs::Digest,
}

impl Network {
    /// Creates an empty network.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            uplinks: Vec::new(),
            departed: Vec::new(),
            config,
            traffic: TrafficStats::new(),
            rng: SimRng::seed_from_u64(seed ^ cdnc_simcore::stream_tag::NETWORK),
            faults: None,
            obs_enqueued: cdnc_obs::Counter::default(),
            obs_backlog: cdnc_obs::Gauge::default(),
            obs_queue_delay: cdnc_obs::Histogram::default(),
            obs_bytes: cdnc_obs::Counter::default(),
            obs_tracer: cdnc_obs::Tracer::default(),
            obs_fault_dropped: cdnc_obs::Counter::default(),
            obs_fault_partitioned: cdnc_obs::Counter::default(),
            obs_fault_duplicated: cdnc_obs::Counter::default(),
            obs_fault_delayed: cdnc_obs::Counter::default(),
            obs_kind_pkts: std::array::from_fn(|_| cdnc_obs::Counter::default()),
            obs_kind_bytes: std::array::from_fn(|_| cdnc_obs::Counter::default()),
            obs_inflight_pkts: std::array::from_fn(|_| cdnc_obs::Gauge::default()),
            obs_inflight_bytes: cdnc_obs::Gauge::default(),
            obs_send_timers: std::array::from_fn(|_| cdnc_obs::HandlerTimer::default()),
            obs_digest: cdnc_obs::Digest::disabled(),
        }
    }

    /// Attaches a [`FaultPlane`]; subsequent [`Network::send_faulted`] calls
    /// consult it. Behavioural — only wire this when the run is meant to
    /// inject faults.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.faults = Some(plane);
    }

    /// The attached fault plane, if any.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.faults.as_ref()
    }

    /// Attaches metrics: `net_packets_enqueued` (counter),
    /// `net_uplink_backlog_ms` (gauge whose high-water mark is the deepest
    /// sender backlog any packet queued behind, in milliseconds), and
    /// `net_uplink_queue_delay_s` (histogram of the queueing delay each
    /// packet faced at its sender's uplink, seconds), and
    /// `net_uplink_bytes` (counter of bytes offered to uplinks).
    /// Observation-only: never read back into delivery times.
    /// The causal tracer (if enabled on the registry) rides along too:
    /// [`Network::send_traced`] records each delivery as a hop span.
    /// If series sampling is enabled, the uplink backlog becomes a sampled
    /// series and the enqueue/byte counters become per-second rate series
    /// (packets/s and the uplink traffic rate in bytes/s).
    ///
    /// When the registry has **profiling** enabled
    /// ([`cdnc_obs::Registry::enable_profiling`]) the network additionally
    /// arms per-[`PacketKind`] structural probes: `net_pkts_<kind>` /
    /// `net_bytes_<kind>` counters and `net_inflight_pkts_<kind>` /
    /// `net_inflight_bytes` gauges tracking live (sent, not yet delivered)
    /// messages — decremented by [`Network::mark_delivered`].
    pub fn set_obs(&mut self, registry: &cdnc_obs::Registry) {
        self.obs_enqueued = registry.counter("net_packets_enqueued");
        self.obs_backlog = registry.gauge("net_uplink_backlog_ms");
        self.obs_queue_delay = registry.histogram("net_uplink_queue_delay_s");
        self.obs_bytes = registry.counter("net_uplink_bytes");
        self.obs_tracer = registry.tracer();
        self.obs_fault_dropped = registry.counter("net_fault_dropped");
        self.obs_fault_partitioned = registry.counter("net_fault_partitioned");
        self.obs_fault_duplicated = registry.counter("net_fault_duplicated");
        self.obs_fault_delayed = registry.counter("net_fault_delayed");
        registry.series_gauge("net_uplink_backlog_ms");
        registry.series_rate("net_packets_enqueued");
        registry.series_rate("net_uplink_bytes");
        if registry.profiling_enabled() {
            for kind in PacketKind::ALL {
                let suffix = kind.metric_suffix();
                self.obs_kind_pkts[kind as usize] = registry.counter(&format!("net_pkts_{suffix}"));
                self.obs_kind_bytes[kind as usize] =
                    registry.counter(&format!("net_bytes_{suffix}"));
                self.obs_inflight_pkts[kind as usize] =
                    registry.gauge(&format!("net_inflight_pkts_{suffix}"));
            }
            self.obs_inflight_bytes = registry.gauge("net_inflight_bytes");
        }
        if registry.timeprof_enabled() {
            for kind in PacketKind::ALL {
                self.obs_send_timers[kind as usize] =
                    registry.handler_timer(&format!("net_send_{}", kind.metric_suffix()));
            }
        }
        self.obs_digest = registry.digest();
    }

    /// Creates a network with one node per [`World`] node, in world order.
    pub fn from_world(world: &World, config: NetworkConfig, seed: u64) -> Self {
        let mut net = Network::new(config, seed);
        for node in world.nodes() {
            net.add_node(node.location, node.isp);
        }
        net
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, location: GeoPoint, isp: IspId) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NetNode::new(id, location, isp));
        self.uplinks.push(Uplink::new(self.config.uplink_kb_per_s, self.config.processing));
        self.departed.push(false);
        id
    }

    /// Overrides one node's uplink bandwidth (e.g. a beefier provider).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `kb_per_s` invalid.
    pub fn set_uplink(&mut self, node: NodeId, kb_per_s: f64) {
        self.uplinks[node.index()] = Uplink::new(kb_per_s, self.config.processing);
    }

    /// The node record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &NetNode {
        &self.nodes[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[NetNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Great-circle distance between two nodes, km.
    pub fn distance_km(&self, a: NodeId, b: NodeId) -> f64 {
        self.node(a).distance_km(self.node(b))
    }

    /// Sends `packet` at `now`; returns its delivery instant.
    ///
    /// The packet first drains through the sender's FIFO uplink
    /// (processing + serialisation behind any backlog) and then experiences
    /// a jittered one-way propagation delay. Traffic is recorded at send.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn send(&mut self, now: SimTime, packet: &Packet) -> SimTime {
        let _prof = cdnc_obs::profile::scope(cdnc_obs::profile::Subsystem::Net);
        let _dispatch = self.obs_send_timers[packet.kind as usize].start();
        let distance = self.distance_km(packet.src, packet.dst);
        let crosses_isp = self.node(packet.src).isp() != self.node(packet.dst).isp();
        self.traffic.record_with_isp(packet, distance, crosses_isp);
        let queue_delay = self.uplinks[packet.src.index()].queueing_delay(now);
        let bytes = (packet.size_kb * 1024.0) as u64;
        self.obs_enqueued.inc();
        self.obs_bytes.add(bytes);
        self.obs_queue_delay.record(queue_delay.as_secs_f64());
        self.obs_backlog.set((queue_delay.as_secs_f64() * 1e3) as u64);
        let k = packet.kind as usize;
        self.obs_kind_pkts[k].inc();
        self.obs_kind_bytes[k].add(bytes);
        self.obs_inflight_pkts[k].add(1);
        self.obs_inflight_bytes.add(bytes);
        let departed = self.uplinks[packet.src.index()].transmit(now, packet.size_kb);
        let (src, dst) = (&self.nodes[packet.src.index()], &self.nodes[packet.dst.index()]);
        let arrival = departed + self.config.latency.delay(src, dst, &mut self.rng);
        // Structural identity only: kind, endpoints, and the (deterministic)
        // delivery instant — the delay comes from the seeded stream.
        self.obs_digest.fold(
            packet.kind.name(),
            packet.src.0,
            now.as_micros(),
            &[packet.dst.0 as u64, arrival.as_micros()],
        );
        arrival
    }

    /// Marks one previously sent packet of `kind` / `size_kb` as delivered
    /// (or dead), retiring it from the per-kind in-flight gauges armed by a
    /// profiling-enabled [`Network::set_obs`]. The simulation calls this when
    /// it processes the arrival event; [`Network::send_faulted`] calls it
    /// itself for packets it drops in transit. Observation-only — a no-op
    /// when profiling instruments are not armed.
    pub fn mark_delivered(&mut self, kind: PacketKind, size_kb: f64) {
        self.obs_inflight_pkts[kind as usize].sub(1);
        self.obs_inflight_bytes.sub((size_kb * 1024.0) as u64);
    }

    /// Like [`Network::send`], but when `ctx` belongs to a live trace the
    /// delivery is also recorded as a causal hop span labelled with the
    /// packet's wire name. Returns the delivery instant and the context the
    /// receiver should continue the trace from (`ctx` unchanged when the
    /// tracer is off or the context inactive — observation only).
    pub fn send_traced(
        &mut self,
        now: SimTime,
        packet: &Packet,
        ctx: cdnc_obs::TraceCtx,
    ) -> (SimTime, cdnc_obs::TraceCtx) {
        let arrival = self.send(now, packet);
        let hop = self.obs_tracer.hop(
            ctx,
            packet.kind.name(),
            packet.src.0,
            packet.dst.0,
            now.as_micros(),
            arrival.as_micros(),
        );
        (arrival, hop)
    }

    /// Sends `packet` through the attached fault plane. Returns the
    /// delivery instants paired with the contexts receivers continue their
    /// traces from: empty when the packet is dropped, one entry for a
    /// clean or delayed delivery, two when the network duplicates it.
    /// Without a fault plane this is exactly [`Network::send_traced`].
    ///
    /// Traffic and the sender's uplink are charged once per call — a
    /// dropped packet still left its sender, and a duplicate is copied
    /// *inside* the network, not resent. Fault outcomes are tagged on the
    /// trace: a drop records a `Lost` child labelled `fault-drop`, the
    /// trailing copy of a duplicate rides a hop labelled `fault-dup`.
    pub fn send_faulted(
        &mut self,
        now: SimTime,
        packet: &Packet,
        ctx: cdnc_obs::TraceCtx,
    ) -> Vec<(SimTime, cdnc_obs::TraceCtx)> {
        if self.faults.is_none() {
            return vec![self.send_traced(now, packet, ctx)];
        }
        let src_isp = self.nodes[packet.src.index()].isp();
        let dst_isp = self.nodes[packet.dst.index()].isp();
        let decision = self.faults.as_mut().expect("fault plane present").decide(
            now,
            packet.src,
            packet.dst,
            src_isp,
            dst_isp,
            packet.size_kb,
        );
        match decision {
            FaultDecision::Drop { partitioned } => {
                // Charge the sender: the packet left and died in transit.
                let _ = self.send(now, packet);
                // A dropped packet will never see an arrival event, so it is
                // retired from the in-flight accounting here.
                self.mark_delivered(packet.kind, packet.size_kb);
                if partitioned {
                    self.obs_fault_partitioned.inc();
                } else {
                    self.obs_fault_dropped.inc();
                }
                self.obs_tracer.child(
                    ctx,
                    cdnc_obs::SpanKind::Lost,
                    packet.dst.0,
                    now.as_micros(),
                    "fault-drop",
                );
                Vec::new()
            }
            FaultDecision::Deliver { extra, duplicate_extra } => {
                let arrival = self.send(now, packet) + extra;
                if !extra.is_zero() {
                    self.obs_fault_delayed.inc();
                }
                let hop = self.obs_tracer.hop(
                    ctx,
                    packet.kind.name(),
                    packet.src.0,
                    packet.dst.0,
                    now.as_micros(),
                    arrival.as_micros(),
                );
                let mut out = vec![(arrival, hop)];
                if let Some(lag) = duplicate_extra {
                    self.obs_fault_duplicated.inc();
                    // The in-network copy is a second live message: count it
                    // in-flight so each of the two arrivals retires one.
                    self.obs_inflight_pkts[packet.kind as usize].add(1);
                    self.obs_inflight_bytes.add((packet.size_kb * 1024.0) as u64);
                    let dup_arrival = arrival + lag;
                    let dup_hop = self.obs_tracer.hop(
                        ctx,
                        "fault-dup",
                        packet.src.0,
                        packet.dst.0,
                        now.as_micros(),
                        dup_arrival.as_micros(),
                    );
                    out.push((dup_arrival, dup_hop));
                }
                out
            }
        }
    }

    /// Deterministic round-trip estimate between two nodes (no jitter, no
    /// queueing) — the `RTT` used by the trace crawler's clock-skew
    /// correction (paper §3.1).
    pub fn rtt_estimate(&self, a: NodeId, b: NodeId) -> SimDuration {
        let one_way = self.config.latency.deterministic_delay(self.node(a), self.node(b));
        one_way * 2
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Clears traffic statistics (e.g. to exclude warm-up).
    pub fn reset_traffic(&mut self) {
        self.traffic = TrafficStats::new();
    }

    /// Clears one node's uplink backlog (recovery after absence).
    pub fn reset_uplink(&mut self, node: NodeId, now: SimTime) {
        self.uplinks[node.index()].reset(now);
    }

    /// The sender-side backlog a packet from `node` would face at `now`.
    pub fn backlog(&self, node: NodeId, now: SimTime) -> SimDuration {
        self.uplinks[node.index()].queueing_delay(now)
    }

    /// Marks `node` as departed (graceful leave or crash) and tears its
    /// uplink down — queued transmissions die with the node. Departed is a
    /// *long-term* liveness state, distinct from a transient absence window:
    /// senders may abandon tracked deliveries to a departed node immediately
    /// instead of retransmitting into the void.
    pub fn depart(&mut self, node: NodeId, now: SimTime) {
        self.departed[node.index()] = true;
        self.uplinks[node.index()].reset(now);
    }

    /// Clears the departed mark — a joining or restarting node starts with
    /// an idle uplink (its pre-departure backlog is gone, not resumed).
    pub fn rejoin(&mut self, node: NodeId, now: SimTime) {
        self.departed[node.index()] = false;
        self.uplinks[node.index()].reset(now);
    }

    /// `true` while `node` has departed and not yet rejoined.
    pub fn is_departed(&self, node: NodeId) -> bool {
        self.departed[node.index()]
    }

    /// Serializes the network's dynamic state — the latency-jitter rng, each
    /// node's uplink backlog and departure mark, traffic accounting, and the
    /// fault plane's fence and decision streams — into a checkpoint
    /// artifact. Static structure (node attributes, latency model, uplink
    /// bandwidths) is rebuilt from config by fresh construction.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.rng("net_rng", &self.rng);
        w.usize("net_nodes", self.nodes.len());
        for (uplink, departed) in self.uplinks.iter().zip(&self.departed) {
            let (busy_until, queued_packets, queued_kb) = uplink.dynamic_state();
            w.time("net_uplink_busy_until", busy_until);
            w.u64("net_uplink_queued_packets", queued_packets);
            w.f64("net_uplink_queued_kb", queued_kb);
            w.bool("net_node_departed", *departed);
        }
        self.traffic.ckpt_write(w);
        w.bool("net_has_faults", self.faults.is_some());
        if let Some(plane) = &self.faults {
            plane.ckpt_write(w);
        }
    }

    /// Restores dynamic state written by [`Network::ckpt_write`] into this
    /// freshly constructed network (same topology, same config, same fault
    /// plane presence).
    ///
    /// Errors if the artifact disagrees about the node count or fault-plane
    /// presence.
    pub fn ckpt_read(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.rng = r.rng("net_rng")?;
        let n = r.usize("net_nodes")?;
        if n != self.nodes.len() {
            return Err(CkptError(format!(
                "network has {} nodes, checkpoint carries {n}",
                self.nodes.len()
            )));
        }
        for i in 0..n {
            let busy_until = r.time("net_uplink_busy_until")?;
            let queued_packets = r.u64("net_uplink_queued_packets")?;
            let queued_kb = r.f64("net_uplink_queued_kb")?;
            self.uplinks[i].restore_dynamic(busy_until, queued_packets, queued_kb);
            self.departed[i] = r.bool("net_node_departed")?;
        }
        self.traffic = TrafficStats::ckpt_read(r)?;
        let has_faults = r.bool("net_has_faults")?;
        match (&mut self.faults, has_faults) {
            (Some(plane), true) => plane.ckpt_read(r)?,
            (None, false) => {}
            (present, _) => {
                return Err(CkptError(format!(
                    "fault plane {} here but {} in the checkpoint",
                    if present.is_some() { "attached" } else { "absent" },
                    if has_faults { "present" } else { "absent" },
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_geo::WorldBuilder;

    fn two_node_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(NetworkConfig::default(), 9);
        let a = net.add_node(GeoPoint::new(33.7, -84.4).unwrap(), IspId(0));
        let b = net.add_node(GeoPoint::new(34.0, -118.2).unwrap(), IspId(1));
        (net, a, b)
    }

    #[test]
    fn from_world_preserves_order_and_attrs() {
        let world = WorldBuilder::new(25).seed(4).build();
        let net = Network::from_world(&world, NetworkConfig::default(), 0);
        assert_eq!(net.len(), 25);
        for (i, wn) in world.nodes().iter().enumerate() {
            let n = net.node(NodeId(i as u32));
            assert_eq!(n.location(), wn.location);
            assert_eq!(n.isp(), wn.isp);
        }
    }

    #[test]
    fn send_delivers_later_than_now() {
        let (mut net, a, b) = two_node_net();
        let t = SimTime::from_secs(5);
        let arrival = net.send(t, &Packet::update(a, b, 1.0));
        assert!(arrival > t);
        // Cross-country: at least the ~15 ms propagation plus base.
        assert!(arrival.since(t).as_secs_f64() > 0.02);
    }

    #[test]
    fn burst_queues_at_sender() {
        let (mut net, a, b) = two_node_net();
        let t = SimTime::ZERO;
        let first = net.send(t, &Packet::update(a, b, 100.0));
        let mut last = first;
        for _ in 0..49 {
            last = net.send(t, &Packet::update(a, b, 100.0));
        }
        // 50 × (2 ms + 8 ms tx) of serialisation — the 50th packet is ≥ 400 ms
        // behind the 1st even before jitter.
        assert!(
            last.since(t).as_secs_f64() - first.since(t).as_secs_f64() > 0.3,
            "queueing must spread a burst: first {first}, last {last}"
        );
    }

    #[test]
    fn obs_metrics_track_sends_and_backlog() {
        let reg = cdnc_obs::Registry::enabled();
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        for _ in 0..10 {
            net.send(SimTime::ZERO, &Packet::update(a, b, 100.0));
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_packets_enqueued"), 10);
        let delays = snap.histogram("net_uplink_queue_delay_s").unwrap();
        assert_eq!(delays.count, 10);
        // The first packet saw an idle uplink; the last queued behind nine.
        assert_eq!(delays.min, 0.0);
        assert!(delays.max > 0.05, "burst backlog {}", delays.max);
        let backlog = snap.gauges.iter().find(|(n, _)| n == "net_uplink_backlog_ms").unwrap().1;
        assert!(backlog.high_water >= 50, "high water {}", backlog.high_water);
    }

    #[test]
    fn uplink_bytes_counted_and_series_sources_registered() {
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_series(1000);
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        net.send(SimTime::ZERO, &Packet::update(a, b, 2.0));
        net.send(SimTime::ZERO, &Packet::poll(b, a));
        assert_eq!(reg.snapshot().counter("net_uplink_bytes"), 2048 + 1024);
        reg.sampler().tick(0);
        let series = reg.series_snapshot();
        assert!(series.get("net_uplink_bytes", cdnc_obs::SeriesKind::Rate).is_some());
        assert!(series.get("net_packets_enqueued", cdnc_obs::SeriesKind::Rate).is_some());
        assert!(series.get("net_uplink_backlog_ms", cdnc_obs::SeriesKind::Gauge).is_some());
    }

    #[test]
    fn per_kind_accounting_requires_profiling_arming() {
        let reg = cdnc_obs::Registry::enabled();
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        net.send(SimTime::ZERO, &Packet::update(a, b, 2.0));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_pkts_update"), 0, "probes stay dark without profiling");
        assert!(snap.gauges.iter().all(|(n, _)| n != "net_inflight_bytes"));
    }

    #[test]
    fn per_kind_accounting_tracks_sends_and_deliveries() {
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_profiling(cdnc_obs::ProfileConfig::default());
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        net.send(SimTime::ZERO, &Packet::update(a, b, 2.0));
        net.send(SimTime::ZERO, &Packet::update(a, b, 2.0));
        net.send(SimTime::ZERO, &Packet::poll(b, a));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_pkts_update"), 2);
        assert_eq!(snap.counter("net_bytes_update"), 2 * 2048);
        assert_eq!(snap.counter("net_pkts_poll"), 1);
        assert_eq!(snap.counter("net_bytes_poll"), 1024);
        assert_eq!(snap.counter("net_pkts_ack"), 0);
        let inflight = snap.gauges.iter().find(|(n, _)| n == "net_inflight_bytes").unwrap().1;
        assert_eq!(inflight.value, 2 * 2048 + 1024);
        // Deliver the poll and one update: levels fall, high water stays.
        net.mark_delivered(PacketKind::Poll, crate::packet::LIGHT_PACKET_KB);
        net.mark_delivered(PacketKind::Update, 2.0);
        let snap = reg.snapshot();
        let inflight = snap.gauges.iter().find(|(n, _)| n == "net_inflight_bytes").unwrap().1;
        assert_eq!(inflight.value, 2048);
        assert_eq!(inflight.high_water, 2 * 2048 + 1024);
        let pkts = snap.gauges.iter().find(|(n, _)| n == "net_inflight_pkts_update").unwrap().1;
        assert_eq!((pkts.value, pkts.high_water), (1, 2));
    }

    #[test]
    fn dropped_and_duplicated_packets_balance_inflight() {
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_profiling(cdnc_obs::ProfileConfig::default());
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        let cfg = crate::FaultConfig { loss_prob: 1.0, ..crate::FaultConfig::none() };
        net.set_fault_plane(crate::FaultPlane::new(cfg, 1, 2));
        let out =
            net.send_faulted(SimTime::ZERO, &Packet::update(a, b, 2.0), cdnc_obs::TraceCtx::NONE);
        assert!(out.is_empty());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net_pkts_update"), 1, "the drop still left the sender");
        let inflight = snap.gauges.iter().find(|(n, _)| n == "net_inflight_bytes").unwrap().1;
        assert_eq!(inflight.value, 0, "a dropped packet retires immediately");

        let cfg = crate::FaultConfig { dup_prob: 1.0, ..crate::FaultConfig::none() };
        net.set_fault_plane(crate::FaultPlane::new(cfg, 1, 2));
        let out =
            net.send_faulted(SimTime::ZERO, &Packet::update(a, b, 2.0), cdnc_obs::TraceCtx::NONE);
        assert_eq!(out.len(), 2);
        for _ in &out {
            net.mark_delivered(PacketKind::Update, 2.0);
        }
        let snap = reg.snapshot();
        let inflight = snap.gauges.iter().find(|(n, _)| n == "net_inflight_bytes").unwrap().1;
        assert_eq!(inflight.value, 0, "both copies of a duplicate retire one in-flight slot");
    }

    #[test]
    fn obs_does_not_change_delivery() {
        let (mut plain, a, b) = two_node_net();
        let (mut wired, _, _) = two_node_net();
        wired.set_obs(&cdnc_obs::Registry::enabled());
        for _ in 0..5 {
            let p = Packet::update(a, b, 10.0);
            assert_eq!(plain.send(SimTime::ZERO, &p), wired.send(SimTime::ZERO, &p));
        }
    }

    #[test]
    fn send_traced_records_hops_without_changing_delivery() {
        use cdnc_obs::{SpanKind, TraceCtx};
        let (mut plain, a, b) = two_node_net();
        let (mut wired, _, _) = two_node_net();
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_tracing();
        wired.set_obs(&reg);
        let t = reg.tracer();
        let root = t.publish(0, a.0, 0, "net-test");
        let p = Packet::update(a, b, 10.0);
        let plain_arrival = plain.send(SimTime::ZERO, &p);
        let (arrival, hop) = wired.send_traced(SimTime::ZERO, &p, root);
        assert_eq!(arrival, plain_arrival, "tracing must not change delivery");
        assert!(hop.is_active() && hop.span != root.span);
        let store = t.store();
        let span = store.span(hop.span).unwrap();
        assert_eq!(span.kind, SpanKind::Hop);
        assert_eq!(span.label, "update");
        assert_eq!((span.src, span.node), (Some(a.0), b.0));
        assert_eq!(span.end_us, arrival.as_micros());
        // Inactive context: passthrough, no span recorded.
        let (_, none) = wired.send_traced(SimTime::ZERO, &p, TraceCtx::NONE);
        assert!(!none.is_active());
        assert_eq!(t.store().spans.len(), store.spans.len());
    }

    #[test]
    fn traffic_recorded_per_send() {
        let (mut net, a, b) = two_node_net();
        net.send(SimTime::ZERO, &Packet::update(a, b, 2.0));
        net.send(SimTime::ZERO, &Packet::poll(b, a));
        assert_eq!(net.traffic().update_messages(), 1);
        assert_eq!(net.traffic().light_messages(), 1);
        let d = net.distance_km(a, b);
        assert!((net.traffic().km_kb() - (2.0 * d + 1.0 * d)).abs() < 1e-6);
        net.reset_traffic();
        assert_eq!(net.traffic().total_messages(), 0);
    }

    #[test]
    fn rtt_estimate_symmetric() {
        let (net, a, b) = two_node_net();
        assert_eq!(net.rtt_estimate(a, b), net.rtt_estimate(b, a));
        assert!(net.rtt_estimate(a, b) > SimDuration::ZERO);
    }

    #[test]
    fn provider_uplink_override() {
        let (mut net, a, b) = two_node_net();
        net.set_uplink(a, 1.0); // 1 KB/s: a 10 KB packet takes 10 s
        let arrival = net.send(SimTime::ZERO, &Packet::update(a, b, 10.0));
        assert!(arrival.as_secs_f64() > 9.0);
    }

    #[test]
    fn reset_uplink_clears_backlog() {
        let (mut net, a, b) = two_node_net();
        net.set_uplink(a, 1.0);
        net.send(SimTime::ZERO, &Packet::update(a, b, 100.0)); // 100 s backlog
        assert!(net.backlog(a, SimTime::from_secs(1)).as_secs() > 90);
        net.reset_uplink(a, SimTime::from_secs(1));
        assert_eq!(net.backlog(a, SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn send_faulted_without_plane_matches_send_traced() {
        let (mut plain, a, b) = two_node_net();
        let (mut faulted, _, _) = two_node_net();
        for _ in 0..5 {
            let p = Packet::update(a, b, 10.0);
            let (arrival, _) = plain.send_traced(SimTime::ZERO, &p, cdnc_obs::TraceCtx::NONE);
            let out = faulted.send_faulted(SimTime::ZERO, &p, cdnc_obs::TraceCtx::NONE);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, arrival, "no plane: identical delivery");
        }
    }

    #[test]
    fn quiet_plane_is_transparent() {
        let (mut plain, a, b) = two_node_net();
        let (mut faulted, _, _) = two_node_net();
        faulted.set_fault_plane(crate::FaultPlane::new(crate::FaultConfig::none(), 1, 2));
        for _ in 0..5 {
            let p = Packet::update(a, b, 10.0);
            let (arrival, _) = plain.send_traced(SimTime::ZERO, &p, cdnc_obs::TraceCtx::NONE);
            let out = faulted.send_faulted(SimTime::ZERO, &p, cdnc_obs::TraceCtx::NONE);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].0, arrival, "quiet plane: identical delivery");
        }
    }

    #[test]
    fn certain_loss_drops_but_still_charges_traffic() {
        let reg = cdnc_obs::Registry::enabled();
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        let cfg = crate::FaultConfig { loss_prob: 1.0, ..crate::FaultConfig::none() };
        net.set_fault_plane(crate::FaultPlane::new(cfg, 1, 2));
        for _ in 0..4 {
            let out = net.send_faulted(
                SimTime::ZERO,
                &Packet::update(a, b, 2.0),
                cdnc_obs::TraceCtx::NONE,
            );
            assert!(out.is_empty(), "certain loss delivers nothing");
        }
        assert_eq!(net.traffic().update_messages(), 4, "dropped packets still left the sender");
        assert_eq!(reg.snapshot().counter("net_fault_dropped"), 4);
        assert_eq!(reg.snapshot().counter("net_fault_partitioned"), 0);
    }

    #[test]
    fn certain_duplication_delivers_twice() {
        let reg = cdnc_obs::Registry::enabled();
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        let cfg = crate::FaultConfig { dup_prob: 1.0, ..crate::FaultConfig::none() };
        net.set_fault_plane(crate::FaultPlane::new(cfg, 1, 2));
        let out =
            net.send_faulted(SimTime::ZERO, &Packet::update(a, b, 2.0), cdnc_obs::TraceCtx::NONE);
        assert_eq!(out.len(), 2);
        assert!(out[1].0 >= out[0].0, "the copy trails the original");
        assert_eq!(net.traffic().update_messages(), 1, "a duplicate is copied in-network");
        assert_eq!(reg.snapshot().counter("net_fault_duplicated"), 1);
    }

    #[test]
    fn partition_window_drops_and_tags_the_trace() {
        use cdnc_obs::SpanKind;
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_tracing();
        let (mut net, a, b) = two_node_net();
        net.set_obs(&reg);
        let cfg = crate::FaultConfig {
            link_partitions: vec![crate::LinkPartition {
                a,
                b,
                from: SimTime::ZERO,
                until: SimTime::from_secs(10),
            }],
            ..crate::FaultConfig::none()
        };
        net.set_fault_plane(crate::FaultPlane::new(cfg, 1, 2));
        let t = reg.tracer();
        let root = t.publish(0, a.0, 0, "net-test");
        let out = net.send_faulted(SimTime::from_secs(5), &Packet::update(a, b, 2.0), root);
        assert!(out.is_empty());
        assert_eq!(reg.snapshot().counter("net_fault_partitioned"), 1);
        let store = t.store();
        let drop_span = store
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Lost && s.label == "fault-drop")
            .expect("drop recorded on the trace");
        assert_eq!(drop_span.node, b.0);
        // After the window the same link delivers.
        let out = net.send_faulted(SimTime::from_secs(10), &Packet::update(a, b, 2.0), root);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn depart_tears_down_the_uplink_and_rejoin_clears_the_mark() {
        let (mut net, a, b) = two_node_net();
        net.set_uplink(a, 1.0);
        net.send(SimTime::ZERO, &Packet::update(a, b, 100.0)); // 100 s backlog
        assert!(!net.is_departed(a));
        net.depart(a, SimTime::from_secs(1));
        assert!(net.is_departed(a));
        assert_eq!(net.backlog(a, SimTime::from_secs(1)), SimDuration::ZERO);
        net.rejoin(a, SimTime::from_secs(9));
        assert!(!net.is_departed(a));
        assert_eq!(net.backlog(a, SimTime::from_secs(9)), SimDuration::ZERO);
    }

    #[test]
    fn checkpoint_round_trip_resumes_deliveries_exactly() {
        let (mut net, a, b) = two_node_net();
        net.set_fault_plane(crate::FaultPlane::new(crate::FaultConfig::at_intensity(0.5), 9, 2));
        net.depart(b, SimTime::ZERO);
        net.rejoin(b, SimTime::from_secs(1));
        net.depart(a, SimTime::from_secs(2));
        for i in 0..30 {
            net.send_faulted(
                SimTime::from_secs(i),
                &Packet::update(a, b, 5.0),
                cdnc_obs::TraceCtx::NONE,
            );
        }
        let mut w = CkptWriter::new("test");
        net.ckpt_write(&mut w);
        let text = w.finish();
        // Fresh construction with the same parameters, then restore.
        let (mut restored, _, _) = two_node_net();
        restored.set_fault_plane(crate::FaultPlane::new(
            crate::FaultConfig::at_intensity(0.5),
            9,
            2,
        ));
        let mut r = CkptReader::new(&text, "test").unwrap();
        restored.ckpt_read(&mut r).unwrap();
        r.done().unwrap();
        assert!(restored.is_departed(a) && !restored.is_departed(b));
        assert_eq!(restored.traffic(), net.traffic());
        for i in 30..60 {
            let p = Packet::update(a, b, 5.0);
            let t = SimTime::from_secs(i);
            let expect = net.send_faulted(t, &p, cdnc_obs::TraceCtx::NONE);
            let got = restored.send_faulted(t, &p, cdnc_obs::TraceCtx::NONE);
            assert_eq!(
                got.iter().map(|(at, _)| *at).collect::<Vec<_>>(),
                expect.iter().map(|(at, _)| *at).collect::<Vec<_>>(),
                "restored network diverged at send {i}"
            );
        }
    }

    #[test]
    fn checkpoint_rejects_mismatched_fault_presence() {
        let (net, _, _) = two_node_net();
        let mut w = CkptWriter::new("test");
        net.ckpt_write(&mut w);
        let text = w.finish();
        let (mut restored, _, _) = two_node_net();
        restored.set_fault_plane(crate::FaultPlane::new(crate::FaultConfig::none(), 1, 2));
        let mut r = CkptReader::new(&text, "test").unwrap();
        assert!(restored.ckpt_read(&mut r).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let (mut net, a, b) = {
                let mut net = Network::new(NetworkConfig::default(), seed);
                let a = net.add_node(GeoPoint::new(33.7, -84.4).unwrap(), IspId(0));
                let b = net.add_node(GeoPoint::new(51.5, -0.1).unwrap(), IspId(1));
                (net, a, b)
            };
            (0..20)
                .map(|i| net.send(SimTime::from_secs(i), &Packet::update(a, b, 1.0)).as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
