//! Sender-side uplink with FIFO transmit queue.
//!
//! Every packet a node sends occupies its uplink for
//! `processing + size/bandwidth`; packets queue behind in-flight ones. This
//! is the congestion mechanism behind the paper's scalability findings: when
//! the provider Pushes an update to every server at once, the last copy
//! departs after `N × (processing + tx)` — the queueing delay "proportional
//! to the package size and the number of children" (paper §4.5) and the
//! Incast risk (§5.1).

use cdnc_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A node's transmit uplink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uplink {
    bandwidth_kb_per_s: f64,
    processing: SimDuration,
    busy_until: SimTime,
    queued_packets: u64,
    queued_kb: f64,
}

impl Uplink {
    /// Creates an idle uplink.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_kb_per_s` is not strictly positive and finite.
    pub fn new(bandwidth_kb_per_s: f64, processing: SimDuration) -> Self {
        assert!(
            bandwidth_kb_per_s > 0.0 && bandwidth_kb_per_s.is_finite(),
            "bad bandwidth: {bandwidth_kb_per_s}"
        );
        Uplink {
            bandwidth_kb_per_s,
            processing,
            busy_until: SimTime::ZERO,
            queued_packets: 0,
            queued_kb: 0.0,
        }
    }

    /// Uplink bandwidth, KB/s.
    pub fn bandwidth_kb_per_s(&self) -> f64 {
        self.bandwidth_kb_per_s
    }

    /// The instant the uplink next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total packets ever enqueued.
    pub fn queued_packets(&self) -> u64 {
        self.queued_packets
    }

    /// Total KB ever enqueued.
    pub fn queued_kb(&self) -> f64 {
        self.queued_kb
    }

    /// Enqueues a `size_kb` packet at `now`; returns the instant its last
    /// byte leaves the uplink (transmission complete, propagation not
    /// included).
    pub fn transmit(&mut self, now: SimTime, size_kb: f64) -> SimTime {
        assert!(size_kb.is_finite() && size_kb >= 0.0, "bad size: {size_kb}");
        let start = self.busy_until.max(now);
        let tx = SimDuration::from_secs_f64(size_kb / self.bandwidth_kb_per_s);
        let done = start + self.processing + tx;
        self.busy_until = done;
        self.queued_packets += 1;
        self.queued_kb += size_kb;
        done
    }

    /// Queueing delay a packet enqueued at `now` would experience before its
    /// transmission starts.
    pub fn queueing_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Resets the uplink to idle (used when a node recovers from absence —
    /// its pending transmissions were lost).
    pub fn reset(&mut self, now: SimTime) {
        self.busy_until = now;
    }

    /// The dynamic fields: `(busy_until, queued_packets, queued_kb)`.
    ///
    /// Bandwidth and processing are construction parameters rebuilt from
    /// config on restore, so a checkpoint carries only these three.
    pub fn dynamic_state(&self) -> (SimTime, u64, f64) {
        (self.busy_until, self.queued_packets, self.queued_kb)
    }

    /// Overwrites the dynamic fields of a freshly constructed uplink with a
    /// [`Uplink::dynamic_state`] snapshot.
    pub fn restore_dynamic(&mut self, busy_until: SimTime, queued_packets: u64, queued_kb: f64) {
        self.busy_until = busy_until;
        self.queued_packets = queued_packets;
        self.queued_kb = queued_kb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uplink(kbps: f64, proc_ms: u64) -> Uplink {
        Uplink::new(kbps, SimDuration::from_millis(proc_ms))
    }

    #[test]
    fn single_packet_timing() {
        let mut u = uplink(1_000.0, 2); // 1000 KB/s, 2 ms processing
        let done = u.transmit(SimTime::from_secs(10), 500.0);
        // 500 KB at 1000 KB/s = 0.5 s, plus 2 ms.
        assert_eq!(done, SimTime::from_secs(10) + SimDuration::from_millis(502));
    }

    #[test]
    fn back_to_back_packets_queue_fifo() {
        let mut u = uplink(1_000.0, 0);
        let t = SimTime::from_secs(0);
        let d1 = u.transmit(t, 100.0);
        let d2 = u.transmit(t, 100.0);
        let d3 = u.transmit(t, 100.0);
        assert_eq!(d1, SimTime::from_millis(100));
        assert_eq!(d2, SimTime::from_millis(200));
        assert_eq!(d3, SimTime::from_millis(300));
        assert_eq!(u.queued_packets(), 3);
        assert!((u.queued_kb() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_does_not_accumulate() {
        let mut u = uplink(1_000.0, 0);
        u.transmit(SimTime::ZERO, 100.0); // busy until 0.1s
        let done = u.transmit(SimTime::from_secs(5), 100.0);
        assert_eq!(done, SimTime::from_secs(5) + SimDuration::from_millis(100));
    }

    #[test]
    fn queueing_delay_reflects_backlog() {
        let mut u = uplink(100.0, 0);
        let t = SimTime::ZERO;
        u.transmit(t, 100.0); // 1 s of backlog
        assert_eq!(u.queueing_delay(t), SimDuration::from_secs(1));
        assert_eq!(u.queueing_delay(SimTime::from_secs(2)), SimDuration::ZERO);
    }

    #[test]
    fn n_pushes_scale_linearly() {
        // The Fig. 19/20 mechanism: N back-to-back pushes make the last
        // departure N × per-packet time.
        let mut u = uplink(12_500.0, 2); // ~100 Mbps, 2 ms processing
        let mut last = SimTime::ZERO;
        for _ in 0..170 {
            last = u.transmit(SimTime::ZERO, 1.0);
        }
        let per_packet = 0.002 + 1.0 / 12_500.0;
        assert!((last.as_secs_f64() - 170.0 * per_packet).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut u = uplink(10.0, 0);
        u.transmit(SimTime::ZERO, 1_000.0); // busy for 100 s
        u.reset(SimTime::from_secs(1));
        assert_eq!(u.queueing_delay(SimTime::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bad bandwidth")]
    fn zero_bandwidth_rejected() {
        Uplink::new(0.0, SimDuration::ZERO);
    }
}
