//! The object catalog: what users can ask for, and how popular it is.
//!
//! The catalog is a fixed ladder of popularity *ranks*; requests pick a rank
//! by a bounded-Zipf draw ([`SimRng::zipf`]) and get the object currently
//! occupying it. Publish/perish churn replaces a rank's occupant with a
//! fresh object (a new generation): the perished object is never requested
//! again, the newcomer inherits the rank's request share. Because the ranks
//! themselves never move, re-normalising the Zipf weights after churn is the
//! identity — the deterministic re-normalisation the live-content model
//! needs, at zero cost.
//!
//! The hottest `live_slots` ranks are *live* content: their bytes follow the
//! provider's update stream, so serving them stale is what the
//! staleness-served metric measures. The remaining ranks are immutable
//! objects whose misses come only from churn and cache evictions.

use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A catalog object: the `gen`-th occupant of popularity rank `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId {
    /// Popularity rank (0 = most popular).
    pub slot: u32,
    /// Churn generation of the occupant (0 = the original object).
    pub gen: u32,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    born: SimTime,
}

/// A Zipf-popularity object catalog with publish/perish dynamics.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::{SimRng, SimTime};
/// use cdnc_workload::Catalog;
///
/// let mut catalog = Catalog::new(64, 1.0, 8);
/// let mut rng = SimRng::seed_from_u64(7);
/// let id = catalog.sample(&mut rng);
/// assert_eq!(id.gen, 0, "nothing churned yet");
/// let (old, new) = catalog.churn(&mut rng, SimTime::from_secs(10));
/// assert_eq!(old.slot, new.slot);
/// assert_eq!(old.gen + 1, new.gen);
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    slots: Vec<Slot>,
    zipf_s: f64,
    live_slots: usize,
}

impl Catalog {
    /// Creates a catalog of `size` ranks with Zipf exponent `zipf_s`; the
    /// hottest `live_slots` ranks are live content.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `live_slots > size`.
    pub fn new(size: usize, zipf_s: f64, live_slots: usize) -> Self {
        assert!(size > 0, "empty catalog");
        assert!(live_slots <= size, "live slots exceed catalog size");
        Catalog { slots: vec![Slot { gen: 0, born: SimTime::ZERO }; size], zipf_s, live_slots }
    }

    /// Number of ranks in the catalog.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the catalog holds no ranks (never: `new` rejects size 0).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Draws the object a request asks for: a Zipf rank's current occupant.
    pub fn sample(&self, rng: &mut SimRng) -> ObjectId {
        let slot = rng.zipf(self.slots.len(), self.zipf_s);
        ObjectId { slot: slot as u32, gen: self.slots[slot].gen }
    }

    /// One publish/perish event at `now`: a Zipf-sampled rank's occupant
    /// perishes and a fresh object takes its place (new objects enter with
    /// sampled popularity, so hot ranks turn over fastest — live content).
    /// Returns `(perished, newcomer)`.
    pub fn churn(&mut self, rng: &mut SimRng, now: SimTime) -> (ObjectId, ObjectId) {
        let slot = rng.zipf(self.slots.len(), self.zipf_s);
        let old = ObjectId { slot: slot as u32, gen: self.slots[slot].gen };
        self.slots[slot].gen += 1;
        self.slots[slot].born = now;
        (old, ObjectId { slot: slot as u32, gen: self.slots[slot].gen })
    }

    /// The current occupant of rank `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn head(&self, slot: u32) -> ObjectId {
        ObjectId { slot, gen: self.slots[slot as usize].gen }
    }

    /// When the current occupant of rank `slot` entered the catalog.
    pub fn born(&self, slot: u32) -> SimTime {
        self.slots[slot as usize].born
    }

    /// `true` if `id` is the rank's current occupant (not perished).
    pub fn is_current(&self, id: ObjectId) -> bool {
        self.slots[id.slot as usize].gen == id.gen
    }

    /// `true` if rank `slot` is live content (versioned by the provider's
    /// update stream).
    pub fn is_live(&self, slot: u32) -> bool {
        (slot as usize) < self.live_slots
    }

    /// Number of live ranks.
    pub fn live_slots(&self) -> usize {
        self.live_slots
    }

    /// Serializes the churn state — each rank's generation and birth time —
    /// into a checkpoint artifact. Size, skew, and the live prefix are
    /// construction parameters rebuilt from config.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.usize("catalog_slots", self.slots.len());
        for slot in &self.slots {
            w.u64("catalog_gen", slot.gen as u64);
            w.time("catalog_born", slot.born);
        }
    }

    /// Restores state written by [`Catalog::ckpt_write`] into this catalog.
    ///
    /// Errors if the artifact's rank count disagrees with this catalog.
    pub fn ckpt_read(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.usize("catalog_slots")?;
        if n != self.slots.len() {
            return Err(CkptError(format!(
                "catalog has {} ranks, checkpoint carries {n}",
                self.slots.len()
            )));
        }
        for slot in &mut self.slots {
            slot.gen = r.u64("catalog_gen")? as u32;
            slot.born = r.time("catalog_born")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_prefers_hot_ranks() {
        let catalog = Catalog::new(100, 1.0, 10);
        let mut rng = SimRng::seed_from_u64(5);
        let mut head = 0u64;
        for _ in 0..10_000 {
            if catalog.sample(&mut rng).slot < 10 {
                head += 1;
            }
        }
        // At s = 1 over 100 ranks the top-10 share is H(10)/H(100) ≈ 56%.
        assert!(head > 4_500, "top-10 ranks got {head}/10000 requests");
    }

    #[test]
    fn churn_perishes_and_renews_in_place() {
        let mut catalog = Catalog::new(16, 0.8, 4);
        let mut rng = SimRng::seed_from_u64(1);
        for step in 1..=50u64 {
            let now = SimTime::from_secs(step);
            let (old, new) = catalog.churn(&mut rng, now);
            assert_eq!(old.slot, new.slot, "churn replaces in place");
            assert!(!catalog.is_current(old), "perished object is gone");
            assert!(catalog.is_current(new), "newcomer is the head");
            assert_eq!(catalog.born(new.slot), now);
        }
        // The ladder itself never changed: samples stay in range and ranks
        // re-normalise trivially.
        for _ in 0..1_000 {
            let id = catalog.sample(&mut rng);
            assert!(catalog.is_current(id));
        }
    }

    #[test]
    fn liveness_follows_the_hot_prefix() {
        let catalog = Catalog::new(10, 1.0, 3);
        assert!(catalog.is_live(0) && catalog.is_live(2));
        assert!(!catalog.is_live(3) && !catalog.is_live(9));
        assert_eq!(catalog.live_slots(), 3);
    }

    #[test]
    fn checkpoint_round_trip_resumes_churn_exactly() {
        let mut catalog = Catalog::new(32, 1.0, 4);
        let mut rng = SimRng::seed_from_u64(3);
        for i in 1..=40u64 {
            catalog.churn(&mut rng, SimTime::from_secs(i));
        }
        let mut w = CkptWriter::new("test");
        catalog.ckpt_write(&mut w);
        let text = w.finish();
        let mut restored = Catalog::new(32, 1.0, 4);
        let mut r = CkptReader::new(&text, "test").unwrap();
        restored.ckpt_read(&mut r).unwrap();
        r.done().unwrap();
        for slot in 0..32u32 {
            assert_eq!(restored.head(slot), catalog.head(slot));
            assert_eq!(restored.born(slot), catalog.born(slot));
        }
        let mut tiny = Catalog::new(8, 1.0, 2);
        let mut r = CkptReader::new(&text, "test").unwrap();
        assert!(tiny.ckpt_read(&mut r).is_err(), "rank-count mismatch rejected");
    }

    #[test]
    fn catalog_is_deterministic() {
        let run = |seed| {
            let mut catalog = Catalog::new(64, 1.1, 8);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut ids = Vec::new();
            for i in 0..200u64 {
                ids.push(catalog.sample(&mut rng));
                if i % 7 == 0 {
                    catalog.churn(&mut rng, SimTime::from_secs(i));
                }
            }
            ids
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
