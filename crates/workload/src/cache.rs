//! Per-edge LRU object caches with delayed-hit semantics.
//!
//! A request for a cached object is a *hit* (served at zero latency). A
//! request for an object another request is already fetching is a *delayed
//! hit*: it joins the in-flight fetch's waiter queue instead of issuing a
//! second origin fetch, and is released — exactly once — when the fill
//! lands ("Caching with Delayed Hits", Atre et al., SIGCOMM '20). Only the
//! first requester pays an origin fetch; the cache stays deterministic
//! because every structure iterates in key order.
//!
//! Eviction is classic LRU by default. The optional MAD-aware variant
//! (Minimizing Aggregate Delay) scans a small window of the least-recently
//! used entries and evicts the one that has absorbed the fewest hits since
//! its fill — a deterministic proxy for the aggregate delay its loss would
//! cost at the next miss.

use crate::catalog::ObjectId;
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::SimTime;
use std::collections::BTreeMap;

/// How many least-recently-used entries the MAD variant considers.
const MAD_WINDOW: usize = 8;

/// A request queued behind an in-flight origin fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The requesting user's index.
    pub user: u32,
    /// When the request arrived (latency accrues from here).
    pub requested_at: SimTime,
}

/// The outcome of one cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from cache; the copy carries provider snapshot `snap`.
    Hit {
        /// Provider snapshot the cached copy was filled at.
        snap: u32,
    },
    /// Coalesced behind an in-flight fetch; released on fill.
    Delayed,
    /// Not cached and not in flight: the caller must start an origin fetch
    /// (the requester is already queued as the fetch's first waiter).
    Miss,
}

#[derive(Debug, Clone)]
struct Entry {
    snap: u32,
    tick: u64,
    uses: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    waiters: Vec<Waiter>,
}

/// An LRU cache of catalog objects with miss coalescing.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::SimTime;
/// use cdnc_workload::{Lookup, LruCache, ObjectId};
///
/// let mut cache = LruCache::new(2, false);
/// let id = ObjectId { slot: 0, gen: 0 };
/// let t = SimTime::ZERO;
/// assert_eq!(cache.request(id, 1, t), Lookup::Miss);
/// assert_eq!(cache.request(id, 2, t), Lookup::Delayed);
/// let (waiters, evicted) = cache.fill(id, 5, t);
/// assert_eq!(waiters.len(), 2, "initiator + delayed hit released together");
/// assert_eq!(evicted, None);
/// assert_eq!(cache.request(id, 3, t), Lookup::Hit { snap: 5 });
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    mad: bool,
    tick: u64,
    entries: BTreeMap<ObjectId, Entry>,
    recency: BTreeMap<u64, ObjectId>,
    inflight: BTreeMap<ObjectId, InFlight>,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` objects; `mad` selects
    /// the MAD-aware eviction variant.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, mad: bool) -> Self {
        assert!(capacity > 0, "zero-capacity cache");
        LruCache {
            capacity,
            mad,
            tick: 0,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            inflight: BTreeMap::new(),
        }
    }

    /// Number of cached objects (in-flight fetches excluded).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of fetches currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// The provider snapshot the cached copy of `id` carries, if cached.
    pub fn peek_snap(&self, id: ObjectId) -> Option<u32> {
        self.entries.get(&id).map(|e| e.snap)
    }

    /// One user request for `id`: hit, delayed hit, or miss. On a miss the
    /// requester is queued as the new fetch's first waiter, so the caller
    /// only has to start the origin fetch.
    pub fn request(&mut self, id: ObjectId, user: u32, now: SimTime) -> Lookup {
        if let Some(entry) = self.entries.get_mut(&id) {
            self.recency.remove(&entry.tick);
            self.tick += 1;
            entry.tick = self.tick;
            entry.uses += 1;
            self.recency.insert(self.tick, id);
            return Lookup::Hit { snap: entry.snap };
        }
        let waiter = Waiter { user, requested_at: now };
        if let Some(fetch) = self.inflight.get_mut(&id) {
            fetch.waiters.push(waiter);
            return Lookup::Delayed;
        }
        self.inflight.insert(id, InFlight { waiters: vec![waiter] });
        Lookup::Miss
    }

    /// Drops the cached copy of `id` (serve-time revalidation found it
    /// stale). Returns `true` if a copy was cached.
    pub fn invalidate(&mut self, id: ObjectId) -> bool {
        match self.entries.remove(&id) {
            Some(entry) => {
                self.recency.remove(&entry.tick);
                true
            }
            None => false,
        }
    }

    /// The origin fill for `id` landed carrying provider snapshot `snap`:
    /// caches the object and releases every queued waiter exactly once.
    /// Returns the waiters and the evicted victim, if the fill pushed the
    /// cache past capacity.
    ///
    /// # Panics
    ///
    /// Panics if no fetch for `id` is in flight.
    pub fn fill(
        &mut self,
        id: ObjectId,
        snap: u32,
        _now: SimTime,
    ) -> (Vec<Waiter>, Option<ObjectId>) {
        let fetch = self.inflight.remove(&id).expect("fill without an in-flight fetch");
        self.tick += 1;
        self.entries.insert(id, Entry { snap, tick: self.tick, uses: 0 });
        self.recency.insert(self.tick, id);
        let evicted = if self.entries.len() > self.capacity { Some(self.evict()) } else { None };
        (fetch.waiters, evicted)
    }

    /// `true` while a fetch for `id` is in flight — lets a caller detect an
    /// orphaned fill (the fetch was aborted while the response travelled).
    pub fn is_fetching(&self, id: ObjectId) -> bool {
        self.inflight.contains_key(&id)
    }

    /// Aborts every in-flight fetch — the edge died mid-fetch. The queued
    /// waiters are returned so the caller can release them as aborted
    /// misses; any fill that later arrives for an aborted fetch is an
    /// orphan the caller must drop (see [`LruCache::is_fetching`]).
    pub fn abort_inflight(&mut self) -> Vec<Waiter> {
        let inflight = std::mem::take(&mut self.inflight);
        inflight.into_values().flat_map(|f| f.waiters).collect()
    }

    /// Cold restart after a crash: drops every cached object and aborts
    /// every in-flight fetch, returning the orphaned waiters. The recency
    /// clock keeps running, so post-restart ticks never collide with
    /// pre-crash history.
    pub fn cold_restart(&mut self) -> Vec<Waiter> {
        self.entries.clear();
        self.recency.clear();
        self.abort_inflight()
    }

    /// Serializes the cache's dynamic state — recency clock, cached entries,
    /// and in-flight fetches with their waiter queues — into a checkpoint
    /// artifact. Capacity and the eviction variant are construction
    /// parameters rebuilt from config.
    pub fn ckpt_write(&self, w: &mut CkptWriter) {
        w.u64("cache_tick", self.tick);
        w.usize("cache_entries", self.entries.len());
        for (id, entry) in &self.entries {
            w.u64("cache_slot", id.slot as u64);
            w.u64("cache_gen", id.gen as u64);
            w.u64("cache_snap", entry.snap as u64);
            w.u64("cache_entry_tick", entry.tick);
            w.u64("cache_uses", entry.uses);
        }
        w.usize("cache_inflight", self.inflight.len());
        for (id, fetch) in &self.inflight {
            w.u64("cache_slot", id.slot as u64);
            w.u64("cache_gen", id.gen as u64);
            w.usize("cache_waiters", fetch.waiters.len());
            for waiter in &fetch.waiters {
                w.u64("cache_waiter_user", waiter.user as u64);
                w.time("cache_waiter_at", waiter.requested_at);
            }
        }
    }

    /// Restores state written by [`LruCache::ckpt_write`] into this cache,
    /// replacing whatever it held; the recency index is rebuilt from the
    /// entries' ticks.
    pub fn ckpt_read(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.tick = r.u64("cache_tick")?;
        self.entries.clear();
        self.recency.clear();
        self.inflight.clear();
        for _ in 0..r.usize("cache_entries")? {
            let id =
                ObjectId { slot: r.u64("cache_slot")? as u32, gen: r.u64("cache_gen")? as u32 };
            let entry = Entry {
                snap: r.u64("cache_snap")? as u32,
                tick: r.u64("cache_entry_tick")?,
                uses: r.u64("cache_uses")?,
            };
            self.recency.insert(entry.tick, id);
            self.entries.insert(id, entry);
        }
        for _ in 0..r.usize("cache_inflight")? {
            let id =
                ObjectId { slot: r.u64("cache_slot")? as u32, gen: r.u64("cache_gen")? as u32 };
            let mut waiters = Vec::new();
            for _ in 0..r.usize("cache_waiters")? {
                waiters.push(Waiter {
                    user: r.u64("cache_waiter_user")? as u32,
                    requested_at: r.time("cache_waiter_at")?,
                });
            }
            self.inflight.insert(id, InFlight { waiters });
        }
        Ok(())
    }

    /// Picks and removes the eviction victim; returns its id.
    fn evict(&mut self) -> ObjectId {
        let victim = if self.mad {
            // MAD-aware: among the least-recent window, the entry with the
            // fewest absorbed hits costs the least aggregate delay to lose.
            // Ties fall to the older entry, so the scan is deterministic.
            let mut best: Option<(u64, u64, ObjectId)> = None;
            for (&tick, &id) in self.recency.iter().take(MAD_WINDOW) {
                let uses = self.entries[&id].uses;
                if best.is_none_or(|(bu, bt, _)| uses < bu || (uses == bu && tick < bt)) {
                    best = Some((uses, tick, id));
                }
            }
            best.expect("eviction from a non-empty cache").2
        } else {
            *self.recency.first_key_value().expect("eviction from a non-empty cache").1
        };
        let entry = self.entries.remove(&victim).expect("victim is cached");
        self.recency.remove(&entry.tick);
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(slot: u32) -> ObjectId {
        ObjectId { slot, gen: 0 }
    }

    fn filled(cache: &mut LruCache, slot: u32) {
        assert_eq!(cache.request(id(slot), 0, SimTime::ZERO), Lookup::Miss);
        cache.fill(id(slot), 0, SimTime::ZERO);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = LruCache::new(2, false);
        filled(&mut cache, 1);
        filled(&mut cache, 2);
        // Touch 1 so 2 is the LRU victim.
        assert!(matches!(cache.request(id(1), 0, SimTime::ZERO), Lookup::Hit { .. }));
        assert_eq!(cache.request(id(3), 0, SimTime::ZERO), Lookup::Miss);
        let (_, evicted) = cache.fill(id(3), 0, SimTime::ZERO);
        assert_eq!(evicted, Some(id(2)));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek_snap(id(1)).is_some() && cache.peek_snap(id(3)).is_some());
    }

    #[test]
    fn concurrent_misses_coalesce_into_one_fetch() {
        let mut cache = LruCache::new(4, false);
        assert_eq!(cache.request(id(9), 1, SimTime::from_secs(1)), Lookup::Miss);
        assert_eq!(cache.request(id(9), 2, SimTime::from_secs(2)), Lookup::Delayed);
        assert_eq!(cache.request(id(9), 3, SimTime::from_secs(3)), Lookup::Delayed);
        assert_eq!(cache.inflight(), 1, "one fetch serves all three");
        let (waiters, _) = cache.fill(id(9), 7, SimTime::from_secs(4));
        assert_eq!(
            waiters,
            vec![
                Waiter { user: 1, requested_at: SimTime::from_secs(1) },
                Waiter { user: 2, requested_at: SimTime::from_secs(2) },
                Waiter { user: 3, requested_at: SimTime::from_secs(3) },
            ]
        );
        assert_eq!(cache.inflight(), 0);
        assert_eq!(cache.request(id(9), 4, SimTime::from_secs(5)), Lookup::Hit { snap: 7 });
    }

    #[test]
    fn invalidation_forces_a_refetch() {
        let mut cache = LruCache::new(4, false);
        filled(&mut cache, 5);
        assert!(cache.invalidate(id(5)));
        assert!(!cache.invalidate(id(5)), "second invalidate is a no-op");
        assert_eq!(cache.request(id(5), 0, SimTime::ZERO), Lookup::Miss);
    }

    #[test]
    fn mad_variant_spares_hit_absorbing_entries() {
        // Entry 1 is the *least recent* but has absorbed hits; 2 and 3 are
        // newer and unused. Plain LRU evicts 1; MAD spares it and evicts
        // the older of the unused entries instead.
        let mut cache = LruCache::new(3, true);
        filled(&mut cache, 1);
        for _ in 0..5 {
            assert!(matches!(cache.request(id(1), 0, SimTime::ZERO), Lookup::Hit { .. }));
        }
        filled(&mut cache, 2);
        filled(&mut cache, 3);
        let mut plain = cache.clone();
        plain.mad = false;
        assert_eq!(cache.request(id(4), 0, SimTime::ZERO), Lookup::Miss);
        let (_, evicted) = cache.fill(id(4), 0, SimTime::ZERO);
        assert_eq!(evicted, Some(id(2)), "MAD spares the hit-absorbing entry");
        assert_eq!(plain.request(id(4), 0, SimTime::ZERO), Lookup::Miss);
        let (_, evicted) = plain.fill(id(4), 0, SimTime::ZERO);
        assert_eq!(evicted, Some(id(1)), "plain LRU evicts by recency alone");
    }

    #[test]
    #[should_panic(expected = "fill without an in-flight fetch")]
    fn fill_requires_a_fetch() {
        LruCache::new(1, false).fill(id(0), 0, SimTime::ZERO);
    }

    #[test]
    fn abort_inflight_releases_waiters_and_orphans_fills() {
        let mut cache = LruCache::new(4, false);
        filled(&mut cache, 1);
        assert_eq!(cache.request(id(9), 1, SimTime::from_secs(1)), Lookup::Miss);
        assert_eq!(cache.request(id(9), 2, SimTime::from_secs(2)), Lookup::Delayed);
        assert!(cache.is_fetching(id(9)));
        let waiters = cache.abort_inflight();
        assert_eq!(waiters.len(), 2, "initiator and delayed hit both released");
        assert!(!cache.is_fetching(id(9)), "the fill that lands later is an orphan");
        assert_eq!(cache.inflight(), 0);
        assert_eq!(cache.len(), 1, "cached entries survive an inflight abort");
        // A fresh request for the aborted object starts a new fetch.
        assert_eq!(cache.request(id(9), 3, SimTime::from_secs(3)), Lookup::Miss);
    }

    #[test]
    fn cold_restart_empties_everything_and_keeps_the_clock() {
        let mut cache = LruCache::new(4, false);
        filled(&mut cache, 1);
        filled(&mut cache, 2);
        assert_eq!(cache.request(id(7), 5, SimTime::from_secs(1)), Lookup::Miss);
        let waiters = cache.cold_restart();
        assert_eq!(waiters, vec![Waiter { user: 5, requested_at: SimTime::from_secs(1) }]);
        assert!(cache.is_empty() && cache.inflight() == 0);
        // Post-restart fills behave normally (monotonic recency clock).
        filled(&mut cache, 3);
        assert!(matches!(cache.request(id(3), 0, SimTime::ZERO), Lookup::Hit { .. }));
    }

    #[test]
    fn checkpoint_round_trip_preserves_behaviour() {
        let mut cache = LruCache::new(2, true);
        filled(&mut cache, 1);
        for _ in 0..3 {
            cache.request(id(1), 0, SimTime::ZERO);
        }
        filled(&mut cache, 2);
        assert_eq!(cache.request(id(8), 4, SimTime::from_secs(2)), Lookup::Miss);
        assert_eq!(cache.request(id(8), 5, SimTime::from_secs(3)), Lookup::Delayed);
        let mut w = CkptWriter::new("test");
        cache.ckpt_write(&mut w);
        let text = w.finish();
        let mut restored = LruCache::new(2, true);
        let mut r = CkptReader::new(&text, "test").unwrap();
        restored.ckpt_read(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(restored.len(), cache.len());
        assert_eq!(restored.inflight(), 1);
        // The in-flight fetch still carries both waiters…
        let (waiters, evicted) = restored.fill(id(8), 9, SimTime::from_secs(4));
        let (expect_waiters, expect_evicted) = cache.fill(id(8), 9, SimTime::from_secs(4));
        assert_eq!(waiters, expect_waiters);
        // …and the MAD eviction decision sees identical uses/recency state.
        assert_eq!(evicted, expect_evicted);
    }

    #[test]
    #[should_panic(expected = "zero-capacity cache")]
    fn zero_capacity_is_rejected() {
        LruCache::new(0, false);
    }
}
