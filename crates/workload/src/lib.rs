//! Request-plane workload model for the CDN consistency simulator.
//!
//! The consistency plane (cdnc-core) models how *updates* reach edge
//! servers; this crate models the *requests* those edges serve, so the
//! simulator can answer the production question the paper stops short of:
//! how stale was the byte a real user got, and how long did they wait?
//!
//! * [`Catalog`] — Zipf-popularity object catalog with publish/perish
//!   churn and deterministic rank re-normalisation.
//! * [`LruCache`] — per-edge LRU cache with delayed-hit coalescing
//!   (concurrent misses share one origin fetch) and an optional MAD-aware
//!   eviction variant.
//!
//! Everything here is a pure function of a seeded [`cdnc_simcore::SimRng`]
//! stream and the request order, so the workload plane inherits the
//! simulator's bit-identical determinism across runs and worker counts.

pub mod cache;
pub mod catalog;

pub use cache::{Lookup, LruCache, Waiter};
pub use catalog::{Catalog, ObjectId};
