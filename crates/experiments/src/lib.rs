//! # cdnc-experiments
//!
//! One runner per figure of the paper. Each `figN` function regenerates the
//! corresponding figure's data — the same rows/series the paper plots — at a
//! configurable [`Scale`], and returns a [`FigureReport`] with the headline
//! numbers recorded in `EXPERIMENTS.md`.
//!
//! Run them via the `experiments` binary:
//!
//! ```text
//! cargo run -p cdnc-experiments --release -- fig6 --scale default
//! cargo run -p cdnc-experiments --release -- all  --scale smoke
//! ```

pub mod bench;
pub mod ctx;
pub mod divergence;
pub mod eval_figs;
pub mod ext_figs;
pub mod hat_figs;
pub mod html_report;
pub mod obs_out;
pub mod perf;
pub mod profile_out;
pub mod replay;
pub mod report;
pub mod scale;
pub mod timeprof_out;
pub mod trace_figs;
pub mod trace_out;
pub mod watch;

pub use ctx::RunCtx;
pub use report::FigureReport;
pub use scale::Scale;

use cdnc_obs::Registry;
use cdnc_trace::{crawl_with_obs_par, Trace};

/// Figure ids in paper order (§3 measurement).
pub const TRACE_FIGURES: [&str; 11] =
    ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"];
/// §4 evaluation figure ids.
pub const EVAL_FIGURES: [&str; 7] = ["fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20"];
/// §5 HAT figure ids.
pub const HAT_FIGURES: [&str; 4] = ["fig22a", "fig22b", "fig23", "fig24"];
/// Extension experiment ids (beyond the paper's figures).
pub const EXT_FIGURES: [&str; 6] =
    ["ext_failures", "ext_adaptive", "ext_policy", "ext_chaos", "ext_workload", "ext_churn"];

/// Builds the measurement trace for a scale (shared by all §3 figures).
pub fn build_trace(scale: Scale) -> Trace {
    build_trace_with_obs(scale, &Registry::disabled())
}

/// Builds the measurement trace with crawl instrumentation recording into
/// `obs` (poll counts, absence skips, skew-correction residuals, phase
/// timings).
pub fn build_trace_with_obs(scale: Scale, obs: &Registry) -> Trace {
    build_trace_ctx(RunCtx::new(scale), obs)
}

/// Builds the measurement trace under an execution context: the crawl seed
/// follows `ctx.replicate` and timeline construction fans out on `ctx.pool`.
/// The trace is bit-identical for every worker count.
pub fn build_trace_ctx(ctx: RunCtx, obs: &Registry) -> Trace {
    let mut cfg = ctx.scale.crawl_config();
    cfg.seed = ctx.seed(cfg.seed);
    crawl_with_obs_par(&cfg, obs, &ctx.pool)
}

/// Runs one figure by id. §3 figures need a trace: pass the output of
/// [`build_trace`] to share one across figures, or `None` to build it on
/// demand.
///
/// Returns `None` for an unknown id.
pub fn run_figure(id: &str, scale: Scale, trace: Option<&Trace>) -> Option<FigureReport> {
    run_figure_with_obs(id, scale, trace, &Registry::disabled())
}

/// Runs one figure with instrumentation recording into `obs`: the whole
/// figure runs under a span named after it, every simulation it launches
/// accumulates metrics into the registry, and an on-demand trace build is
/// instrumented too. Observation-only — the returned report is identical
/// to [`run_figure`]'s for the same inputs.
pub fn run_figure_with_obs(
    id: &str,
    scale: Scale,
    trace: Option<&Trace>,
    obs: &Registry,
) -> Option<FigureReport> {
    run_figure_ctx(id, RunCtx::new(scale), trace, obs)
}

/// Runs one figure under an execution context: simulation batches fan out
/// on `ctx.pool` (metrics absorbed in task order, so the registry contents
/// are bit-identical for every worker count) and every seed follows
/// `ctx.replicate`.
pub fn run_figure_ctx(
    id: &str,
    ctx: RunCtx,
    trace: Option<&Trace>,
    obs: &Registry,
) -> Option<FigureReport> {
    let _figure_span = obs.span(id);
    let report = match id {
        "fig3" | "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "fig9" | "fig10" | "fig11"
        | "fig12" | "fig13" => {
            let owned;
            let t = match trace {
                Some(t) => t,
                None => {
                    owned = build_trace_ctx(ctx, obs);
                    &owned
                }
            };
            // Allocation attribution: the §3 analysis pipeline (episodes,
            // TTL inference, tree tests) is the `analysis` bucket; the
            // on-demand trace build above tags itself `trace`.
            let _prof = cdnc_obs::profile::scope(cdnc_obs::profile::Subsystem::Analysis);
            match id {
                "fig3" => trace_figs::fig3(t),
                "fig4" => trace_figs::fig4(t),
                "fig5" => trace_figs::fig5(t),
                "fig6" => trace_figs::fig6(t),
                "fig7" => trace_figs::fig7(t),
                "fig8" => trace_figs::fig8(t),
                "fig9" => trace_figs::fig9(t),
                "fig10" => trace_figs::fig10(t),
                "fig11" => trace_figs::fig11(t),
                "fig12" => trace_figs::fig12(t),
                _ => trace_figs::fig13(t),
            }
        }
        "fig14" => eval_figs::fig14(ctx, obs),
        "fig15" => eval_figs::fig15(ctx, obs),
        "fig16" => eval_figs::fig16(ctx, obs),
        "fig17" => eval_figs::fig17(ctx, obs),
        "fig18" => eval_figs::fig18(ctx, obs),
        "fig19" => eval_figs::fig19(ctx, obs),
        "fig20" => eval_figs::fig20(ctx, obs),
        "fig22a" => hat_figs::fig22a(ctx, obs),
        "fig22b" => hat_figs::fig22b(ctx, obs),
        "fig23" => hat_figs::fig23(ctx, obs),
        "fig24" => hat_figs::fig24(ctx, obs),
        "ext_failures" => ext_figs::ext_failures(ctx, obs),
        "ext_adaptive" => ext_figs::ext_adaptive(ctx, obs),
        "ext_policy" => ext_figs::ext_policy(ctx, obs),
        "ext_chaos" => ext_figs::ext_chaos(ctx, obs),
        "ext_workload" => ext_figs::ext_workload(ctx, obs),
        "ext_churn" => ext_figs::ext_churn(ctx, obs),
        _ => return None,
    };
    Some(report)
}

/// Runs every figure at the given scale, in paper order.
pub fn run_all(scale: Scale) -> Vec<FigureReport> {
    run_all_ctx(RunCtx::new(scale), &Registry::disabled())
}

/// Runs every figure under an execution context, in paper order. The §3
/// trace is built once per call and shared across the trace figures.
pub fn run_all_ctx(ctx: RunCtx, obs: &Registry) -> Vec<FigureReport> {
    let trace = build_trace_ctx(ctx, obs);
    let mut out = Vec::new();
    for id in TRACE_FIGURES {
        out.push(run_figure_ctx(id, ctx, Some(&trace), obs).expect("known id"));
    }
    for id in EVAL_FIGURES.iter().chain(&HAT_FIGURES).chain(&EXT_FIGURES) {
        out.push(run_figure_ctx(id, ctx, None, obs).expect("known id"));
    }
    out
}

/// Runs one figure `seeds` times — replicate 0 is the canonical run, each
/// further replicate re-derives every seed through its index — and folds
/// the runs into one report whose keyvals carry the mean plus a
/// `<name>__spread` half-range. One replicate returns the plain report.
pub fn run_figure_replicated(
    id: &str,
    ctx: RunCtx,
    seeds: u64,
    obs: &Registry,
) -> Option<FigureReport> {
    let runs: Vec<FigureReport> = (0..seeds.max(1))
        .map(|r| run_figure_ctx(id, ctx.replicate(r), None, obs))
        .collect::<Option<_>>()?;
    Some(report::aggregate_replicates(&runs))
}

/// Runs every figure `seeds` times (one shared §3 trace per replicate) and
/// aggregates each figure across replicates as [`run_figure_replicated`]
/// does.
pub fn run_all_replicated(ctx: RunCtx, seeds: u64, obs: &Registry) -> Vec<FigureReport> {
    let per_replicate: Vec<Vec<FigureReport>> =
        (0..seeds.max(1)).map(|r| run_all_ctx(ctx.replicate(r), obs)).collect();
    (0..per_replicate[0].len())
        .map(|i| {
            let runs: Vec<FigureReport> =
                per_replicate.iter().map(|reports| reports[i].clone()).collect();
            report::aggregate_replicates(&runs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_rejected() {
        assert!(run_figure("fig99", Scale::Smoke, None).is_none());
    }

    #[test]
    fn trace_figures_run_from_shared_trace() {
        let trace = build_trace(Scale::Smoke);
        for id in ["fig3", "fig7"] {
            let r = run_figure(id, Scale::Smoke, Some(&trace)).unwrap();
            assert_eq!(r.id, id);
            assert!(!r.keyvals.is_empty(), "{id} must produce headline numbers");
        }
    }
}
