//! Live run-health rendering: `experiments watch <dir>` tails the
//! `<figure>.health.json` heartbeats that `--health` runs write and renders
//! them as one status table — figure, wall time, event throughput,
//! sim-time progress against the horizon, ETA, resident memory, and stall
//! count. Without `--once` the table redraws every refresh interval until
//! every watched run reports `finished`.

use cdnc_obs::{json, Json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How often the live view redraws.
pub const REFRESH: Duration = Duration::from_millis(500);

/// One figure's latest heartbeat, parsed from `<figure>.health.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRow {
    pub figure: String,
    pub wall_s: f64,
    pub events: u64,
    pub events_per_s: f64,
    pub recent_events_per_s: f64,
    pub sims_done: u64,
    pub sims_total: u64,
    pub sim_time_us: u64,
    pub horizon_us: u64,
    pub eta_s: Option<f64>,
    pub vm_rss_kb: u64,
    pub stalls: u64,
    pub finished: bool,
}

impl HealthRow {
    /// Sim-time progress toward the horizon in `[0, 1]`, or `None` when no
    /// horizon was announced.
    pub fn progress(&self) -> Option<f64> {
        (self.horizon_us > 0)
            .then(|| (self.sim_time_us as f64 / self.horizon_us as f64).clamp(0.0, 1.0))
    }
}

fn parse_row(doc: &Json) -> Option<HealthRow> {
    let num = |key: &str| doc.get(key).and_then(Json::as_f64);
    Some(HealthRow {
        figure: doc.get("figure")?.as_str()?.to_owned(),
        wall_s: num("wall_s")?,
        events: num("events")? as u64,
        events_per_s: num("events_per_s").unwrap_or(0.0),
        recent_events_per_s: num("recent_events_per_s").unwrap_or(0.0),
        sims_done: num("sims_done").unwrap_or(0.0) as u64,
        sims_total: num("sims_total").unwrap_or(0.0) as u64,
        sim_time_us: num("sim_time_us").unwrap_or(0.0) as u64,
        horizon_us: num("horizon_us").unwrap_or(0.0) as u64,
        eta_s: num("eta_s"),
        vm_rss_kb: num("vm_rss_kb").unwrap_or(0.0) as u64,
        stalls: num("stalls").unwrap_or(0.0) as u64,
        finished: matches!(doc.get("finished"), Some(Json::Bool(true))),
    })
}

/// Loads every `*.health.json` under `dir` (non-recursive), sorted by
/// figure id. Heartbeats are written atomically (tmp + rename), so a
/// parse failure means a foreign file — those are skipped, not errors.
pub fn load_rows(dir: &Path) -> Result<Vec<HealthRow>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(".health.json"))
        })
        .collect();
    paths.sort();
    let mut rows = Vec::new();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        if let Some(row) = json::parse(&text).ok().as_ref().and_then(parse_row) {
            rows.push(row);
        }
    }
    rows.sort_by(|a, b| a.figure.cmp(&b.figure));
    Ok(rows)
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k/s", rate / 1e3)
    } else {
        format!("{rate:.0}/s")
    }
}

fn fmt_duration(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.0}h{:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// Renders the status table for a set of heartbeat rows. Stable column
/// layout; the final column is `done`, `stalled` (recent silence with
/// stalls recorded), or `running`.
pub fn render(rows: &[HealthRow]) -> String {
    let mut out = String::new();
    let width = rows.iter().map(|r| r.figure.len()).max().unwrap_or(6).max(6);
    let _ = writeln!(
        out,
        "{:<width$}  {:>8}  {:>10}  {:>9}  {:>6}  {:>7}  {:>8}  {:>6}  state",
        "figure", "wall", "events", "rate", "prog", "eta", "rss", "stalls"
    );
    for r in rows {
        let prog = match (r.finished, r.progress()) {
            (true, _) => "100%".to_owned(),
            (false, Some(p)) => format!("{:.0}%", p * 100.0),
            (false, None) => "-".to_owned(),
        };
        let eta = match (r.finished, r.eta_s) {
            (true, _) => "-".to_owned(),
            (false, Some(s)) => fmt_duration(s),
            (false, None) => "?".to_owned(),
        };
        let state = if r.finished {
            "done"
        } else if r.stalls > 0 && r.recent_events_per_s == 0.0 {
            "stalled"
        } else {
            "running"
        };
        let _ = writeln!(
            out,
            "{:<width$}  {:>8}  {:>10}  {:>9}  {:>6}  {:>7}  {:>7}M  {:>6}  {state}",
            r.figure,
            fmt_duration(r.wall_s),
            r.events,
            fmt_rate(r.recent_events_per_s.max(0.0)),
            prog,
            eta,
            r.vm_rss_kb / 1024,
            r.stalls,
        );
    }
    out
}

/// Whether every watched run has reported its final heartbeat.
pub fn all_finished(rows: &[HealthRow]) -> bool {
    !rows.is_empty() && rows.iter().all(|r| r.finished)
}

/// The `watch` subcommand. `once` renders the current state and returns
/// (CI-friendly); otherwise the table redraws in place every [`REFRESH`]
/// until every run reports `finished`. Returns an error when the
/// directory is unreadable; an empty directory renders a hint instead
/// (heartbeats may simply not have landed yet).
pub fn run(dir: &Path, once: bool) -> Result<(), String> {
    loop {
        let rows = load_rows(dir)?;
        let body = if rows.is_empty() {
            format!("no *.health.json under {} yet (run with --health)\n", dir.display())
        } else {
            render(&rows)
        };
        if once {
            print!("{body}");
            return Ok(());
        }
        // ANSI clear + home keeps the table in place across redraws.
        print!("\x1b[2J\x1b[H{body}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if all_finished(&rows) {
            return Ok(());
        }
        std::thread::sleep(REFRESH);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_obs::{HealthMonitor, HealthMonitorConfig, Registry};
    use std::time::Duration;

    fn write_health(dir: &Path, figure: &str, finished: bool, stalls: u64) {
        let doc = Json::obj()
            .field("figure", figure)
            .field("wall_s", 12.5)
            .field("events", 10_000u64)
            .field("events_per_s", 800.0)
            .field("recent_events_per_s", if finished { 0.0 } else { 750.0 })
            .field("sims_done", 3u64)
            .field("sims_total", 4u64)
            .field("sim_time_us", 500_000u64)
            .field("horizon_us", 1_000_000u64)
            .field("eta_s", 12.5)
            .field("vm_rss_kb", 4096u64)
            .field("stalls", stalls)
            .field("finished", finished);
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(format!("{figure}.health.json")), doc.to_pretty()).unwrap();
    }

    #[test]
    fn rows_load_sorted_and_render_as_a_table() {
        let dir = std::env::temp_dir().join(format!("cdnc-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_health(&dir, "fig15", false, 0);
        write_health(&dir, "fig14", true, 1);
        // Foreign and non-health files are ignored.
        std::fs::write(dir.join("summary.json"), "{}").unwrap();
        std::fs::write(dir.join("junk.health.json"), "not json").unwrap();
        let rows = load_rows(&dir).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].figure, "fig14");
        assert!(rows[0].finished);
        assert_eq!(rows[0].progress(), Some(0.5));
        assert!(!all_finished(&rows));
        let table = render(&rows);
        assert!(table.contains("fig14"), "table:\n{table}");
        assert!(table.contains("done"), "table:\n{table}");
        assert!(table.contains("running"), "table:\n{table}");
        assert!(table.contains("50%"), "table:\n{table}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finished_set_detected_and_stalls_flagged() {
        let dir = std::env::temp_dir().join(format!("cdnc-watch-done-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_health(&dir, "fig14", true, 0);
        write_health(&dir, "fig15", true, 2);
        let rows = load_rows(&dir).unwrap();
        assert!(all_finished(&rows));
        // A stalled (unfinished, silent, stalls > 0) run renders as such.
        write_health(&dir, "fig16", false, 1);
        let mut rows = load_rows(&dir).unwrap();
        rows[2].recent_events_per_s = 0.0;
        assert!(render(&rows).contains("stalled"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watch_reads_real_monitor_heartbeats() {
        let dir = std::env::temp_dir().join(format!("cdnc-watch-live-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let reg = Registry::enabled();
        reg.enable_health();
        let health = reg.health();
        health.set_horizon(1_000_000);
        health.add_sims(2);
        health.tick(250_000);
        let monitor = HealthMonitor::start(
            &reg,
            HealthMonitorConfig {
                figure: "fig14".into(),
                path: dir.join("fig14.health.json"),
                interval: Duration::from_millis(10),
                stall_after: Duration::from_secs(60),
            },
        )
        .expect("health armed");
        monitor.stop();
        let rows = load_rows(&dir).unwrap();
        assert_eq!(rows.len(), 1, "monitor must leave a final heartbeat");
        assert_eq!(rows[0].figure, "fig14");
        assert!(rows[0].finished, "stop() writes a finished heartbeat");
        assert_eq!(rows[0].sims_total, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
