//! CLI entry point: regenerate paper figures, persist crawl traces, and
//! render measurement verdicts.
//!
//! ```text
//! experiments <figure-id | all | list> [--scale smoke|default|paper]
//!                                      [--obs] [--obs-log <level>] [--obs-dir <dir>]
//! experiments crawl <out.bin>          [--scale …]   # save a crawl trace
//! experiments verdict <trace.bin>                    # §3.6 verdict on a saved trace
//! ```
//!
//! With `--obs`, every figure run collects metrics and phase timings into a
//! run artifact at `<obs-dir>/<figure>.json`, a phase-timing table prints at
//! the end, and `all` additionally writes a consolidated
//! `<obs-dir>/summary.json`. `--obs-log debug|info|warn` also streams
//! structured events into `<obs-dir>/<figure>.jsonl`.

use cdnc_experiments::obs_out::{
    summary_entry, timing_table, write_figure_artifact, write_summary, ObsSettings,
};
use cdnc_experiments::{
    build_trace_with_obs, run_figure_with_obs, Scale, EVAL_FIGURES, EXT_FIGURES, HAT_FIGURES,
    TRACE_FIGURES,
};
use cdnc_obs::Level;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: experiments <figure-id | all | list> [--scale smoke|default|paper]");
    eprintln!("                   [--obs] [--obs-log debug|info|warn] [--obs-dir <dir>]");
    eprintln!("       experiments crawl <out.bin> [--scale …]   write a crawl trace to disk");
    eprintln!("       experiments verdict <trace.bin>           analyse a saved trace (§3.6)");
    eprintln!("figure ids:");
    for id in TRACE_FIGURES.iter().chain(&EVAL_FIGURES).chain(&HAT_FIGURES).chain(&EXT_FIGURES) {
        eprintln!("  {id}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut scale = Scale::Default;
    let mut obs = ObsSettings::off();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Some(parsed) = Scale::parse(value) else {
                    eprintln!("unknown scale: {value}");
                    return usage();
                };
                scale = parsed;
                i += 2;
            }
            "--obs" => {
                obs.enabled = true;
                i += 1;
            }
            "--obs-log" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Some(level) = Level::parse(value) else {
                    eprintln!("unknown event level: {value}");
                    return usage();
                };
                obs.enabled = true;
                obs.log_level = Some(level);
                i += 2;
            }
            "--obs-dir" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                obs.dir = PathBuf::from(value);
                i += 2;
            }
            other if positional.len() < 2 => {
                positional.push(other.to_owned());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument: {other}");
                return usage();
            }
        }
    }
    let Some(target) = positional.first().cloned() else { return usage() };

    match target.as_str() {
        "list" => {
            for id in
                TRACE_FIGURES.iter().chain(&EVAL_FIGURES).chain(&HAT_FIGURES).chain(&EXT_FIGURES)
            {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let started = std::time::Instant::now();
            let mut entries = Vec::new();
            println!("building measurement trace ({scale:?} scale)…");
            let crawl_reg = obs.registry();
            let crawl_started = std::time::Instant::now();
            let trace = build_trace_with_obs(scale, &crawl_reg);
            if obs.enabled {
                entries.push(summary_entry(
                    "crawl",
                    crawl_started.elapsed().as_secs_f64(),
                    &crawl_reg,
                ));
            }
            let mut run_one = |id: &str, shared: Option<&cdnc_trace::Trace>| {
                let reg = obs.registry();
                let fig_started = std::time::Instant::now();
                let report = run_figure_with_obs(id, scale, shared, &reg).expect("known id");
                print!("{report}");
                let wall_s = fig_started.elapsed().as_secs_f64();
                if obs.enabled {
                    entries.push(summary_entry(id, wall_s, &reg));
                    if let Err(e) =
                        write_figure_artifact(&obs.dir, id, scale, &report, wall_s, &reg)
                    {
                        eprintln!("cannot write artifact for {id}: {e}");
                    }
                }
            };
            for id in TRACE_FIGURES {
                run_one(id, Some(&trace));
            }
            for id in EVAL_FIGURES.iter().chain(&HAT_FIGURES).chain(&EXT_FIGURES) {
                run_one(id, None);
            }
            if obs.enabled {
                match write_summary(&obs.dir, scale, entries) {
                    Ok(path) => println!("observability summary: {}", path.display()),
                    Err(e) => eprintln!("cannot write summary: {e}"),
                }
            }
            println!("all figures regenerated in {:.1?}", started.elapsed());
            ExitCode::SUCCESS
        }
        "crawl" => {
            let Some(path) = positional.get(1) else {
                eprintln!("crawl needs an output path");
                return usage();
            };
            println!("crawling at {scale:?} scale…");
            let reg = obs.registry();
            let trace = build_trace_with_obs(scale, &reg);
            if let Some(table) = obs.enabled.then(|| timing_table(&reg)).flatten() {
                println!("--- phase timings ---\n{table}");
            }
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = cdnc_trace::write_trace(&trace, std::io::BufWriter::new(file)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {path}: {} servers × {} days, {} poll records",
                trace.servers.len(),
                trace.days.len(),
                trace.total_server_polls()
            );
            ExitCode::SUCCESS
        }
        "verdict" => {
            let Some(path) = positional.get(1) else {
                eprintln!("verdict needs a trace path");
                return usage();
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cdnc_trace::read_trace(std::io::BufReader::new(file)) {
                Ok(trace) => {
                    println!("{}", cdnc_analysis::analyze(&trace));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        id => {
            let reg = obs.registry();
            let started = std::time::Instant::now();
            match run_figure_with_obs(id, scale, None, &reg) {
                Some(report) => {
                    print!("{report}");
                    if obs.enabled {
                        let wall_s = started.elapsed().as_secs_f64();
                        match write_figure_artifact(&obs.dir, id, scale, &report, wall_s, &reg) {
                            Ok(path) => println!("run artifact: {}", path.display()),
                            Err(e) => eprintln!("cannot write artifact for {id}: {e}"),
                        }
                        if let Some(table) = timing_table(&reg) {
                            println!("--- phase timings ---\n{table}");
                        }
                    }
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown figure id: {id}");
                    usage()
                }
            }
        }
    }
}
