//! CLI entry point: regenerate paper figures, persist crawl traces, and
//! render measurement verdicts.
//!
//! ```text
//! experiments <figure-id | all | list> [--scale smoke|default|paper]
//!                                      [--jobs <n>] [--seeds <k>]
//!                                      [--obs] [--obs-log <level>] [--obs-dir <dir>]
//!                                      [--trace] [--trace-dir <dir>] [--trace-threshold <s>]
//!                                      [--series] [--series-cadence <s>]
//!                                      [--digest] [--digest-every <n>] [--digest-perturb <i>]
//!                                      [--health] [--stall-after <s>]
//! experiments crawl <out.bin>          [--scale …] [--jobs <n>]   # save a crawl trace
//! experiments verdict <trace.bin>                    # §3.6 verdict on a saved trace
//! experiments checkpoint <out.ckpt>    [--scheme <key>] [--intensity <f>]
//!                                      [--flash] [--at <secs>] [--scale …]
//! experiments replay <ckpt> [--until <secs>]         # restore + self-verify
//! experiments obs-diff <dirA> <dirB>                 # compare runs, wall-clock ignored
//! experiments divergence <a.digest.json> <b.digest.json>  # bisect to first diverging event
//! experiments watch <dir> [--once]                   # live run-health status table
//! experiments report [--obs-dir <d>] [--out <d>]     # render artifacts as static HTML
//! experiments profile <figure-id>      [--scale …] [--jobs <n>] [--spike-multiple <f>]
//! experiments timeprof <figure-id>     [--scale …] [--jobs <n>]  # time profile + flamegraph
//! experiments bench [--out <f>] [--label <name>]     # run the perf workload
//!                   [--figs <id,…>] [--scale-sweep]  # narrow stages / emit scale curve
//! experiments bench-diff <base> <cand> [--threshold <f>]  # fail on regressions
//! experiments trace summary <t.json>                 # store-wide tracing statistics
//! experiments trace critical-path <t.json>           # per-method critical paths
//! experiments trace inspect <update-id> <t.json>     # one update's propagation tree
//! ```
//!
//! `--jobs n` fans simulation batches and crawl timeline construction out on
//! `n` worker threads (`0` = one per core). Results are bit-identical for
//! every `n` — parallelism only changes wall time. `--seeds k` runs every
//! figure `k` times on independently derived seed streams and reports
//! mean ± half-range per headline number.
//!
//! With `--obs`, every figure run collects metrics and phase timings into a
//! run artifact at `<obs-dir>/<figure>.json`, a phase-timing table prints at
//! the end, and `all` additionally writes a consolidated
//! `<obs-dir>/summary.json`. `--obs-log debug|info|warn` also streams
//! structured events into `<obs-dir>/<figure>.jsonl`.
//!
//! With `--trace`, every simulation records a causal span per update journey
//! (publish → hops → adoptions → user views); each figure writes
//! `<trace-dir>/<figure>.trace.json` in Chrome trace-event format (loadable
//! in ui.perfetto.dev or chrome://tracing), anomalous updates are dumped in
//! full under `<trace-dir>/flightrec/`, and a per-method critical-path table
//! prints after the run. The `trace` subcommand re-reads those files.
//!
//! With `--series`, a sim-time sampler (cadence `--series-cadence`, default
//! 0.25 s sim time) additionally records queue depth, in-flight traffic,
//! staleness, and mode-occupancy trajectories into
//! `<obs-dir>/<figure>.series.json`. `report` renders every artifact under
//! an obs dir into a self-contained static HTML report; `bench` runs a
//! fixed fully-instrumented workload into a `BENCH_<label>.json`, and
//! `bench-diff` exits non-zero when a stage's wall time regresses past the
//! threshold (default +30%).
//!
//! `checkpoint` runs one node-lifecycle sweep cell (an `ext_churn`
//! scheme × churn-intensity configuration; `--flash` arms the scheduled
//! supernode-kill incident) until sim time `--at` and serializes the
//! paused simulator — scheduler queue, RNG streams, node/tree/cache
//! state, digest segment — into a versioned artifact. `replay` restores
//! the artifact (the header rebuilds the exact configuration, so no flags
//! need to match), runs it forward — to the horizon, or only to
//! `--until` for anomaly-window replay — and self-verifies against an
//! uninterrupted run, printing greppable `replay_chain_match=` /
//! `replay_report_match=` verdict lines (exit 0 = bit-identical).
//!
//! With `--digest`, every scheduled event folds into a chained 64-bit
//! determinism digest with periodic checkpoints, written per figure to
//! `<obs-dir>/<figure>.digest.json` (bit-identical for every `--jobs`
//! count). `divergence` compares two such files and, when the chains
//! disagree, binary-searches the checkpoints and re-runs both recorded
//! scenarios with an event trap to print the exact first diverging event
//! (exit 0 = identical, 1 = diverged, 2 = error). With `--health`, a
//! heartbeat thread samples throughput, sim-time progress, ETA, and RSS
//! into `<obs-dir>/<figure>.health.json` and a stall watchdog flags silent
//! runs; `watch <dir>` tails those files as a live status table.

use cdnc_experiments::bench::{
    bench_diff, bench_table, is_bench_stage, run_bench_with, BenchOptions, DEFAULT_BENCH_THRESHOLD,
};
use cdnc_experiments::divergence;
use cdnc_experiments::ext_figs::{churn_scheme, CHURN_SCHEME_KEYS};
use cdnc_experiments::html_report::generate_report;
use cdnc_experiments::obs_out::{
    diff_artifact_dirs, summary_entry, timing_table, write_figure_artifact, write_figure_digest,
    write_figure_series, write_figure_workload, write_summary, ObsSettings,
};
use cdnc_experiments::perf::CountingAlloc;
use cdnc_experiments::profile_out::{profile_table, write_profile_artifact};
use cdnc_experiments::replay::{self, ReplaySpec};
use cdnc_experiments::report::aggregate_replicates;
use cdnc_experiments::timeprof_out::{timeprof_table, write_timeprof_artifact};
use cdnc_experiments::trace_out::{
    critical_path_table, inspect_text, load_store, summary_text, write_figure_trace,
    FLIGHTREC_SUBDIR,
};
use cdnc_experiments::watch;
use cdnc_experiments::{
    build_trace_ctx, run_figure_ctx, run_figure_replicated, FigureReport, RunCtx, Scale,
    EVAL_FIGURES, EXT_FIGURES, HAT_FIGURES, TRACE_FIGURES,
};
use cdnc_obs::Level;
use cdnc_par::Pool;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Counting allocator behind the total-allocation estimate reported in
/// `summary.json` and `BENCH_*.json` (one relaxed atomic add per
/// allocation; see `perf`).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn usage() -> ExitCode {
    eprintln!("usage: experiments <figure-id | all | list> [--scale smoke|default|paper]");
    eprintln!("                   [--jobs <n>] [--seeds <k>]");
    eprintln!("                   [--obs] [--obs-log debug|info|warn] [--obs-dir <dir>]");
    eprintln!("                   [--trace] [--trace-dir <dir>] [--trace-threshold <seconds>]");
    eprintln!("                   [--series] [--series-cadence <seconds>]");
    eprintln!("                   [--digest] [--digest-every <events>] [--digest-perturb <index>]");
    eprintln!("                   [--health] [--stall-after <seconds>]");
    eprintln!("       experiments crawl <out.bin> [--scale …]   write a crawl trace to disk");
    eprintln!("       experiments verdict <trace.bin>           analyse a saved trace (§3.6)");
    eprintln!("       experiments checkpoint <out.ckpt> [--scheme <key>] [--intensity <f>]");
    eprintln!("                              [--flash] [--at <secs>] [--scale …]");
    eprintln!("                                                 pause a churn-cell run at a sim");
    eprintln!("                                                 time and save its full state");
    eprintln!("       experiments replay <ckpt> [--until <secs>]  restore a checkpoint, run it");
    eprintln!("                                                 forward, and self-verify against");
    eprintln!("                                                 an uninterrupted run (exit 0 =");
    eprintln!("                                                 bit-identical)");
    eprintln!("       experiments obs-diff <dirA> <dirB>        compare two artifact dirs,");
    eprintln!("                                                 ignoring wall-clock fields");
    eprintln!("                                                 (exit 0 = match, 1 = differ)");
    eprintln!("       experiments divergence <a.digest.json> <b.digest.json>");
    eprintln!("                                                 bisect two audit trails to the");
    eprintln!("                                                 first diverging event (exit 0 =");
    eprintln!(
        "                                                 identical, 1 = diverged, 2 = error)"
    );
    eprintln!("       experiments watch <dir> [--once]          live run-health status table");
    eprintln!("                                                 for *.health.json heartbeats");
    eprintln!("       experiments report [--obs-dir <dir>] [--out <dir>]");
    eprintln!("                                                 render artifacts as static HTML");
    eprintln!("       experiments profile <figure-id> [--scale …] [--jobs <n>]");
    eprintln!("                          [--spike-multiple <f>]   per-subsystem memory profile");
    eprintln!("       experiments timeprof <figure-id> [--scale …] [--jobs <n>]");
    eprintln!("                                                 hot-path time profile: frame");
    eprintln!("                                                 tree, handler timing, worker");
    eprintln!("                                                 use, flamegraph .folded");
    eprintln!("       experiments bench [--out <file>] [--label <name>] [--scale …] [--jobs <n>]");
    eprintln!("                         [--figs <id,…>] [--scale-sweep]");
    eprintln!("                                                 run the performance workload");
    eprintln!("       experiments bench-diff <baseline.json> <candidate.json> [--threshold <f>]");
    eprintln!("                                                 fail on wall-time regressions");
    eprintln!("       experiments trace summary <t.json>        tracing statistics for a run");
    eprintln!("       experiments trace critical-path <t.json>  per-method critical paths");
    eprintln!("       experiments trace inspect <update> <t.json>  one update's full tree");
    eprintln!("scheme keys (checkpoint): {}", CHURN_SCHEME_KEYS.join(", "));
    eprintln!("figure ids:");
    for id in TRACE_FIGURES.iter().chain(&EVAL_FIGURES).chain(&HAT_FIGURES).chain(&EXT_FIGURES) {
        eprintln!("  {id}");
    }
    ExitCode::FAILURE
}

/// Starts the run-health heartbeat for one figure when `--health` armed
/// the registry: `<obs-dir>/<figure>.health.json`, refreshed twice a
/// second, with the stall watchdog at `--stall-after`. No-op (`None`)
/// otherwise.
fn start_health(
    obs: &ObsSettings,
    id: &str,
    reg: &cdnc_obs::Registry,
) -> Option<cdnc_obs::HealthMonitor> {
    cdnc_obs::HealthMonitor::start(
        reg,
        cdnc_obs::HealthMonitorConfig {
            figure: id.to_owned(),
            path: obs.dir.join(format!("{id}.health.json")),
            interval: std::time::Duration::from_millis(cdnc_obs::DEFAULT_HEARTBEAT_MS),
            stall_after: std::time::Duration::from_secs_f64(obs.stall_after_s),
        },
    )
}

/// Writes one figure's determinism digest (when `--digest` armed the
/// registry) and prints where it went.
fn emit_digest(obs: &ObsSettings, id: &str, scale: Scale, reg: &cdnc_obs::Registry) {
    match write_figure_digest(&obs.dir, id, scale, reg) {
        Ok(Some(path)) => println!("digest: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("cannot write digest for {id}: {e}"),
    }
}

/// Writes one figure's trace JSON and flight-recorder dumps, then prints
/// where they went and the per-method critical-path table.
fn emit_trace(obs: &ObsSettings, id: &str, reg: &cdnc_obs::Registry) {
    let store = reg.tracer().store();
    match write_figure_trace(obs, id, &store) {
        Ok(Some((path, dumps))) => {
            println!("trace: {}", path.display());
            if dumps > 0 {
                println!(
                    "flight recorder: {dumps} anomalous update(s) dumped under {}",
                    obs.trace_dir().join(FLIGHTREC_SUBDIR).display()
                );
            }
            if let Some(table) = critical_path_table(&store) {
                println!("--- critical paths ---\n{table}");
            }
        }
        Ok(None) => {}
        Err(e) => eprintln!("cannot write trace for {id}: {e}"),
    }
}

fn main() -> ExitCode {
    CountingAlloc::mark_installed();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut scale = Scale::Default;
    let mut jobs = 1usize;
    let mut seeds = 1u64;
    let mut obs = ObsSettings::off();
    let mut out: Option<PathBuf> = None;
    let mut label: Option<String> = None;
    let mut threshold = DEFAULT_BENCH_THRESHOLD;
    let mut bench_opts = BenchOptions::default();
    let mut once = false;
    let mut scheme_key = "hat".to_owned();
    let mut intensity = 0.8f64;
    let mut flash = false;
    let mut at_s = 240.0f64;
    let mut until_s: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Some(parsed) = Scale::parse(value) else {
                    eprintln!("unknown scale: {value}");
                    return usage();
                };
                scale = parsed;
                i += 2;
            }
            "--jobs" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(n) = value.parse::<usize>() else {
                    eprintln!("--jobs needs a worker count (0 = one per core), got: {value}");
                    return usage();
                };
                jobs = n;
                i += 2;
            }
            "--seeds" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(k) = value.parse::<u64>() else {
                    eprintln!("--seeds needs a replicate count, got: {value}");
                    return usage();
                };
                if k == 0 {
                    eprintln!("--seeds needs at least one replicate");
                    return usage();
                }
                seeds = k;
                i += 2;
            }
            "--obs" => {
                obs.enabled = true;
                i += 1;
            }
            "--obs-log" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Some(level) = Level::parse(value) else {
                    eprintln!("unknown event level: {value}");
                    return usage();
                };
                obs.enabled = true;
                obs.log_level = Some(level);
                i += 2;
            }
            "--obs-dir" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                obs.dir = PathBuf::from(value);
                i += 2;
            }
            "--trace" => {
                obs.trace = true;
                i += 1;
            }
            "--trace-dir" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                obs.trace = true;
                obs.trace_dir = Some(PathBuf::from(value));
                i += 2;
            }
            "--trace-threshold" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(secs) = value.parse::<f64>() else {
                    eprintln!("--trace-threshold needs seconds, got: {value}");
                    return usage();
                };
                obs.trace = true;
                obs.trace_threshold_s = secs;
                i += 2;
            }
            "--series" => {
                obs.series = true;
                i += 1;
            }
            "--series-cadence" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(secs) = value.parse::<f64>() else {
                    eprintln!("--series-cadence needs seconds of simulated time, got: {value}");
                    return usage();
                };
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("--series-cadence must be positive, got: {value}");
                    return usage();
                }
                obs.series = true;
                obs.series_cadence_us = (secs * 1e6) as u64;
                i += 2;
            }
            "--digest" => {
                obs.digest = true;
                i += 1;
            }
            "--digest-every" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(n) = value.parse::<u64>() else {
                    eprintln!("--digest-every needs an event count, got: {value}");
                    return usage();
                };
                if n == 0 {
                    eprintln!("--digest-every must be at least 1");
                    return usage();
                }
                obs.digest = true;
                obs.digest_every = n;
                i += 2;
            }
            "--digest-perturb" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(n) = value.parse::<u64>() else {
                    eprintln!("--digest-perturb needs an event index, got: {value}");
                    return usage();
                };
                obs.digest = true;
                obs.digest_perturb = Some(n);
                i += 2;
            }
            "--health" => {
                obs.health = true;
                i += 1;
            }
            "--stall-after" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(secs) = value.parse::<f64>() else {
                    eprintln!("--stall-after needs seconds, got: {value}");
                    return usage();
                };
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("--stall-after must be positive, got: {value}");
                    return usage();
                }
                obs.health = true;
                obs.stall_after_s = secs;
                i += 2;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            "--scheme" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                if churn_scheme(value).is_none() {
                    eprintln!("unknown scheme: {value} (one of: {})", CHURN_SCHEME_KEYS.join(", "));
                    return usage();
                }
                scheme_key = value.clone();
                i += 2;
            }
            "--intensity" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(f) = value.parse::<f64>() else {
                    eprintln!("--intensity needs a churn intensity in [0, 1], got: {value}");
                    return usage();
                };
                if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                    eprintln!("--intensity must be in [0, 1], got: {value}");
                    return usage();
                }
                intensity = f;
                i += 2;
            }
            "--flash" => {
                flash = true;
                i += 1;
            }
            "--at" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(secs) = value.parse::<f64>() else {
                    eprintln!("--at needs seconds of simulated time, got: {value}");
                    return usage();
                };
                if !secs.is_finite() || secs < 0.0 {
                    eprintln!("--at must be non-negative, got: {value}");
                    return usage();
                }
                at_s = secs;
                i += 2;
            }
            "--until" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(secs) = value.parse::<f64>() else {
                    eprintln!("--until needs seconds of simulated time, got: {value}");
                    return usage();
                };
                if !secs.is_finite() || secs < 0.0 {
                    eprintln!("--until must be non-negative, got: {value}");
                    return usage();
                }
                until_s = Some(secs);
                i += 2;
            }
            "--out" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                out = Some(PathBuf::from(value));
                i += 2;
            }
            "--label" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                label = Some(value.clone());
                i += 2;
            }
            "--spike-multiple" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(f) = value.parse::<f64>() else {
                    eprintln!("--spike-multiple needs a factor, got: {value}");
                    return usage();
                };
                if !f.is_finite() || f <= 1.0 {
                    eprintln!("--spike-multiple must be a finite factor above 1, got: {value}");
                    return usage();
                }
                obs.spike_multiple = f;
                i += 2;
            }
            "--figs" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let figs: Vec<String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if figs.is_empty() {
                    eprintln!("--figs needs a comma-separated stage list, got: {value}");
                    return usage();
                }
                if let Some(bad) = figs.iter().find(|id| !is_bench_stage(id)) {
                    eprintln!("--figs: unknown stage {bad} (stages: crawl or any figure id)");
                    return usage();
                }
                bench_opts.figs = Some(figs);
                i += 2;
            }
            "--scale-sweep" => {
                bench_opts.scale_sweep = true;
                i += 1;
            }
            "--threshold" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Ok(f) = value.parse::<f64>() else {
                    eprintln!("--threshold needs a fraction (0.3 = 30% slower tolerated)");
                    return usage();
                };
                threshold = f;
                i += 2;
            }
            other
                if positional.len() < 2
                    || (positional.first().is_some_and(|p| p == "trace")
                        && positional.len() < 4)
                    || (positional.first().is_some_and(|p| p == "obs-diff")
                        && positional.len() < 3)
                    || (positional.first().is_some_and(|p| p == "bench-diff")
                        && positional.len() < 3)
                    || (positional.first().is_some_and(|p| p == "divergence")
                        && positional.len() < 3) =>
            {
                positional.push(other.to_owned());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument: {other}");
                return usage();
            }
        }
    }
    let Some(target) = positional.first().cloned() else { return usage() };
    let ctx = RunCtx::with_pool(scale, Pool::new(jobs));

    match target.as_str() {
        "list" => {
            for id in
                TRACE_FIGURES.iter().chain(&EVAL_FIGURES).chain(&HAT_FIGURES).chain(&EXT_FIGURES)
            {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let started = std::time::Instant::now();
            let workers = ctx.pool.jobs();
            let mut entries = Vec::new();
            println!(
                "building measurement trace ({scale:?} scale, {workers} worker(s), {seeds} seed(s))…"
            );
            let crawl_reg = obs.registry();
            let crawl_started = std::time::Instant::now();
            let traces: Vec<cdnc_trace::Trace> =
                (0..seeds).map(|r| build_trace_ctx(ctx.replicate(r), &crawl_reg)).collect();
            let crawl_wall_s = crawl_started.elapsed().as_secs_f64();
            println!("[crawl: {crawl_wall_s:.2}s on {workers} worker thread(s)]");
            if obs.enabled {
                entries.push(summary_entry("crawl", crawl_wall_s, workers, &crawl_reg));
            }
            let mut run_one = |id: &str, use_trace: bool| {
                let reg = obs.registry();
                let health = start_health(&obs, id, &reg);
                let fig_started = std::time::Instant::now();
                let runs: Vec<FigureReport> = (0..seeds)
                    .map(|r| {
                        let shared = use_trace.then(|| &traces[r as usize]);
                        run_figure_ctx(id, ctx.replicate(r), shared, &reg).expect("known id")
                    })
                    .collect();
                if let Some(health) = health {
                    health.stop();
                }
                let report = aggregate_replicates(&runs);
                print!("{report}");
                let wall_s = fig_started.elapsed().as_secs_f64();
                println!("[{id}: {wall_s:.2}s on {workers} worker thread(s)]");
                if obs.enabled {
                    entries.push(summary_entry(id, wall_s, workers, &reg));
                    if let Err(e) =
                        write_figure_artifact(&obs.dir, id, scale, &report, wall_s, &reg)
                    {
                        eprintln!("cannot write artifact for {id}: {e}");
                    }
                    if let Err(e) = write_figure_workload(&obs.dir, id, &report) {
                        eprintln!("cannot write workload curves for {id}: {e}");
                    }
                }
                if obs.series {
                    if let Err(e) = write_figure_series(&obs.dir, id, &reg) {
                        eprintln!("cannot write series for {id}: {e}");
                    }
                }
                if obs.digest {
                    emit_digest(&obs, id, scale, &reg);
                }
                if obs.trace {
                    emit_trace(&obs, id, &reg);
                }
            };
            for id in TRACE_FIGURES {
                run_one(id, true);
            }
            for id in EVAL_FIGURES.iter().chain(&HAT_FIGURES).chain(&EXT_FIGURES) {
                run_one(id, false);
            }
            if obs.enabled {
                match write_summary(&obs.dir, scale, entries) {
                    Ok(path) => println!("observability summary: {}", path.display()),
                    Err(e) => eprintln!("cannot write summary: {e}"),
                }
            }
            println!("all figures regenerated in {:.1?}", started.elapsed());
            ExitCode::SUCCESS
        }
        "crawl" => {
            let Some(path) = positional.get(1) else {
                eprintln!("crawl needs an output path");
                return usage();
            };
            println!("crawling at {scale:?} scale ({} worker(s))…", ctx.pool.jobs());
            let reg = obs.registry();
            let trace = build_trace_ctx(ctx, &reg);
            if let Some(table) = obs.enabled.then(|| timing_table(&reg)).flatten() {
                println!("--- phase timings ---\n{table}");
            }
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = cdnc_trace::write_trace(&trace, std::io::BufWriter::new(file)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {path}: {} servers × {} days, {} poll records",
                trace.servers.len(),
                trace.days.len(),
                trace.total_server_polls()
            );
            ExitCode::SUCCESS
        }
        "verdict" => {
            let Some(path) = positional.get(1) else {
                eprintln!("verdict needs a trace path");
                return usage();
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cdnc_trace::read_trace(std::io::BufReader::new(file)) {
                Ok(trace) => {
                    println!("{}", cdnc_analysis::analyze(&trace));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "checkpoint" => {
            let Some(path) = positional.get(1) else {
                eprintln!("checkpoint needs an output path");
                return usage();
            };
            let spec = ReplaySpec {
                scheme_key,
                intensity,
                flash,
                scale,
                at: cdnc_simcore::SimTime::from_secs_f64(at_s),
            };
            println!(
                "checkpointing {} (intensity {:.2}, flash {}) at t={:.0}s, {scale:?} scale…",
                spec.scheme_key, spec.intensity, spec.flash, at_s
            );
            let reg = obs.registry();
            let started = std::time::Instant::now();
            let artifact = replay::take_checkpoint(&spec, &reg);
            let lines = artifact.lines().count();
            if let Err(e) = std::fs::write(path, &artifact) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "checkpoint: {path} ({lines} state fields, {:.2}s)",
                started.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        "replay" => {
            let Some(path) = positional.get(1) else {
                eprintln!("replay needs a checkpoint path");
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let until = until_s.map(cdnc_simcore::SimTime::from_secs_f64);
            match replay::replay(&text, until) {
                Ok(v) => {
                    let window = match until_s {
                        Some(t) => format!("t={:.0}s..{t:.0}s", v.spec.at.as_secs_f64()),
                        None => format!("t={:.0}s..horizon", v.spec.at.as_secs_f64()),
                    };
                    println!(
                        "replayed {} (intensity {:.2}, flash {}, {:?} scale) over {window}: \
                         {} event(s) folded",
                        v.spec.scheme_key,
                        v.spec.intensity,
                        v.spec.flash,
                        v.spec.scale,
                        v.replay_events
                    );
                    println!("replay_chain={:016x}", v.replay_chain);
                    println!("straight_chain={:016x}", v.straight_chain);
                    println!("replay_chain_match={}", v.chain_match);
                    println!("replay_report_match={}", v.report_match);
                    if v.chain_match && v.report_match {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("replay diverged from the uninterrupted run");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("cannot replay {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "obs-diff" => {
            let (Some(dir_a), Some(dir_b)) = (positional.get(1), positional.get(2)) else {
                eprintln!("obs-diff needs two artifact directories");
                return usage();
            };
            match diff_artifact_dirs(Path::new(dir_a), Path::new(dir_b)) {
                Ok(diffs) if diffs.is_empty() => {
                    println!("artifacts match: {dir_a} vs {dir_b} (wall-clock fields ignored)");
                    ExitCode::SUCCESS
                }
                Ok(diffs) => {
                    for diff in &diffs {
                        eprintln!("{diff}");
                    }
                    eprintln!("{} difference(s) between {dir_a} and {dir_b}", diffs.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("cannot diff {dir_a} vs {dir_b}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "divergence" => {
            let (Some(path_a), Some(path_b)) = (positional.get(1), positional.get(2)) else {
                eprintln!("divergence needs two .digest.json paths");
                return usage();
            };
            match divergence::run(Path::new(path_a), Path::new(path_b), &obs) {
                Ok(divergence::Outcome::Identical) => {
                    println!("digest chains identical: {path_a} vs {path_b}");
                    ExitCode::SUCCESS
                }
                Ok(divergence::Outcome::Diverged(loc)) => {
                    print!("{}", loc.render());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("cannot bisect {path_a} vs {path_b}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "watch" => {
            let Some(dir) = positional.get(1) else {
                eprintln!("watch needs a directory of *.health.json heartbeats");
                return usage();
            };
            match watch::run(Path::new(dir), once) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("cannot watch {dir}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "report" => {
            let out_dir = out.unwrap_or_else(|| obs.dir.join("report"));
            match generate_report(&obs.dir, &out_dir) {
                Ok(written) => {
                    println!("report: {} page(s) under {}", written.len(), out_dir.display());
                    println!("index: {}", written[0].display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot generate report: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "profile" => {
            let Some(id) = positional.get(1) else {
                eprintln!("profile needs a figure id");
                return usage();
            };
            obs.enabled = true;
            obs.profile = true;
            let reg = obs.registry();
            if !cdnc_obs::profile::installed() {
                eprintln!(
                    "warning: counting allocator not installed in this binary; \
                     allocation attribution will be empty"
                );
            }
            println!(
                "profiling {id} at {scale:?} scale ({} worker(s), {seeds} seed(s))…",
                ctx.pool.jobs()
            );
            // Bracket the run: enable tagged attribution, reset window
            // peaks, snapshot a base, and diff against it afterwards so the
            // artifact covers exactly this figure's work.
            cdnc_obs::profile::set_enabled(true);
            cdnc_obs::profile::reset_window_peaks();
            let base = cdnc_obs::profile::snapshot();
            let started = std::time::Instant::now();
            let result = run_figure_replicated(id, ctx, seeds, &reg);
            cdnc_obs::profile::set_enabled(false);
            let wall_s = started.elapsed().as_secs_f64();
            let window = cdnc_obs::profile::snapshot().window_since(&base);
            let Some(report) = result else {
                eprintln!("unknown figure id: {id}");
                return usage();
            };
            print!("{report}");
            println!("[{id}: {wall_s:.2}s on {} worker thread(s)]", ctx.pool.jobs());
            println!("--- memory profile ---\n{}", profile_table(&window));
            match write_profile_artifact(&obs.dir, id, scale, &window, &reg, wall_s) {
                Ok(path) => {
                    println!("profile artifact: {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write profile artifact for {id}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "timeprof" => {
            let Some(id) = positional.get(1) else {
                eprintln!("timeprof needs a figure id");
                return usage();
            };
            obs.enabled = true;
            obs.timeprof = true;
            let reg = obs.registry();
            println!(
                "time-profiling {id} at {scale:?} scale ({} worker(s), {seeds} seed(s))…",
                ctx.pool.jobs()
            );
            let started = std::time::Instant::now();
            let result = run_figure_replicated(id, ctx, seeds, &reg);
            let wall_s = started.elapsed().as_secs_f64();
            let Some(report) = result else {
                eprintln!("unknown figure id: {id}");
                return usage();
            };
            print!("{report}");
            println!("[{id}: {wall_s:.2}s on {} worker thread(s)]", ctx.pool.jobs());
            let snap = reg.timeprof_snapshot().expect("timeprof armed above");
            println!("--- time profile ---\n{}", timeprof_table(&snap));
            match write_timeprof_artifact(&obs.dir, id, scale, &reg, wall_s) {
                Ok((json_path, folded_path)) => {
                    println!("timeprof artifact: {}", json_path.display());
                    println!("flamegraph stacks: {}", folded_path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write timeprof artifact for {id}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench" => {
            let label = label.unwrap_or_else(|| "local".to_owned());
            println!("running bench workload at {scale:?} scale ({} worker(s))…", ctx.pool.jobs());
            let doc = run_bench_with(ctx, &label, &bench_opts);
            print!("{}", bench_table(&doc));
            let path = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{label}.json")));
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
            match std::fs::write(&path, doc.to_pretty()) {
                Ok(()) => {
                    println!("bench results: {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    ExitCode::FAILURE
                }
            }
        }
        "bench-diff" => {
            let (Some(base_path), Some(cand_path)) = (positional.get(1), positional.get(2)) else {
                eprintln!("bench-diff needs <baseline.json> <candidate.json>");
                return usage();
            };
            let load = |p: &str| -> Result<cdnc_obs::Json, String> {
                let text =
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
                cdnc_obs::parse(&text).map_err(|e| format!("cannot parse {p}: {e}"))
            };
            match (load(base_path), load(cand_path)) {
                (Ok(base), Ok(cand)) => {
                    let regressions = bench_diff(&base, &cand, threshold);
                    if regressions.is_empty() {
                        println!(
                            "bench holds: {cand_path} within +{:.0}% of {base_path}",
                            threshold * 100.0
                        );
                        ExitCode::SUCCESS
                    } else {
                        for regression in &regressions {
                            eprintln!("{regression}");
                        }
                        eprintln!(
                            "{} regression(s) beyond +{:.0}% vs {base_path}",
                            regressions.len(),
                            threshold * 100.0
                        );
                        ExitCode::FAILURE
                    }
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        "trace" => {
            let Some(action) = positional.get(1) else {
                eprintln!("trace needs an action: summary | critical-path | inspect");
                return usage();
            };
            let path_at =
                |idx: usize| -> Option<PathBuf> { positional.get(idx).map(PathBuf::from) };
            match action.as_str() {
                "summary" | "critical-path" => {
                    let Some(path) = path_at(2) else {
                        eprintln!("trace {action} needs a trace JSON path");
                        return usage();
                    };
                    let store = match load_store(&path) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("cannot load trace: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    if action == "summary" {
                        print!("{}", summary_text(&store));
                    } else {
                        match critical_path_table(&store) {
                            Some(table) => print!("{table}"),
                            None => println!("no traces recorded"),
                        }
                    }
                    ExitCode::SUCCESS
                }
                "inspect" => {
                    let (Some(update), Some(path)) = (positional.get(2), path_at(3)) else {
                        eprintln!("trace inspect needs <update-id> <trace.json>");
                        return usage();
                    };
                    let Ok(update) = update.parse::<u32>() else {
                        eprintln!("update id must be a number, got: {update}");
                        return usage();
                    };
                    let store = match load_store(&path) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("cannot load trace: {e}");
                            return ExitCode::FAILURE;
                        }
                    };
                    match inspect_text(&store, update) {
                        Some(text) => {
                            print!("{text}");
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!("no trace for update {update} in {}", path.display());
                            ExitCode::FAILURE
                        }
                    }
                }
                other => {
                    eprintln!("unknown trace action: {other}");
                    usage()
                }
            }
        }
        id => {
            let reg = obs.registry();
            let health = start_health(&obs, id, &reg);
            let started = std::time::Instant::now();
            let result = run_figure_replicated(id, ctx, seeds, &reg);
            if let Some(health) = health {
                health.stop();
            }
            match result {
                Some(report) => {
                    print!("{report}");
                    println!(
                        "[{id}: {:.2}s on {} worker thread(s)]",
                        started.elapsed().as_secs_f64(),
                        ctx.pool.jobs()
                    );
                    if obs.enabled {
                        let wall_s = started.elapsed().as_secs_f64();
                        match write_figure_artifact(&obs.dir, id, scale, &report, wall_s, &reg) {
                            Ok(path) => println!("run artifact: {}", path.display()),
                            Err(e) => eprintln!("cannot write artifact for {id}: {e}"),
                        }
                        match write_figure_workload(&obs.dir, id, &report) {
                            Ok(Some(path)) => println!("workload curves: {}", path.display()),
                            Ok(None) => {}
                            Err(e) => eprintln!("cannot write workload curves for {id}: {e}"),
                        }
                        if let Some(table) = timing_table(&reg) {
                            println!("--- phase timings ---\n{table}");
                        }
                    }
                    if obs.series {
                        match write_figure_series(&obs.dir, id, &reg) {
                            Ok(Some(path)) => println!("series: {}", path.display()),
                            Ok(None) => {}
                            Err(e) => eprintln!("cannot write series for {id}: {e}"),
                        }
                    }
                    if obs.digest {
                        emit_digest(&obs, id, scale, &reg);
                    }
                    if obs.trace {
                        emit_trace(&obs, id, &reg);
                    }
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown figure id: {id}");
                    usage()
                }
            }
        }
    }
}
