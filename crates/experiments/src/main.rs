//! CLI entry point: regenerate paper figures, persist crawl traces, and
//! render measurement verdicts.
//!
//! ```text
//! experiments <figure-id | all | list> [--scale smoke|default|paper]
//! experiments crawl <out.bin>          [--scale …]   # save a crawl trace
//! experiments verdict <trace.bin>                    # §3.6 verdict on a saved trace
//! ```

use cdnc_experiments::{
    build_trace, run_figure, Scale, EVAL_FIGURES, EXT_FIGURES, HAT_FIGURES, TRACE_FIGURES,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: experiments <figure-id | all | list> [--scale smoke|default|paper]");
    eprintln!("       experiments crawl <out.bin> [--scale …]   write a crawl trace to disk");
    eprintln!("       experiments verdict <trace.bin>           analyse a saved trace (§3.6)");
    eprintln!("figure ids:");
    for id in TRACE_FIGURES
        .iter()
        .chain(&EVAL_FIGURES)
        .chain(&HAT_FIGURES)
        .chain(&EXT_FIGURES)
    {
        eprintln!("  {id}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut scale = Scale::Default;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(value) = args.get(i + 1) else { return usage() };
                let Some(parsed) = Scale::parse(value) else {
                    eprintln!("unknown scale: {value}");
                    return usage();
                };
                scale = parsed;
                i += 2;
            }
            other if positional.len() < 2 => {
                positional.push(other.to_owned());
                i += 1;
            }
            other => {
                eprintln!("unexpected argument: {other}");
                return usage();
            }
        }
    }
    let Some(target) = positional.first().cloned() else { return usage() };

    match target.as_str() {
        "list" => {
            for id in TRACE_FIGURES
                .iter()
                .chain(&EVAL_FIGURES)
                .chain(&HAT_FIGURES)
                .chain(&EXT_FIGURES)
            {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let started = std::time::Instant::now();
            println!("building measurement trace ({scale:?} scale)…");
            let trace = build_trace(scale);
            for id in TRACE_FIGURES {
                print!("{}", run_figure(id, scale, Some(&trace)).expect("known id"));
            }
            for id in EVAL_FIGURES.iter().chain(&HAT_FIGURES).chain(&EXT_FIGURES) {
                print!("{}", run_figure(id, scale, None).expect("known id"));
            }
            println!("all figures regenerated in {:.1?}", started.elapsed());
            ExitCode::SUCCESS
        }
        "crawl" => {
            let Some(path) = positional.get(1) else {
                eprintln!("crawl needs an output path");
                return usage();
            };
            println!("crawling at {scale:?} scale…");
            let trace = build_trace(scale);
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) =
                cdnc_trace::write_trace(&trace, std::io::BufWriter::new(file))
            {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {path}: {} servers × {} days, {} poll records",
                trace.servers.len(),
                trace.days.len(),
                trace.total_server_polls()
            );
            ExitCode::SUCCESS
        }
        "verdict" => {
            let Some(path) = positional.get(1) else {
                eprintln!("verdict needs a trace path");
                return usage();
            };
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cdnc_trace::read_trace(std::io::BufReader::new(file)) {
                Ok(trace) => {
                    println!("{}", cdnc_analysis::analyze(&trace));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        id => match run_figure(id, scale, None) {
            Some(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown figure id: {id}");
                usage()
            }
        },
    }
}
